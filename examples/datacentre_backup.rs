//! Bulk-backup use case (§II-D.2): a nightly 4 PB backup (Meta's daily new
//! data, Table I) shipped to a vault by DHL vs over the network — run
//! through the full discrete-event simulator, including the §VI dual-track
//! and regenerative-braking upgrades.
//!
//! ```text
//! cargo run --example datacentre_backup
//! ```

use datacentre_hyperloop::net::route::Route;
use datacentre_hyperloop::physics::BrakingSystem;
use datacentre_hyperloop::sim::{DhlSystem, SimConfig};
use datacentre_hyperloop::storage::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backup = datasets::meta_daily_ingest(); // 4 PB/day
    println!("Nightly bulk backup of {backup} to a vault 500 m away\n");

    // Baseline: the cross-aisle optical route C.
    let route = Route::c();
    println!(
        "optical route C:   {:>9.0} s ({:.1} h), {:>8.2} MJ",
        route.transfer_time(backup).seconds(),
        route.transfer_time(backup).hours(),
        route.transfer_energy(backup).megajoules()
    );

    // DHL variants, simulated end to end.
    let variants: Vec<(&str, SimConfig)> = vec![
        ("DHL serial (paper accounting)", SimConfig::paper_serial()),
        (
            "DHL pipelined (8 carts, 4 docks)",
            SimConfig::paper_default(),
        ),
        ("DHL dual track", {
            let mut c = SimConfig::paper_default();
            c.dual_track = true;
            c
        }),
        ("DHL dual track + regen braking", {
            let mut c = SimConfig::paper_default();
            c.dual_track = true;
            c.braking = BrakingSystem::regenerative(0.5)?;
            c
        }),
    ];
    for (name, cfg) in variants {
        let report = DhlSystem::new(cfg)?.run_bulk_transfer(backup)?;
        println!(
            "{name:<33}: {:>6.0} s, {:>8.3} MJ, {:>3} movements, peak {} carts in flight",
            report.completion_time.seconds(),
            report.total_energy.megajoules(),
            report.movements,
            report.max_carts_in_flight
        );
    }

    println!(
        "\nThe backup window shrinks from days to minutes and the energy bill by\n\
         orders of magnitude; dual tracks and regenerative braking are the §VI\n\
         upgrades."
    );
    Ok(())
}
