//! Design exploration: sweep the DHL parameter space beyond the paper's 13
//! rows, test the §V-A sensitivity knobs, and project NAND density scaling.
//!
//! ```text
//! cargo run --example design_explorer
//! ```

use datacentre_hyperloop::core::{
    acceleration_sweep, density_scaling, docking_time_sweep, sweep_parallel, CostModel, DhlConfig,
};
use datacentre_hyperloop::units::{
    Bytes, Metres, MetresPerSecond, MetresPerSecondSquared, Seconds,
};

fn main() {
    // 1. A 135-point sweep (vs the paper's 13), in parallel.
    let speeds: Vec<MetresPerSecond> = (2..=10)
        .map(|v| MetresPerSecond::new(f64::from(v) * 30.0))
        .collect();
    let lengths: Vec<Metres> = [100.0, 250.0, 500.0, 750.0, 1000.0].map(Metres::new).into();
    let counts = [16, 32, 64];
    let points = sweep_parallel(&speeds, &lengths, &counts, Bytes::from_petabytes(29.0), 8);
    let best_eff = points
        .iter()
        .max_by(|a, b| {
            a.launch
                .efficiency
                .value()
                .total_cmp(&b.launch.efficiency.value())
        })
        .expect("non-empty sweep");
    let best_bw = points
        .iter()
        .max_by(|a, b| {
            a.launch
                .bandwidth
                .value()
                .total_cmp(&b.launch.bandwidth.value())
        })
        .expect("non-empty sweep");
    println!("explored {} design points:", points.len());
    println!(
        "  best efficiency: {:.1} GB/J at {:.0} m/s / {:.0} TB",
        best_eff.launch.efficiency.value(),
        best_eff.config.max_speed.value(),
        best_eff.config.cart_capacity.terabytes()
    );
    println!(
        "  best bandwidth:  {:.1} TB/s at {:.0} m/s / {:.0} m / {:.0} TB",
        best_bw.launch.bandwidth.terabytes_per_second(),
        best_bw.config.max_speed.value(),
        best_bw.config.track_length.value(),
        best_bw.config.cart_capacity.terabytes()
    );

    // 2. Docking-time sensitivity (§V-A: docking dominates the trip).
    println!("\ndock/undock time → embodied bandwidth:");
    for row in docking_time_sweep(
        &DhlConfig::paper_default(),
        &[0.5, 1.0, 2.0, 3.0, 5.0].map(Seconds::new),
    ) {
        println!(
            "  {:>4.1} s  → {:>6.1} TB/s ({:>4.1}% of trip spent docking)",
            row.dock_time.seconds(),
            row.metrics.bandwidth.terabytes_per_second(),
            row.docking_fraction * 100.0
        );
    }

    // 3. Peak-power vs acceleration (§V-A note).
    println!("\nacceleration → peak power (LIM length):");
    for row in acceleration_sweep(
        &DhlConfig::paper_default(),
        &[250.0, 500.0, 1000.0, 2000.0].map(MetresPerSecondSquared::new),
    ) {
        println!(
            "  {:>6.0} m/s² → {:>6.1} kW ({:>5.1} m LIM, {:>5.2} s trip)",
            row.acceleration.value(),
            row.metrics.peak_power.kilowatts(),
            row.lim_length.value(),
            row.metrics.trip_time.seconds()
        );
    }

    // 4. NAND density futures (§II-A): upgrade the SSDs, keep the track.
    println!("\nSSD density → cart capacity, bandwidth, efficiency:");
    for row in density_scaling(&DhlConfig::paper_default(), &[1.0, 2.0, 4.0, 8.0]) {
        println!(
            "  {:>3.0}× → {:>7.1} TB carts, {:>6.1} TB/s, {:>6.1} GB/J",
            row.density_factor,
            row.cart_capacity.terabytes(),
            row.metrics.bandwidth.terabytes_per_second(),
            row.metrics.efficiency.value()
        );
    }

    // 5. What does the best design cost to build?
    let cost = CostModel::paper().total_cost(best_bw.config.track_length, best_bw.config.max_speed);
    println!(
        "\nthe best-bandwidth design costs {} in commodity materials",
        cost.display_dollars()
    );
}
