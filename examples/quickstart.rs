//! Quickstart: evaluate the paper's default DHL design, move a dataset
//! through the software API, and compare against the optical network.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use datacentre_hyperloop::core::{BulkComparison, DhlConfig, LaunchMetrics};
use datacentre_hyperloop::net::route::RouteId;
use datacentre_hyperloop::sim::api::DhlApi;
use datacentre_hyperloop::sim::SimConfig;
use datacentre_hyperloop::units::{Bytes, BytesPerSecond};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The analytical model: one launch of the default cart
    //    (200 m/s over 500 m carrying 256 TB).
    let cfg = DhlConfig::paper_default();
    let launch = LaunchMetrics::evaluate(&cfg);
    println!("One launch of the default DHL cart:");
    println!("  energy        {:>10.2} kJ", launch.energy.kilojoules());
    println!("  trip time     {:>10.2} s", launch.trip_time.seconds());
    println!(
        "  bandwidth     {:>10.2} TB/s (embodied)",
        launch.bandwidth.terabytes_per_second()
    );
    println!("  peak power    {:>10.2} kW", launch.peak_power.kilowatts());
    println!("  efficiency    {:>10.2} GB/J", launch.efficiency.value());

    // 2. Moving Meta's 29 PB DLRM dataset vs the optical network.
    let dataset = Bytes::from_petabytes(29.0);
    let cmp = BulkComparison::evaluate(&cfg, dataset);
    println!("\nMoving {dataset} (Meta DLRM training data):");
    println!("  cart deliveries   {:>8}", cmp.dhl.deliveries);
    println!("  DHL time          {:>8.0} s", cmp.dhl.time.seconds());
    println!(
        "  one 400 Gb/s link {:>8.0} s ({:.2} days)",
        cmp.network_time.seconds(),
        cmp.network_time.days()
    );
    println!("  time speedup      {:>8.1}x", cmp.time_speedup);
    for id in [RouteId::A0, RouteId::C] {
        println!(
            "  energy vs {:<6}  {:>8.1}x less",
            id.to_string(),
            cmp.reduction_vs(id)
        );
    }

    // 3. The software API (§III-D): Open / Read / Write / Close.
    let mut api = DhlApi::new(
        SimConfig::paper_default(),
        BytesPerSecond::from_gigabytes_per_second(227.2),
        BytesPerSecond::from_gigabytes_per_second(192.0),
    )?;
    let cart = api.open(1)?; // shuttle a cart from the library to rack 1
    let read_time = api.read(cart, Bytes::from_terabytes(42.0))?;
    api.write(cart, Bytes::from_terabytes(1.0))?;
    api.close(cart)?; // send it home
    println!(
        "\nAPI session: opened, read 42 TB in {:.0} s, wrote 1 TB, closed.",
        read_time.seconds()
    );
    println!(
        "  wall clock {:.1} s, energy {:.1} kJ",
        api.now().seconds(),
        api.energy_used().kilojoules()
    );
    Ok(())
}
