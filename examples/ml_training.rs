//! ML-training use case (§II-D.3, §V-C): time and power to run DLRM
//! training iterations over the 29 PB dataset with DHL vs optical
//! networking — the paper's Fig. 6 / Table VII experiment.
//!
//! ```text
//! cargo run --example ml_training
//! ```

use datacentre_hyperloop::core::DhlConfig;
use datacentre_hyperloop::mlsim::{fig6, iso_power, iso_time, DhlFabric, DlrmWorkload};
use datacentre_hyperloop::net::route::RouteId;
use datacentre_hyperloop::units::{Metres, MetresPerSecond, Watts};

fn main() {
    let workload = DlrmWorkload::paper_dlrm();
    let dhl = DhlConfig::paper_default();
    let budget = DhlFabric::new(dhl.clone(), 1).track_power();

    println!(
        "DLRM over {} — fixed communication power {:.2} kW",
        workload.dataset,
        budget.kilowatts()
    );
    let table = iso_power(&workload, &dhl, budget);
    println!("{:<8} {:>12} {:>12}", "scheme", "s/iter", "slowdown");
    for row in &table.rows {
        println!(
            "{:<8} {:>12.0} {:>11.1}x",
            row.scheme,
            row.time_per_iteration.seconds(),
            row.factor_vs_dhl
        );
    }

    let iso = iso_time(&workload, &dhl);
    println!(
        "\nPower needed to match the DHL's {:.0} s/iteration:",
        iso.target_time.seconds()
    );
    println!("{:<8} {:>12} {:>12}", "scheme", "kW", "increase");
    for row in &iso.rows {
        println!(
            "{:<8} {:>12.2} {:>11.1}x",
            row.scheme,
            row.power.kilowatts(),
            row.factor_vs_dhl
        );
    }

    // A slice of Fig. 6: how iteration time falls as we add DHL tracks or
    // optical links.
    let configs = [
        DhlConfig::with_ssd_count(MetresPerSecond::new(100.0), Metres::new(500.0), 16),
        dhl,
    ];
    let grid: Vec<Watts> = (1..=8)
        .map(|i| Watts::new(f64::from(i) * 1_750.0))
        .collect();
    println!("\nFig. 6 slice (power → s/iter):");
    for series in fig6(&workload, &configs, &[RouteId::A0, RouteId::C], &grid, 8) {
        let pts: Vec<String> = series
            .points
            .iter()
            .take(4)
            .map(|(p, t)| format!("{:.1} kW→{:.0} s", p.kilowatts(), t.seconds()))
            .collect();
        println!("  {:<18} {}", series.scheme, pts.join(", "));
    }
}
