//! Reliability audit (§III-D, §VI): stress the DHL with stochastic SSD
//! failures, RAID layouts, connector wear, and SSD write endurance, and
//! report how long a deployment runs before maintenance.
//!
//! ```text
//! cargo run --example reliability_audit
//! ```

use datacentre_hyperloop::core::{annualise, DhlConfig, GridModel};
use datacentre_hyperloop::net::route::Route;
use datacentre_hyperloop::sim::{DhlSystem, ReliabilitySpec, SimConfig};
use datacentre_hyperloop::storage::connectors::ConnectorKind;
use datacentre_hyperloop::storage::failure::{FailureModel, RaidConfig};
use datacentre_hyperloop::storage::wear::{CartWear, EnduranceModel};
use datacentre_hyperloop::units::Bytes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Bytes::from_petabytes(29.0);

    // 1. In-flight SSD failures under RAID, simulated end-to-end.
    println!("29 PB bulk transfer with failure injection (1% AFR, 28+4 RAID):");
    let mut cfg = SimConfig::paper_default();
    cfg.reliability = Some(ReliabilitySpec::typical());
    let report = DhlSystem::new(cfg)?.run_bulk_transfer(dataset)?;
    println!(
        "  {} movements, {} SSD failures, {} data-loss events",
        report.movements, report.ssd_failures, report.data_loss_events
    );

    // Even 50% AFR drives survive 8.6 s trips: in-flight exposure is tiny.
    let mut hostile = SimConfig::paper_default();
    hostile.reliability = Some(ReliabilitySpec {
        failure: FailureModel::new(0.5),
        raid: RaidConfig::none(32),
        ssds_per_cart: 32,
        seed: 42,
    });
    let hostile_report = DhlSystem::new(hostile)?.run_bulk_transfer(dataset)?;
    println!(
        "  (even 50% AFR with no RAID: {} failures in seconds-long trips —\n   in-flight exposure is negligible; RAID guards the *docked* hours)",
        hostile_report.ssd_failures
    );

    // Where failures actually bite: carts that dwell docked for hours.
    let mut dwelling = SimConfig::paper_serial();
    dwelling.dock_time = datacentre_hyperloop::units::Seconds::from_hours(2000.0);
    dwelling.reliability = Some(ReliabilitySpec {
        failure: FailureModel::new(0.5),
        raid: RaidConfig::none(32),
        ssds_per_cart: 32,
        seed: 42,
    });
    let dwelling_report =
        DhlSystem::new(dwelling)?.run_bulk_transfer(Bytes::from_terabytes(512.0))?;
    println!(
        "  (same drives exposed for 2000 h per dock: {} failures, {} losses\n   without RAID)",
        dwelling_report.ssd_failures, dwelling_report.data_loss_events
    );

    // 2. Connector wear (§VI): how many 29 PB campaigns per USB-C connector?
    let dockings_per_campaign = report.movements; // one mate per movement
    let campaigns_per_connector =
        u64::from(ConnectorKind::UsbC.rated_cycles()) / dockings_per_campaign;
    println!(
        "\nConnector endurance: {} dockings per campaign; one USB-C connector\n  survives {} campaigns (bare M.2 would survive {}).",
        dockings_per_campaign,
        campaigns_per_connector,
        u64::from(ConnectorKind::M2.rated_cycles()) / dockings_per_campaign
    );

    // 3. SSD write endurance: restaging the dataset monthly.
    let mut wear = CartWear::new(
        EnduranceModel::rocket_4_plus_8tb(),
        Bytes::from_terabytes(256.0),
    );
    wear.record_write(Bytes::from_terabytes(256.0));
    println!(
        "\nWrite endurance: one full restage consumes {:.3}% of a cart's rated\n  writes; {} restages remain.",
        wear.wear_fraction() * 100.0,
        wear.restages_remaining()
    );

    // 4. Carbon: daily 29 PB restaging for a year, DHL vs route C.
    let grid = GridModel::us_average();
    let baseline = Route::c().transfer_energy(dataset);
    let dhl_energy = datacentre_hyperloop::core::BulkTransfer::evaluate(
        &DhlConfig::paper_default(),
        dataset,
    )
    .energy;
    let year = annualise(&grid, baseline, dhl_energy, 365.0);
    println!(
        "\nCarbon (daily restaging, US grid): {:.1} t CO2e and {} of electricity\n  saved per year vs optical route C.",
        year.kg_co2e_saved / 1000.0,
        year.usd_saved.display_dollars()
    );
    Ok(())
}
