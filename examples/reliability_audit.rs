//! Reliability audit (§III-D, §VI): stress the DHL with stochastic SSD
//! failures, RAID layouts, mechanical faults, and connector wear, and show
//! the recovery machinery (redelivery, bounded retries, track draining)
//! keeping goodput equal to the request.
//!
//! ```text
//! cargo run --example reliability_audit
//! ```

use datacentre_hyperloop::core::{annualise, DhlConfig, GridModel};
use datacentre_hyperloop::net::route::Route;
use datacentre_hyperloop::sim::{
    DhlSystem, FaultSpec, IntegritySpec, ReliabilitySpec, SimConfig, SimError,
};
use datacentre_hyperloop::storage::connectors::ConnectorKind;
use datacentre_hyperloop::storage::failure::{FailureModel, RaidConfig};
use datacentre_hyperloop::storage::integrity::CorruptionModel;
use datacentre_hyperloop::storage::wear::{CartWear, EnduranceModel};
use datacentre_hyperloop::units::{Bytes, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Bytes::from_petabytes(29.0);

    // 1. In-flight SSD failures under RAID, simulated end-to-end.
    println!("29 PB bulk transfer with failure injection (1% AFR, 28+4 RAID):");
    let mut cfg = SimConfig::paper_default();
    cfg.reliability = Some(ReliabilitySpec::typical());
    let report = DhlSystem::new(cfg)?.run_bulk_transfer(dataset)?;
    println!(
        "  {} movements, {} SSD failures, {} data-loss events",
        report.movements, report.ssd_failures, report.data_loss_events
    );

    // Even 50% AFR drives survive 8.6 s trips: in-flight exposure is tiny.
    let mut hostile = SimConfig::paper_default();
    hostile.reliability = Some(ReliabilitySpec {
        failure: FailureModel::new(0.5),
        raid: RaidConfig::none(32),
        ssds_per_cart: 32,
        seed: 42,
    });
    let hostile_report = DhlSystem::new(hostile)?.run_bulk_transfer(dataset)?;
    println!(
        "  (even 50% AFR with no RAID: {} failures in seconds-long trips —\n   in-flight exposure is negligible; RAID guards the *docked* hours)",
        hostile_report.ssd_failures
    );

    // 2. Recovery: long docked dwells make shard loss routine (~64 % of
    // deliveries here) — the mission redelivers every lost shard until
    // goodput matches the request.
    println!("\nRecovery under heavy loss (200 h docked per trip, no RAID):");
    let mut lossy = SimConfig::paper_default();
    lossy.dock_time = Seconds::from_hours(200.0);
    lossy.reliability = Some(ReliabilitySpec {
        failure: FailureModel::new(0.5),
        raid: RaidConfig::none(32),
        ssds_per_cart: 32,
        seed: 42,
    });
    lossy.faults = Some(FaultSpec {
        max_delivery_attempts: 64,
        ..FaultSpec::recovery_only()
    });
    let recovered = DhlSystem::new(lossy.clone())?.run_bulk_transfer(Bytes::from_petabytes(2.0))?;
    let rel = &recovered.reliability;
    println!(
        "  {} deliveries ({} redeliveries), {} lost then re-served; all {} delivered",
        recovered.deliveries, rel.redeliveries, recovered.data_loss_events, recovered.delivered
    );
    println!(
        "  goodput {:.1} MB/s vs gross throughput {:.1} MB/s ({:.1} h of retry traffic)",
        rel.goodput.value() / 1e6,
        rel.throughput.value() / 1e6,
        rel.retry_time.seconds() / 3600.0
    );

    // With a tight retry budget the same losses become a typed error
    // instead of silent degradation.
    let mut bounded = lossy;
    bounded.reliability.as_mut().expect("set above").failure = FailureModel::new(0.999);
    bounded
        .faults
        .as_mut()
        .expect("set above")
        .max_delivery_attempts = 2;
    match DhlSystem::new(bounded)?.run_bulk_transfer(Bytes::from_terabytes(512.0)) {
        Err(SimError::DeliveryAbandoned { endpoint, attempts }) => println!(
            "  (budget of 2 attempts at 99.9% AFR: shard for endpoint {endpoint} abandoned\n   after {attempts} attempts — surfaced as a typed error, not lost silently)"
        ),
        other => println!("  unexpected outcome under certain loss: {other:?}"),
    }

    // 3. Mechanical faults: stalls, tube leaks, and connector wear-out over
    // a 58 PB serial campaign (456 movements on one cart — enough to wear
    // out a bare M.2 connector, rated for 250 cycles).
    println!("\nMechanical faults (stalls, repressurisation, worn connectors; 58 PB serial):");
    let campaign = Bytes::from_petabytes(58.0);
    let mut mech = SimConfig::paper_serial();
    let mut spec = FaultSpec::stress();
    spec.cart_stall
        .as_mut()
        .expect("stress stalls")
        .probability_per_movement = 0.05;
    spec.repressurisation
        .as_mut()
        .expect("stress leaks")
        .probability_per_movement = 0.02;
    spec.docking_connector
        .as_mut()
        .expect("stress connectors")
        .kind = ConnectorKind::M2;
    mech.faults = Some(spec);
    let mech_report = DhlSystem::new(mech)?.run_bulk_transfer(campaign)?;
    let mrel = &mech_report.reliability;
    let downtime: f64 = mrel.track_downtime.iter().map(|s| s.seconds()).sum();
    println!(
        "  {} cart stalls ({:.0} s of track downtime), {} tube repressurisations,\n  {} connector replacements; completion {:.1} s vs {:.1} s fault-free",
        mrel.cart_stalls,
        downtime,
        mrel.repressurisations,
        mrel.connector_replacements,
        mech_report.completion_time.seconds(),
        DhlSystem::new(SimConfig::paper_serial())?
            .run_bulk_transfer(campaign)?
            .completion_time
            .seconds()
    );

    // 4. Connector wear (§VI): how many 29 PB campaigns per USB-C connector?
    let dockings_per_campaign = report.movements; // one mate per movement
    let campaigns_per_connector =
        u64::from(ConnectorKind::UsbC.rated_cycles()) / dockings_per_campaign;
    println!(
        "\nConnector endurance: {} dockings per campaign; one USB-C connector\n  survives {} campaigns (bare M.2 would survive {}).",
        dockings_per_campaign,
        campaigns_per_connector,
        u64::from(ConnectorKind::M2.rated_cycles()) / dockings_per_campaign
    );

    // 5. SSD write endurance: restaging the dataset monthly.
    let mut wear = CartWear::new(
        EnduranceModel::rocket_4_plus_8tb(),
        Bytes::from_terabytes(256.0),
    );
    wear.record_write(Bytes::from_terabytes(256.0));
    println!(
        "\nWrite endurance: one full restage consumes {:.3}% of a cart's rated\n  writes; {} restages remain.",
        wear.wear_fraction() * 100.0,
        wear.restages_remaining()
    );

    // 6. Carbon: daily 29 PB restaging for a year, DHL vs route C.
    let grid = GridModel::us_average();
    let baseline = Route::c().transfer_energy(dataset);
    let dhl_energy =
        datacentre_hyperloop::core::BulkTransfer::evaluate(&DhlConfig::paper_default(), dataset)
            .energy;
    let year = annualise(&grid, baseline, dhl_energy, 365.0);
    println!(
        "\nCarbon (daily restaging, US grid): {:.1} t CO2e and {} of electricity\n  saved per year vs optical route C.",
        year.kg_co2e_saved / 1000.0,
        year.usd_saved.display_dollars()
    );

    // 7. Observability: every report carries the simulator's dhl-obs
    // snapshot — the same counters the audit above summarised, exportable
    // as NDJSON for log pipelines.
    let metrics = &mech_report.metrics;
    assert!(
        !metrics.is_empty(),
        "fault-injected runs always record metrics"
    );
    println!(
        "\nObservability snapshot of the mechanical-fault run ({} counters, {} gauges, {} histograms):",
        metrics.counters.len(),
        metrics.gauges.len(),
        metrics.histograms.len()
    );
    // Only the counters are printed: they are deterministic per seed,
    // whereas the gauges include wall-clock pacing that varies run to run.
    for line in metrics
        .to_ndjson()
        .lines()
        .filter(|l| l.contains("\"counter\""))
    {
        println!("  {line}");
    }

    // 8. End-to-end payload integrity: verify-on-dock checksum scrubs with
    // corruption injection. Intermittent mating errors corrupt shards in
    // flight; the 28+4 parity rebuilds most deliveries at the dock, and the
    // few that exceed tolerance re-ship through the recovery machinery.
    println!("\nPayload integrity (verify-on-dock, corruption injection, 8 PB):");
    let mut corrupting = SimConfig::paper_default();
    corrupting.integrity = Some(IntegritySpec {
        corruption: CorruptionModel {
            mating_error_per_cycle: 0.12,
            ..CorruptionModel::paper_default()
        },
        ..IntegritySpec::typical()
    });
    corrupting.faults = Some(FaultSpec {
        max_delivery_attempts: 64,
        ..FaultSpec::recovery_only()
    });
    let audit = DhlSystem::new(corrupting)?.run_bulk_transfer(Bytes::from_petabytes(8.0))?;
    let integ = &audit.integrity;
    println!(
        "  {} shards scanned, {} corrupted, {} rebuilt from parity",
        integ.shards_scanned, integ.shards_corrupted, integ.shards_reconstructed
    );
    println!(
        "  {} deliveries verified, {} re-shipped beyond RAID tolerance",
        integ.deliveries_verified, integ.deliveries_reshipped
    );
    println!(
        "  scrub time {:.0} s (+{:.1} MJ), reconstruction reads {:.0} s; all {} delivered",
        integ.verification_time.seconds(),
        integ.verification_energy.value() / 1e6,
        integ.reconstruction_time.seconds(),
        audit.delivered
    );

    // CI determinism hook: DHL_AUDIT_METRICS_JSON=<path> writes the
    // deterministic portion of the audit (simulation outcome, integrity
    // accounting, and counters — no wall-clock gauges) as JSON, so two
    // same-seed runs can be diffed byte for byte.
    if let Ok(path) = std::env::var("DHL_AUDIT_METRICS_JSON") {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"completion_time_s\": {},\n  \"delivered_bytes\": {},\n  \"deliveries\": {},\n  \"movements\": {},\n",
            audit.completion_time.seconds(),
            audit.delivered.as_u64(),
            audit.deliveries,
            audit.movements
        ));
        json.push_str(&format!(
            "  \"redeliveries\": {},\n  \"shards_scanned\": {},\n  \"shards_corrupted\": {},\n  \"shards_reconstructed\": {},\n  \"deliveries_verified\": {},\n  \"deliveries_reshipped\": {},\n",
            audit.reliability.redeliveries,
            integ.shards_scanned,
            integ.shards_corrupted,
            integ.shards_reconstructed,
            integ.deliveries_verified,
            integ.deliveries_reshipped
        ));
        json.push_str(&format!(
            "  \"verification_time_s\": {},\n  \"reconstruction_time_s\": {},\n",
            integ.verification_time.seconds(),
            integ.reconstruction_time.seconds()
        ));
        let mut counters: Vec<_> = audit.metrics.counters.clone();
        counters.sort();
        json.push_str("  \"counters\": {\n");
        let body: Vec<String> = counters
            .iter()
            .map(|(name, value)| format!("    \"{name}\": {value}"))
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }\n}\n");
        std::fs::write(&path, json)?;
        println!("  (deterministic audit snapshot written to {path})");
    }
    Ok(())
}
