//! Experimental-physics use case (§II-D.1): the LHC CMS detector produces
//! 150 TB/s; today that firehose is aggressively filtered on-site. A DHL
//! connecting the detector hall to an off-site data centre could ship the
//! raw stream as cart-loads instead.
//!
//! ```text
//! cargo run --example physics_experiment
//! ```

use datacentre_hyperloop::core::{DhlConfig, LaunchMetrics};
use datacentre_hyperloop::storage::cart::CartStorage;
use datacentre_hyperloop::storage::datasets;
use datacentre_hyperloop::units::{Bytes, Metres, MetresPerSecond, Seconds};

fn main() {
    let burst_rate = datasets::lhc_cms_rate(); // 150 TB/s
    println!(
        "CMS detector output: {:.0} TB/s raw",
        burst_rate.terabytes_per_second()
    );

    // A one-second burst fills buffer SSDs; how fast must the DHL drain it?
    let one_second_burst = burst_rate * Seconds::new(1.0);
    let cart = CartStorage::paper_large(); // 512 TB carts for this deployment
    let carts_per_second = one_second_burst.div_ceil(cart.capacity());
    println!(
        "One second of beam = {one_second_burst} = {carts_per_second} × {} carts",
        Bytes::new(cart.capacity().as_u64())
    );

    // A 1 km DHL from the detector hall to off-site processing.
    let cfg = DhlConfig::with_ssd_count(
        MetresPerSecond::new(300.0),
        Metres::from_kilometres(1.0),
        64,
    );
    let launch = LaunchMetrics::evaluate(&cfg);
    println!(
        "\n1 km detector DHL (300 m/s, 512 TB carts): {:.2} s/trip, {:.1} TB/s embodied",
        launch.trip_time.seconds(),
        launch.bandwidth.terabytes_per_second()
    );

    // Sustained throughput with pipelined launches (one cart per trip time
    // headway is conservative; the track supports one launch per docking
    // time).
    let launches_per_second = 1.0 / cfg.dock_time.seconds();
    let sustained = cart.capacity().as_f64() * launches_per_second;
    println!(
        "pipelined launches every {:.0} s sustain {:.0} TB/s of embodied bandwidth",
        cfg.dock_time.seconds(),
        sustained / 1e12
    );
    let coverage = sustained / burst_rate.value();
    println!(
        "=> a single track carries {:.0}% of the raw CMS stream; {} parallel tracks cover it",
        coverage * 100.0,
        (1.0 / coverage).ceil()
    );

    // How long to ship a full shift (8 h) of *filtered* data (say 1%)?
    let shift = Bytes::new((burst_rate.value() * 8.0 * 3600.0 * 0.01) as u64);
    let trips = shift.div_ceil(cfg.cart_capacity);
    let time = launch.trip_time * (2 * trips) as f64;
    println!(
        "\nShipping an 8 h shift at 1% filter ({shift}) takes {trips} deliveries, {:.0} s including returns",
        time.seconds()
    );
}
