//! Crash-recovery audit: checkpoint/restore bit-identity, replica
//! retry-with-resume, and the availability cost of crash-prone dock-station
//! controllers under each recovery policy (journal replay vs
//! rebuild-from-scan).
//!
//! ```text
//! cargo run --example crash_recovery_audit
//! ```
//!
//! CI hooks:
//!
//! - `DHL_CRASH_AUDIT_MODE=complete|resume` selects whether the snapshot
//!   below comes from the uninterrupted run or the mid-run
//!   checkpoint-then-resume run (default `resume`). The two must be
//!   byte-identical — the kill-and-resume CI job diffs them.
//! - `DHL_CRASH_AUDIT_JSON=<path>` writes the deterministic portion of the
//!   audit (outcome plus counters, no wall-clock gauges) as JSON.

use datacentre_hyperloop::sched::evaluate::evaluate_scenarios;
use datacentre_hyperloop::sched::{
    DockRecoveryAwareness, Placement, Policy, Priority, Scenario, TransferRequest,
};
use datacentre_hyperloop::sim::{
    run_replicas, run_replicas_with_recovery, Checkpoint, CrashInjection, DhlSystem,
    DockControllerFaultSpec, FaultSpec, RecoveryOptions, ReliabilitySpec, SimConfig,
};
use datacentre_hyperloop::storage::datasets;
use datacentre_hyperloop::units::{Bytes, Seconds};

/// A stressed configuration exercising every checkpointed subsystem: SSD
/// reliability, mechanical faults, and crash-prone dock controllers.
fn audited_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.reliability = Some(ReliabilitySpec {
        seed: 7,
        ..ReliabilitySpec::typical()
    });
    let mut faults = FaultSpec::stress();
    if let Some(dock) = faults.dock_controller.as_mut() {
        // Stress preset crashes 0.1% of dockings — too rare for a short
        // audit; make controller recovery a routine part of this run.
        dock.crash_probability_per_docking = 0.3;
    }
    cfg.faults = Some(faults);
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Bytes::from_petabytes(2.0);
    let cfg = audited_config();

    // 1. Run the stressed scenario to completion, uninterrupted.
    let complete = DhlSystem::new(cfg.clone())?.run_bulk_transfer(dataset)?;
    println!("Uninterrupted 2 PB stressed run:");
    println!(
        "  completion {:.1} s, {} deliveries, {} events, {} dock-controller crashes",
        complete.completion_time.seconds(),
        complete.deliveries,
        complete.events_processed,
        complete.reliability.dock_controller_crashes
    );

    // 2. Same scenario, but the process "dies" mid-run: checkpoint at
    // T = 30 s (roughly mid-mission), serialise to JSON, drop the
    // simulator, parse the JSON back, resume, and drain. The resumed
    // report must be bit-identical.
    let mut sys = DhlSystem::new(cfg.clone())?;
    sys.begin_bulk_transfer(dataset)?;
    sys.run_until(Seconds::new(30.0))?;
    let checkpoint = sys.checkpoint();
    let json = checkpoint.to_json();
    println!("\nCheckpoint at T = {:.1} s:", checkpoint.time().seconds());
    println!(
        "  {} events processed, fingerprint {:#018x}, {} bytes of JSON",
        checkpoint.events_processed(),
        checkpoint.fingerprint(),
        json.len()
    );
    drop(sys); // the crash

    let restored = Checkpoint::from_json(&json)?;
    let mut resumed_sys = DhlSystem::resume(cfg.clone(), &restored)?;
    resumed_sys.run_until(Seconds::new(f64::INFINITY))?;
    let resumed = resumed_sys.finish();
    assert_eq!(
        complete, resumed,
        "checkpoint-then-resume must be bit-identical to the uninterrupted run"
    );
    let (mut a, mut b) = (
        complete.metrics.counters.clone(),
        resumed.metrics.counters.clone(),
    );
    a.sort();
    b.sort();
    assert_eq!(a, b, "deterministic counters must match exactly");
    println!("  resumed run is bit-identical (report and counters) — no replayed drift");

    // 3. Replica retry-with-resume: replica 2 crashes twice at T = 20 s and
    // restarts from its 15 s periodic checkpoints; the merged Monte-Carlo
    // outcome must equal the crash-free fan-out.
    let replica_cfg = SimConfig::paper_default();
    let replica_data = Bytes::from_petabytes(1.0);
    let clean = run_replicas(&replica_cfg, replica_data, 4, 2)?;
    let recovered = run_replicas_with_recovery(
        &replica_cfg,
        replica_data,
        4,
        2,
        &RecoveryOptions {
            checkpoint_interval: Seconds::new(15.0),
            max_restarts: 3,
            crash_hook: Some(CrashInjection {
                replica: 2,
                at_time: Seconds::new(20.0),
                crashes: 2,
            }),
        },
    )?;
    assert_eq!(
        clean.reports, recovered.reports,
        "recovered replicas must merge to the crash-free outcome"
    );
    println!("\nReplica fan-out with injected crashes (replica 2, twice at T = 20 s):");
    println!(
        "  4 replicas, completion {:.1} ± {:.1} s — identical to the crash-free fan-out",
        recovered.completion_time.mean, recovered.completion_time.ci95
    );

    // 4. Dock-controller recovery policies inside the simulator: the same
    // crash hazard, recovered by journal replay vs payload re-scan.
    println!("\nDock-controller recovery policies (1 PB, 20% crash hazard per docking):");
    for (label, spec) in [
        ("journal-replay", DockControllerFaultSpec::journal_replay()),
        (
            "rebuild-from-scan",
            DockControllerFaultSpec::rebuild_from_scan(),
        ),
    ] {
        let mut policy_cfg = SimConfig::paper_default();
        policy_cfg.faults = Some(FaultSpec {
            dock_controller: Some(DockControllerFaultSpec {
                crash_probability_per_docking: 0.2,
                ..spec
            }),
            ..FaultSpec::recovery_only()
        });
        let report = DhlSystem::new(policy_cfg)?.run_bulk_transfer(Bytes::from_petabytes(1.0))?;
        let rel = &report.reliability;
        println!(
            "  {label:>17}: {} crashes, {:.0} s recovering, completion {:.1} s",
            rel.dock_controller_crashes,
            rel.dock_recovery_time.seconds(),
            report.completion_time.seconds()
        );
    }

    // 5. The same comparison at the scheduling layer: per-policy
    // availability impact on a mixed workload, fanned out via evaluate.
    let mut placement = Placement::new(Bytes::from_terabytes(256.0));
    let laion = placement.store(datasets::laion_5b());
    let crawl = placement.store(datasets::common_crawl());
    let requests = vec![
        TransferRequest::new(crawl, 1, Priority::Normal, Seconds::ZERO),
        TransferRequest::new(laion, 1, Priority::Urgent, Seconds::new(5.0)),
    ];
    let awareness = |spec: DockControllerFaultSpec| {
        let hazardous = DockControllerFaultSpec {
            crash_probability_per_docking: 0.2,
            ..spec
        };
        DockRecoveryAwareness::from_spec(&hazardous, Bytes::from_terabytes(256.0), 21)
    };
    let scenarios = vec![
        Scenario::new("crash-free", Policy::PriorityFifo),
        Scenario::new("journal-replay", Policy::PriorityFifo)
            .with_dock_recovery(awareness(DockControllerFaultSpec::journal_replay())),
        Scenario::new("rebuild-from-scan", Policy::PriorityFifo)
            .with_dock_recovery(awareness(DockControllerFaultSpec::rebuild_from_scan())),
    ];
    let outcomes = evaluate_scenarios(
        &SimConfig::paper_default(),
        &placement,
        &requests,
        scenarios,
        2,
    )?;
    println!("\nScheduler-level availability impact (37 dockings, same crash draws):");
    for o in &outcomes {
        let crashes: u64 = o.outcome.completed.iter().map(|r| r.dock_crashes).sum();
        println!(
            "  {:>17}: makespan {:>9.1} s, {} crashes, {:>8.1} s of dock downtime",
            o.label,
            o.outcome.makespan.seconds(),
            crashes,
            o.outcome
                .metrics
                .gauge("sched.dock_downtime_s")
                .unwrap_or(0.0)
        );
    }

    // CI snapshot: the kill-and-resume job runs this example once in
    // `complete` mode and once in `resume` mode and diffs the files — any
    // divergence means checkpoint/restore broke bit-identity.
    if let Ok(path) = std::env::var("DHL_CRASH_AUDIT_JSON") {
        let mode = std::env::var("DHL_CRASH_AUDIT_MODE").unwrap_or_else(|_| "resume".into());
        let report = match mode.as_str() {
            "complete" => &complete,
            "resume" => &resumed,
            other => return Err(format!("unknown DHL_CRASH_AUDIT_MODE {other:?}").into()),
        };
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"completion_time_s\": {},\n  \"delivered_bytes\": {},\n  \"deliveries\": {},\n  \"movements\": {},\n  \"events_processed\": {},\n  \"dock_controller_crashes\": {},\n  \"dock_recovery_time_s\": {},\n",
            report.completion_time.seconds(),
            report.delivered.as_u64(),
            report.deliveries,
            report.movements,
            report.events_processed,
            report.reliability.dock_controller_crashes,
            report.reliability.dock_recovery_time.seconds(),
        ));
        let mut counters: Vec<_> = report.metrics.counters.clone();
        counters.sort();
        json.push_str("  \"counters\": {\n");
        let body: Vec<String> = counters
            .iter()
            .map(|(name, value)| format!("    \"{name}\": {value}"))
            .collect();
        json.push_str(&body.join(",\n"));
        json.push_str("\n  }\n}\n");
        std::fs::write(&path, json)?;
        println!("\n(deterministic {mode} snapshot written to {path})");
    }
    Ok(())
}
