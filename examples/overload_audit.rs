//! Overload audit (§III-D management software under stress): drive the
//! scheduler open-loop with Poisson and bursty arrivals, sweep offered load
//! through the saturation knee, and show admission control turning overload
//! into a goodput *plateau* — bounded queues, deadline-aware rejection,
//! dock-saturation backpressure, and budgeted retries with deterministic
//! exponential backoff.
//!
//! ```text
//! cargo run --example overload_audit
//! DHL_OVERLOAD_FAST=1 cargo run --example overload_audit          # CI-sized
//! DHL_OVERLOAD_AUDIT_JSON=out.json cargo run --example overload_audit
//! ```

use datacentre_hyperloop::sched::placement::Placement;
use datacentre_hyperloop::sched::{
    AdmissionSpec, FaultAwareness, OverloadPolicy, Policy, Priority, Scheduler, TenantId,
    TransferRequest,
};
use datacentre_hyperloop::sim::{ArrivalGenerator, ArrivalProcess, ArrivalSpec, SimConfig};
use datacentre_hyperloop::storage::datasets::{Dataset, DatasetKind};
use datacentre_hyperloop::units::{Bytes, Seconds};

const TENANTS: u32 = 3;

/// One tenant dataset per modulus class: 1, 2, or 3 carts (256 TB each).
fn tenant_dataset(tenant: u32) -> Dataset {
    let carts = (tenant % 3) + 1;
    Dataset {
        name: format!("tenant-{tenant}").into(),
        size: Bytes::from_terabytes(256.0 * f64::from(carts)),
        kind: DatasetKind::BigData,
    }
}

/// Per-tenant summary row: (tenant id, deadline-hit ratio, p95 latency).
type TenantRow = (u32, f64, f64);

struct SweepPoint {
    rate: f64,
    offered: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    served: u64,
    retries: u64,
    deadline_hit_ratio: f64,
    goodput_gb_s: f64,
}

fn run_at(
    rate: f64,
    n_requests: usize,
    spec: &AdmissionSpec,
    process: Option<ArrivalProcess>,
) -> Result<(SweepPoint, Vec<TenantRow>), Box<dyn std::error::Error>> {
    run_workload(rate, n_requests, spec, process, false)
}

/// `uniform` flattens every tenant to Normal priority, so FIFO service
/// order matches admission order and the deadline-feasibility estimate is
/// exact up to retries.
fn run_workload(
    rate: f64,
    n_requests: usize,
    spec: &AdmissionSpec,
    process: Option<ArrivalProcess>,
    uniform: bool,
) -> Result<(SweepPoint, Vec<TenantRow>), Box<dyn std::error::Error>> {
    let mut placement = Placement::new(Bytes::from_terabytes(256.0));
    let ids: Vec<_> = (0..TENANTS)
        .map(|t| placement.store(tenant_dataset(t)))
        .collect();

    let mut arrival_spec = ArrivalSpec::poisson(rate, Seconds::new(1e12), 99)
        .with_tenants(TENANTS)
        .with_deadlines(Seconds::new(600.0), 0.25);
    if let Some(process) = process {
        arrival_spec.process = process;
    }
    let arrivals = ArrivalGenerator::new(&arrival_spec);

    let mut sched = Scheduler::new(SimConfig::paper_default(), placement)?
        .with_policy(Policy::PriorityFifo)
        .with_admission(spec.clone())
        .with_faults(FaultAwareness {
            loss_probability: 0.05,
            max_attempts: 8, // sampling only: the retry *budget* rules open-loop
            seed: 17,
            downtime: Vec::new(),
        });
    for a in arrivals.take(n_requests) {
        let mut req = TransferRequest::new(
            ids[a.tenant as usize % ids.len()],
            1,
            if a.tenant == 0 && !uniform {
                Priority::Urgent
            } else {
                Priority::Normal
            },
            Seconds::new(a.at.seconds()),
        )
        .with_tenant(TenantId(a.tenant));
        if let Some(deadline) = a.deadline {
            req = req.with_deadline(deadline);
        }
        sched.submit(req);
    }
    let out = sched.run();
    let report = out.admission.expect("open-loop run carries a report");
    let tenants: Vec<TenantRow> = report
        .tenants
        .iter()
        .map(|t| (t.tenant.0, t.latency.p99, t.deadline_hit_ratio()))
        .collect();
    Ok((
        SweepPoint {
            rate,
            offered: report.offered,
            admitted: report.admitted,
            rejected: report.rejected(),
            shed: report.shed,
            served: report.served,
            retries: report.retries,
            deadline_hit_ratio: report.deadline_hit_ratio(),
            goodput_gb_s: report.goodput_bytes_per_s / 1e9,
        },
        tenants,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::var("DHL_OVERLOAD_FAST").is_ok();
    let n_requests = if fast { 48 } else { 160 };

    // Tenants average two carts per request: service ≈ 2 × 17.2 s round
    // trips, so the track saturates near 1 / 34.4 ≈ 0.029 req/s.
    let saturation = 1.0 / 34.4;
    let multipliers: &[f64] = if fast {
        &[0.5, 1.0, 2.0, 4.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };

    let spec = AdmissionSpec {
        max_pending_global: 24,
        max_pending_per_tenant: 12,
        policy: OverloadPolicy::ShedLowestPriority,
        // Deadline awareness is demonstrated separately below: with it on,
        // infeasible requests are turned away at the door before queue
        // bounds (and hence shedding) ever engage.
        deadline_aware: false,
        dock_busy_watermark: 1.0,
        ..AdmissionSpec::default()
    };

    println!(
        "Open-loop overload sweep ({TENANTS} tenants, Poisson arrivals, shed-lowest-priority):"
    );
    println!(
        "  {:>8} {:>8} {:>9} {:>9} {:>6} {:>7} {:>8} {:>9} {:>10}",
        "load",
        "offered",
        "admitted",
        "rejected",
        "shed",
        "served",
        "retries",
        "ddl-hit",
        "goodput"
    );
    let mut points = Vec::new();
    for &m in multipliers {
        let (point, _) = run_at(saturation * m, n_requests, &spec, None)?;
        println!(
            "  {:>7.2}x {:>8} {:>9} {:>9} {:>6} {:>7} {:>8} {:>8.0}% {:>7.1} GB/s",
            m,
            point.offered,
            point.admitted,
            point.rejected,
            point.shed,
            point.served,
            point.retries,
            point.deadline_hit_ratio * 100.0,
            point.goodput_gb_s
        );
        points.push(point);
    }

    // The knee: the first load whose goodput is within 5% of the peak.
    let peak = points.iter().map(|p| p.goodput_gb_s).fold(0.0, f64::max);
    let knee = points
        .iter()
        .position(|p| p.goodput_gb_s >= 0.95 * peak)
        .expect("peak is attained");
    println!(
        "\n  goodput knee at {:.1}x saturation ({:.1} GB/s peak); past the knee the",
        points[knee].rate / saturation,
        peak
    );
    println!("  controller sheds/rejects excess load instead of letting goodput collapse:");
    let last = points.last().expect("non-empty sweep");
    println!(
        "  at {:.1}x offered load goodput holds {:.0}% of peak.",
        last.rate / saturation,
        last.goodput_gb_s / peak * 100.0
    );
    assert!(
        last.goodput_gb_s >= 0.5 * peak,
        "overload must plateau, not collapse"
    );
    // Retry budgets bound cleanup traffic: never more than the per-tenant
    // token allowance across the whole run.
    let budget = spec.retry.tokens_per_tenant as u64 * u64::from(TENANTS);
    for p in &points {
        assert!(p.retries <= budget, "retries exceeded the token budget");
    }

    // Per-tenant SLO detail at the knee.
    let (_, tenants) = run_at(points[knee].rate, n_requests, &spec, None)?;
    println!("\nPer-tenant SLO at the knee (p99 delivery latency, deadline-hit ratio):");
    for (tenant, p99, hit) in &tenants {
        println!(
            "  tenant {tenant}: p99 {p99:>7.1} s, deadline hits {:.0}%",
            hit * 100.0
        );
    }

    // Deadline-aware admission: the same overloaded mix, but infeasible
    // requests are refused at the door (earliest-completion estimate vs
    // deadline) instead of queueing only to miss.
    let deadline_spec = AdmissionSpec {
        deadline_aware: true,
        ..spec.clone()
    };
    let (deadline_point, _) =
        run_workload(saturation * 2.0, n_requests, &deadline_spec, None, true)?;
    let (deadline_base, _) = run_workload(saturation * 2.0, n_requests, &spec, None, true)?;
    println!(
        "\nDeadline-aware admission at 2x saturation: {} of {} turned away up front;\n  the {} admitted hit {:.0}% of their deadlines (vs {:.0}% without the check).",
        deadline_point.rejected,
        deadline_point.offered,
        deadline_point.admitted,
        deadline_point.deadline_hit_ratio * 100.0,
        deadline_base.deadline_hit_ratio * 100.0
    );

    // Bursty arrivals: an on/off (MMPP-style) source at the same mean rate
    // stresses the bounded queue far harder than Poisson — backpressure and
    // shedding absorb the bursts.
    let burst = ArrivalProcess::OnOffBurst {
        on_rate_per_second: saturation * 6.0,
        off_rate_per_second: 0.0,
        mean_on_duration: Seconds::new(300.0),
        mean_off_duration: Seconds::new(600.0),
    };
    let (burst_point, _) = run_at(saturation * 2.0, n_requests, &spec, Some(burst))?;
    println!(
        "\nBursty (on/off) arrivals at 6x-saturation peaks: {} offered, {} shed + {} rejected,\n  goodput {:.1} GB/s — the controller rides out bursts without collapse.",
        burst_point.offered,
        burst_point.shed,
        burst_point.rejected,
        burst_point.goodput_gb_s
    );

    // CI determinism hook: DHL_OVERLOAD_AUDIT_JSON=<path> writes the
    // deterministic sweep (no wall-clock gauges) so two runs diff cleanly.
    if let Ok(path) = std::env::var("DHL_OVERLOAD_AUDIT_JSON") {
        let mut json = String::from("{\n  \"sweep\": [\n");
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"rate_per_s\": {}, \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \"served\": {}, \"retries\": {}, \"deadline_hit_ratio\": {}, \"goodput_gb_s\": {}}}",
                    p.rate,
                    p.offered,
                    p.admitted,
                    p.rejected,
                    p.shed,
                    p.served,
                    p.retries,
                    p.deadline_hit_ratio,
                    p.goodput_gb_s
                )
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ],\n  \"tenants_at_knee\": [\n");
        let rows: Vec<String> = tenants
            .iter()
            .map(|(tenant, p99, hit)| {
                format!(
                    "    {{\"tenant\": {tenant}, \"p99_s\": {p99}, \"deadline_hit_ratio\": {hit}}}"
                )
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str(&format!(
            "\n  ],\n  \"burst\": {{\"offered\": {}, \"shed\": {}, \"rejected\": {}, \"goodput_gb_s\": {}}}\n}}\n",
            burst_point.offered, burst_point.shed, burst_point.rejected, burst_point.goodput_gb_s
        ));
        std::fs::write(&path, json)?;
        println!("\n  (deterministic overload snapshot written to {path})");
    }
    Ok(())
}
