//! Multi-tenant scheduling (§III-D): three teams share one DHL — an urgent
//! training job, a normal analytics refresh, and a background backup — and
//! the management software arbitrates the track.
//!
//! ```text
//! cargo run --example multi_tenant_scheduler
//! ```

use datacentre_hyperloop::sched::evaluate::{evaluate, Scenario};
use datacentre_hyperloop::sched::placement::Placement;
use datacentre_hyperloop::sched::scheduler::{
    IntegrityAwareness, Policy, Priority, Scheduler, TransferRequest,
};
use datacentre_hyperloop::sched::DataState;
use datacentre_hyperloop::sim::SimConfig;
use datacentre_hyperloop::storage::datasets;
use datacentre_hyperloop::units::{Bytes, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The library holds three tenants' datasets on 256 TB carts.
    let mut placement = Placement::new(Bytes::from_terabytes(256.0));
    let training = placement.store(datasets::laion_5b()); // 250 TB, 1 cart
    let analytics = placement.store(datasets::common_crawl()); // 9 PB, 36 carts
    let backup = placement.store(datasets::genomics_17pb()); // 17 PB, 68 carts
    println!(
        "library: {} carts provisioned, {} occupied\n",
        placement.cart_count(),
        placement.occupied_carts()
    );

    let mut sched = Scheduler::new(SimConfig::paper_default(), placement)?;
    let ids = [
        (
            "backup (background)",
            sched.submit(TransferRequest::new(
                backup,
                1,
                Priority::Background,
                Seconds::ZERO,
            )),
        ),
        (
            "analytics (normal)",
            sched.submit(
                TransferRequest::new(analytics, 1, Priority::Normal, Seconds::ZERO)
                    .with_dwell(Seconds::new(30.0)),
            ),
        ),
        (
            "training (urgent)",
            sched.submit(TransferRequest::new(
                training,
                1,
                Priority::Urgent,
                Seconds::new(5.0),
            )),
        ),
    ];

    let outcome = sched.run();
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>10}",
        "request", "carts", "delivered s", "done s", "energy kJ"
    );
    for (name, id) in ids {
        let r = outcome
            .completed
            .iter()
            .find(|o| o.id == id)
            .expect("all requests complete");
        println!(
            "{:<24} {:>10} {:>12.1} {:>12.1} {:>10.1}",
            name,
            r.deliveries,
            r.delivered.seconds(),
            r.completed.seconds(),
            r.energy.kilojoules()
        );
    }
    println!(
        "\nmakespan {:.0} s, track utilisation {:.0}%, total energy {:.2} MJ",
        outcome.makespan.seconds(),
        outcome.track_utilisation * 100.0,
        outcome.total_energy.megajoules()
    );

    // What if the operator had picked a different discipline? Evaluate the
    // same workload under every candidate policy side by side — the
    // scenarios fan out across threads (DHL_SIM_THREADS to override) and
    // come back in order.
    let mut placement = Placement::new(Bytes::from_terabytes(256.0));
    let training = placement.store(datasets::laion_5b());
    let analytics = placement.store(datasets::common_crawl());
    let backup = placement.store(datasets::genomics_17pb());
    let requests = vec![
        TransferRequest::new(backup, 1, Priority::Background, Seconds::ZERO),
        TransferRequest::new(analytics, 1, Priority::Normal, Seconds::ZERO)
            .with_dwell(Seconds::new(30.0)),
        TransferRequest::new(training, 1, Priority::Urgent, Seconds::new(5.0)),
    ];
    let scenarios = vec![
        Scenario::new("priority FIFO", Policy::PriorityFifo),
        Scenario::new("shortest job first", Policy::ShortestJobFirst),
        Scenario::new("FIFO + verify-on-dock", Policy::PriorityFifo)
            .with_integrity(IntegrityAwareness::verification_only(Seconds::new(3.0))),
    ];
    println!(
        "\n{:<24} {:>12} {:>12} {:>12}",
        "policy", "makespan s", "util %", "energy MJ"
    );
    for s in evaluate(
        &SimConfig::paper_default(),
        &placement,
        &requests,
        scenarios,
    )? {
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>12.2}",
            s.label,
            s.outcome.makespan.seconds(),
            s.outcome.track_utilisation * 100.0,
            s.outcome.total_energy.megajoules()
        );
    }

    // Availability: mid-transit, the training data is unreadable.
    let t = Seconds::new(10.0);
    println!(
        "\nat t = {:.0} s the training dataset is {:?}",
        t.seconds(),
        sched.availability().state_at(training, t)
    );
    assert_ne!(
        sched.availability().state_at(training, Seconds::new(1e6)),
        DataState::InTransit
    );
    Ok(())
}
