//! # Data Centre Hyperloops (DHL)
//!
//! A complete, reproducible implementation of the models and simulators from
//! *"The Case For Data Centre Hyperloops"* (ISCA 2024): physically moving
//! commodity M.2 SSDs on maglev carts through low-pressure tubes as an
//! alternative to copying petabyte-scale datasets over the optical network.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`units`] — strongly-typed physical quantities (bytes, joules, watts, …).
//! - [`physics`] — the maglev physics substrate (kinematics, LIM, levitation).
//! - [`storage`] — SSD/HDD device models, cart storage, dataset catalog.
//! - [`net`] — the optical data-centre network baseline (routes A0..C).
//! - [`sim`] — a discrete-event simulator of the full DHL system.
//! - [`core`] — the paper's analytical model: launch metrics, design-space
//!   exploration, bulk-transfer comparison, cost model, crossover analysis.
//! - [`sched`] — the §III-D management-software layer: dataset placement,
//!   request scheduling, and data-availability tracking.
//! - [`mlsim`] — a distributed ML-training simulator (ASTRA-sim substitute)
//!   for the iso-power / iso-time experiments.
//!
//! ## Quickstart
//!
//! ```rust
//! use datacentre_hyperloop::core::{DhlConfig, LaunchMetrics};
//! use datacentre_hyperloop::units::{Metres, MetresPerSecond, TERABYTE};
//!
//! // The paper's default configuration: 200 m/s over 500 m, 256 TB per cart.
//! let cfg = DhlConfig::paper_default();
//! let metrics = LaunchMetrics::evaluate(&cfg);
//! assert!((metrics.energy.kilojoules() - 15.0).abs() < 0.1);
//! assert!((metrics.trip_time.seconds() - 8.6).abs() < 0.05);
//! ```

pub use dhl_core as core;
pub use dhl_mlsim as mlsim;
pub use dhl_net as net;
pub use dhl_physics as physics;
pub use dhl_sched as sched;
pub use dhl_sim as sim;
pub use dhl_storage as storage;
pub use dhl_units as units;

/// Version of the reproduction, mirroring the workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
