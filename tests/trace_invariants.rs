//! Replays DES traces to prove the simulator honours its physical
//! invariants: well-formed cart lifecycles, dock-capacity limits, and the
//! single-track no-two-directions rule.

use datacentre_hyperloop::sim::{DhlSystem, SimConfig, TraceEventKind};
use datacentre_hyperloop::units::Bytes;

fn traced_run(cfg: SimConfig, pb: f64) -> datacentre_hyperloop::sim::Trace {
    let mut sys = DhlSystem::new(cfg).unwrap();
    sys.enable_trace(1_000_000);
    sys.run_bulk_transfer(Bytes::from_petabytes(pb)).unwrap();
    sys.take_trace().unwrap()
}

#[test]
fn every_cart_lifecycle_is_well_formed() {
    for cfg in [SimConfig::paper_serial(), SimConfig::paper_default(), {
        let mut c = SimConfig::paper_default();
        c.dual_track = true;
        c
    }] {
        let carts = cfg.num_carts as usize;
        let trace = traced_run(cfg, 10.0);
        assert_eq!(trace.dropped(), 0);
        for cart in 0..carts {
            assert!(trace.lifecycle_is_well_formed(cart), "cart {cart}");
        }
    }
}

#[test]
fn dock_capacity_never_exceeded() {
    let cfg = SimConfig::paper_default();
    let docks: Vec<u32> = cfg.endpoints.iter().map(|e| e.docks).collect();
    let num_carts = cfg.num_carts;
    let trace = traced_run(cfg, 29.0);

    // Replay: a dock is reserved from Launch (destination) until the next
    // Launch away from it; we conservatively track carts-present:
    // occupancy(endpoint) = docked + incoming reservations.
    let mut occupancy: Vec<i64> = docks.iter().map(|_| 0).collect();
    occupancy[0] = i64::from(num_carts);
    let mut cart_source: Vec<usize> = vec![0; num_carts as usize];
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Launch { cart, from, to } => {
                occupancy[to] += 1; // reservation
                cart_source[cart] = from;
            }
            TraceEventKind::EnterTube { cart } => {
                occupancy[cart_source[cart]] -= 1; // source dock freed
            }
            _ => {}
        }
        for (ep, &occ) in occupancy.iter().enumerate() {
            assert!(
                occ >= 0 && occ <= i64::from(docks[ep]),
                "endpoint {ep}: occupancy {occ} vs {} docks at t={}",
                docks[ep],
                e.time.seconds()
            );
        }
    }
}

#[test]
fn single_track_never_carries_two_directions() {
    let trace = traced_run(SimConfig::paper_default(), 29.0);
    // Between EnterTube and BeginDock a cart occupies the tube. On a single
    // track all simultaneous occupants must share a direction (outbound if
    // destination index > source).
    let mut in_tube: std::collections::HashMap<usize, bool> = std::collections::HashMap::new();
    let mut headed_out: Vec<bool> = vec![false; 64];
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Launch { cart, from, to } => {
                headed_out[cart] = to > from;
            }
            TraceEventKind::EnterTube { cart } => {
                in_tube.insert(cart, headed_out[cart]);
                let dirs: std::collections::HashSet<bool> = in_tube.values().copied().collect();
                assert!(
                    dirs.len() <= 1,
                    "mixed directions in tube at t={}",
                    e.time.seconds()
                );
            }
            TraceEventKind::BeginDock { cart } => {
                in_tube.remove(&cart);
            }
            _ => {}
        }
    }
}

#[test]
fn same_direction_launches_respect_headway() {
    let cfg = SimConfig::paper_default();
    let headway = cfg.launch_headway().seconds();
    let trace = traced_run(cfg, 29.0);
    let mut last_launch: Option<f64> = None;
    let mut tube_population = 0i64;
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Launch { .. } => {
                if tube_population > 0 {
                    if let Some(prev) = last_launch {
                        assert!(
                            e.time.seconds() - prev >= headway - 1e-9,
                            "launch at {} too close to {prev}",
                            e.time.seconds()
                        );
                    }
                }
                last_launch = Some(e.time.seconds());
                tube_population += 1;
            }
            TraceEventKind::Docked { .. } => tube_population -= 1,
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection invariants: replayed from the same traces.
// ---------------------------------------------------------------------------

use datacentre_hyperloop::sim::{CartStallSpec, FaultSpec, ReliabilitySpec};
use datacentre_hyperloop::storage::failure::{FailureModel, RaidConfig};
use datacentre_hyperloop::units::Seconds;

/// Paper-default pipeline with mechanical stalls enabled.
fn stall_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.faults = Some(FaultSpec {
        cart_stall: Some(CartStallSpec {
            probability_per_movement: 0.1,
            repair_time: Seconds::new(90.0),
        }),
        ..FaultSpec::recovery_only()
    });
    cfg
}

/// Paper-default pipeline with a substantial per-delivery loss rate
/// (~39 %) and a generous retry budget, so redeliveries occur but nothing
/// is abandoned.
fn lossy_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.dock_time = datacentre_hyperloop::units::Seconds::new(100_000.0);
    cfg.reliability = Some(ReliabilitySpec {
        failure: FailureModel::new(0.9),
        raid: RaidConfig::none(32),
        ssds_per_cart: 32,
        seed,
    });
    cfg.faults = Some(FaultSpec {
        max_delivery_attempts: 64,
        ..FaultSpec::recovery_only()
    });
    cfg
}

#[test]
fn no_launch_enters_a_stalled_track() {
    // Single-track config: every movement maps to track 0, so any Launch
    // between CartStalled{track} and TrackRestored{track} is a violation.
    let trace = traced_run(stall_cfg(), 20.0);
    let mut blocked: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut stall_windows = 0u32;
    for e in trace.events() {
        match e.kind {
            TraceEventKind::CartStalled { track, .. } => {
                assert!(
                    blocked.insert(track),
                    "track {track} stalled twice without restoration at t={}",
                    e.time.seconds()
                );
                stall_windows += 1;
            }
            TraceEventKind::TrackRestored { track } => {
                assert!(
                    blocked.remove(&track),
                    "track {track} restored while not blocked at t={}",
                    e.time.seconds()
                );
            }
            TraceEventKind::Launch { .. } => {
                assert!(
                    blocked.is_empty(),
                    "launch into a blocked track at t={}",
                    e.time.seconds()
                );
            }
            _ => {}
        }
    }
    assert!(blocked.is_empty(), "trace ended with a track still blocked");
    assert!(
        stall_windows > 0,
        "config should produce at least one stall"
    );
}

#[test]
fn every_failed_delivery_is_redelivered_or_abandoned() {
    // A successful run must resolve every DeliveryFailed with a redelivery:
    // replay the trace and match each failure against a later launch toward
    // the same endpoint, then cross-check against the reliability report.
    let pb = 2.0;
    let mut sys = DhlSystem::new(lossy_cfg(17)).unwrap();
    sys.enable_trace(1_000_000);
    let report = sys
        .run_bulk_transfer(Bytes::from_petabytes(pb))
        .expect("generous retry budget: nothing is abandoned");
    let trace = sys.take_trace().unwrap();

    let mut total_failures = 0u64;
    let mut launches = 0u64;
    for e in trace.events() {
        match e.kind {
            TraceEventKind::DeliveryFailed { .. } => total_failures += 1,
            // Outbound launches serve fresh demand or redeliveries.
            TraceEventKind::Launch { from, to, .. } if from == 0 && to != 0 => launches += 1,
            _ => {}
        }
    }
    // Completion proves every byte landed: failures were all re-served.
    assert_eq!(report.delivered, Bytes::from_petabytes(pb));
    assert_eq!(total_failures, report.reliability.redeliveries);
    assert!(
        total_failures > 0,
        "lossy config should fail some deliveries"
    );
    // Every failure triggered exactly one extra outbound launch.
    let shards = Bytes::from_petabytes(pb).div_ceil(Bytes::from_terabytes(256.0));
    assert_eq!(launches, shards + total_failures);
}

#[test]
fn fault_traces_are_deterministic_per_seed() {
    let run = |seed| {
        let mut sys = DhlSystem::new(lossy_cfg(seed)).unwrap();
        sys.enable_trace(1_000_000);
        let report = sys.run_bulk_transfer(Bytes::from_petabytes(1.0)).unwrap();
        (report, sys.take_trace().unwrap().events().to_vec())
    };
    let (ra, ta) = run(9);
    let (rb, tb) = run(9);
    assert_eq!(ra, rb);
    assert_eq!(ta, tb);
}

#[test]
fn integrity_events_never_interleave_with_transit() {
    // Verify-on-dock with intermittent over-tolerance corruption: the scrub
    // lifecycle (VerifyStarted → verdict → optional reconstruction) must sit
    // entirely inside the cart's docked-at-rack phase, for every cart.
    use datacentre_hyperloop::sim::IntegritySpec;
    use datacentre_hyperloop::storage::integrity::CorruptionModel;

    let mut cfg = SimConfig::paper_default();
    cfg.integrity = Some(IntegritySpec {
        corruption: CorruptionModel {
            mating_error_per_cycle: 0.12,
            ..CorruptionModel::paper_default()
        },
        ..IntegritySpec::typical()
    });
    cfg.faults = Some(FaultSpec {
        max_delivery_attempts: 64,
        ..FaultSpec::recovery_only()
    });
    let carts = cfg.num_carts as usize;
    let mut sys = DhlSystem::new(cfg).unwrap();
    sys.enable_trace(1_000_000);
    let report = sys.run_bulk_transfer(Bytes::from_petabytes(8.0)).unwrap();
    let trace = sys.take_trace().unwrap();

    assert!(
        report.integrity.deliveries_reshipped > 0,
        "config should force some over-tolerance corruption"
    );
    for cart in 0..carts {
        assert!(trace.lifecycle_is_well_formed(cart), "cart {cart}");
        assert!(
            trace.integrity_lifecycle_is_well_formed(cart),
            "cart {cart} integrity lifecycle"
        );
    }
    // Verdict conservation: every scrub resolves, and reshipped verdicts
    // match the report and the redelivery machinery 1:1.
    let (mut started, mut ok, mut bad) = (0u64, 0u64, 0u64);
    for e in trace.events() {
        match e.kind {
            TraceEventKind::VerifyStarted { .. } => started += 1,
            TraceEventKind::PayloadVerified { .. } => ok += 1,
            TraceEventKind::PayloadCorrupted { .. } => bad += 1,
            _ => {}
        }
    }
    assert_eq!(started, ok + bad);
    assert_eq!(
        started,
        report.integrity.deliveries_verified + report.integrity.deliveries_reshipped
    );
    assert_eq!(
        report.integrity.deliveries_reshipped,
        report.reliability.redeliveries
    );
}
