//! Replays DES traces to prove the simulator honours its physical
//! invariants: well-formed cart lifecycles, dock-capacity limits, and the
//! single-track no-two-directions rule.

use datacentre_hyperloop::sim::{
    DhlSystem, SimConfig, TraceEventKind,
};
use datacentre_hyperloop::units::Bytes;

fn traced_run(cfg: SimConfig, pb: f64) -> datacentre_hyperloop::sim::Trace {
    let mut sys = DhlSystem::new(cfg).unwrap();
    sys.enable_trace(1_000_000);
    sys.run_bulk_transfer(Bytes::from_petabytes(pb)).unwrap();
    sys.take_trace().unwrap()
}

#[test]
fn every_cart_lifecycle_is_well_formed() {
    for cfg in [SimConfig::paper_serial(), SimConfig::paper_default(), {
        let mut c = SimConfig::paper_default();
        c.dual_track = true;
        c
    }] {
        let carts = cfg.num_carts as usize;
        let trace = traced_run(cfg, 10.0);
        assert_eq!(trace.dropped(), 0);
        for cart in 0..carts {
            assert!(trace.lifecycle_is_well_formed(cart), "cart {cart}");
        }
    }
}

#[test]
fn dock_capacity_never_exceeded() {
    let cfg = SimConfig::paper_default();
    let docks: Vec<u32> = cfg.endpoints.iter().map(|e| e.docks).collect();
    let num_carts = cfg.num_carts;
    let trace = traced_run(cfg, 29.0);

    // Replay: a dock is reserved from Launch (destination) until the next
    // Launch away from it; we conservatively track carts-present:
    // occupancy(endpoint) = docked + incoming reservations.
    let mut occupancy: Vec<i64> = docks.iter().map(|_| 0).collect();
    occupancy[0] = i64::from(num_carts);
    let mut cart_source: Vec<usize> = vec![0; num_carts as usize];
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Launch { cart, from, to } => {
                occupancy[to] += 1; // reservation
                cart_source[cart] = from;
            }
            TraceEventKind::EnterTube { cart } => {
                occupancy[cart_source[cart]] -= 1; // source dock freed
            }
            _ => {}
        }
        for (ep, &occ) in occupancy.iter().enumerate() {
            assert!(
                occ >= 0 && occ <= i64::from(docks[ep]),
                "endpoint {ep}: occupancy {occ} vs {} docks at t={}",
                docks[ep],
                e.time.seconds()
            );
        }
    }
}

#[test]
fn single_track_never_carries_two_directions() {
    let trace = traced_run(SimConfig::paper_default(), 29.0);
    // Between EnterTube and BeginDock a cart occupies the tube. On a single
    // track all simultaneous occupants must share a direction (outbound if
    // destination index > source).
    let mut in_tube: std::collections::HashMap<usize, bool> = std::collections::HashMap::new();
    let mut headed_out: Vec<bool> = vec![false; 64];
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Launch { cart, from, to } => {
                headed_out[cart] = to > from;
            }
            TraceEventKind::EnterTube { cart } => {
                in_tube.insert(cart, headed_out[cart]);
                let dirs: std::collections::HashSet<bool> =
                    in_tube.values().copied().collect();
                assert!(
                    dirs.len() <= 1,
                    "mixed directions in tube at t={}",
                    e.time.seconds()
                );
            }
            TraceEventKind::BeginDock { cart } => {
                in_tube.remove(&cart);
            }
            _ => {}
        }
    }
}

#[test]
fn same_direction_launches_respect_headway() {
    let cfg = SimConfig::paper_default();
    let headway = cfg.launch_headway().seconds();
    let trace = traced_run(cfg, 29.0);
    let mut last_launch: Option<f64> = None;
    let mut tube_population = 0i64;
    for e in trace.events() {
        match e.kind {
            TraceEventKind::Launch { .. } => {
                if tube_population > 0 {
                    if let Some(prev) = last_launch {
                        assert!(
                            e.time.seconds() - prev >= headway - 1e-9,
                            "launch at {} too close to {prev}",
                            e.time.seconds()
                        );
                    }
                }
                last_launch = Some(e.time.seconds());
                tube_population += 1;
            }
            TraceEventKind::Docked { .. } => tube_population -= 1,
            _ => {}
        }
    }
}
