//! End-to-end checks of the paper's headline claims, spanning every crate.

use datacentre_hyperloop::core::{
    crossover, paper_dataset, paper_minimal_dhl, paper_table_vi, CostModel, DhlConfig,
};
use datacentre_hyperloop::mlsim::{iso_power, iso_time, DhlFabric, DlrmWorkload};
use datacentre_hyperloop::net::route::{Route, RouteId};
use datacentre_hyperloop::units::{Metres, MetresPerSecond, Watts};

#[test]
fn abstract_energy_reductions_1_6x_to_376x() {
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for p in paper_table_vi() {
        for (_, r) in p.comparison.energy_reduction {
            lo = lo.min(r);
            hi = hi.max(r);
        }
    }
    assert!((lo - 1.6).abs() < 0.05, "min {lo}");
    assert!((hi - 376.1).abs() / 376.1 < 0.01, "max {hi}");
}

#[test]
fn abstract_time_speedups_114x_to_646x() {
    let speedups: Vec<f64> = paper_table_vi()
        .iter()
        .map(|p| p.comparison.time_speedup)
        .collect();
    let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().cloned().fold(0.0, f64::max);
    assert!((lo - 114.8).abs() / 114.8 < 0.015, "min {lo}");
    assert!((hi - 646.4).abs() / 646.4 < 0.015, "max {hi}");
}

#[test]
fn abstract_simulation_speedups_5_7x_to_118x_iso_power() {
    let workload = DlrmWorkload::paper_dlrm();
    let dhl = DhlConfig::paper_default();
    let budget = DhlFabric::new(dhl.clone(), 1).track_power();
    let table = iso_power(&workload, &dhl, budget);
    let factors: Vec<f64> = table.rows[1..].iter().map(|r| r.factor_vs_dhl).collect();
    // Paper: 5.7× (A0) to 118× (C); ours within 15 %.
    assert!((factors[0] - 5.7).abs() / 5.7 < 0.15, "A0 {}", factors[0]);
    assert!(
        (factors[4] - 118.0).abs() / 118.0 < 0.15,
        "C {}",
        factors[4]
    );
}

#[test]
fn abstract_power_reductions_6_4x_to_135x_iso_time() {
    let table = iso_time(&DlrmWorkload::paper_dlrm(), &DhlConfig::paper_default());
    let factors: Vec<f64> = table.rows[1..].iter().map(|r| r.factor_vs_dhl).collect();
    // Paper: 6.4× (A0) to 135× (C); ours run up to ~1.45× higher because
    // our derived DHL iteration is faster than the paper's (1212 vs 1350 s).
    assert!(
        factors[0] / 6.4 > 1.0 && factors[0] / 6.4 < 1.45,
        "A0 {}",
        factors[0]
    );
    assert!(
        factors[4] / 135.0 > 1.0 && factors[4] / 135.0 < 1.45,
        "C {}",
        factors[4]
    );
}

#[test]
fn abstract_efficiency_up_to_73_3_gb_per_joule() {
    let best = paper_table_vi()
        .iter()
        .map(|p| p.launch.efficiency.value())
        .fold(0.0, f64::max);
    assert!((best - 73.3).abs() < 0.1, "best {best}");
}

#[test]
fn intro_one_week_and_64_tbps_claims() {
    // §I: 29 PB at 400 Gb/s ≈ 1 week; a 1-hour transfer needs 161× ≈
    // > 64 Tb/s.
    let t = Route::a0().transfer_time(paper_dataset());
    assert!(t.days() > 6.5 && t.days() < 7.0);
    let needed_speedup = t.seconds() / 3600.0;
    assert!((needed_speedup - 161.0).abs() < 1.0, "{needed_speedup}");
    assert!(400e9 * needed_speedup > 64e12);
}

#[test]
fn cost_analysis_dhl_is_financially_practical() {
    // §V-D: "DHL costs roughly twenty thousand dollars, which is a typical
    // price for a large 400gbps switch."
    let m = CostModel::paper();
    for d in [100.0, 500.0, 1000.0] {
        for v in [100.0, 200.0, 300.0] {
            let c = m.total_cost(Metres::new(d), MetresPerSecond::new(v));
            assert!(
                c.value() > 5_000.0 && c.value() < 25_000.0,
                "{d} m / {v} m/s: {c}"
            );
        }
    }
}

#[test]
fn crossover_dhl_wins_above_360_gb_and_10_metres() {
    let c = crossover(&paper_minimal_dhl());
    // Breakeven within 3 % of the paper's 360 GB.
    assert!((c.breakeven_dataset.gigabytes() - 360.0).abs() / 360.0 < 0.03);
    // At breakeven the DHL's energy is already far below optical's.
    assert!(c.optical_energy.value() / c.dhl_energy.value() > 20.0);
}

#[test]
fn fig2_route_energies_exact() {
    let expected = [
        (RouteId::A0, 13.92),
        (RouteId::A1, 22.97),
        (RouteId::A2, 50.05),
        (RouteId::B, 174.75),
        (RouteId::C, 299.45),
    ];
    for (id, mj) in expected {
        let got = Route::from_id(id)
            .transfer_energy(paper_dataset())
            .megajoules();
        assert!((got - mj).abs() < 0.005, "{id}: {got}");
    }
}

#[test]
fn dhl_average_power_anchor_is_1_75_kw() {
    let p = DhlFabric::new(DhlConfig::paper_default(), 1).track_power();
    assert!((p.value() - 1_750.0).abs() < 5.0, "{p}");
    let _ = Watts::new(1_750.0);
}
