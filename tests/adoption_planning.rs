//! End-to-end adoption planning: a data-centre operator sizes, prices,
//! wears out, and carbon-accounts a DHL deployment over a multi-year
//! horizon — exercising growth, fleet, wear, carbon, scheduler and DES
//! together.

use datacentre_hyperloop::core::{
    annualise, plan_for_bandwidth, BulkTransfer, CartCostModel, CostModel, DhlConfig, GridModel,
    PipelineModel,
};
use datacentre_hyperloop::net::route::Route;
use datacentre_hyperloop::sim::{DhlSystem, SimConfig};
use datacentre_hyperloop::storage::growth::{FleetProjection, GrowthModel};
use datacentre_hyperloop::storage::wear::{CartWear, EnduranceModel};
use datacentre_hyperloop::units::{Bytes, BytesPerSecond};

#[test]
fn five_year_adoption_plan_holds_together() {
    // Year 0: Meta's 29 PB dataset, restaged daily to the training pod.
    let dataset = Bytes::from_petabytes(29.0);
    let cfg = DhlConfig::paper_default();

    // 1. Size a fleet for 30 TB/s sustained (Table VI's embodied bandwidth).
    let plan = plan_for_bandwidth(
        BytesPerSecond::from_terabytes_per_second(30.0),
        &cfg,
        PipelineModel::PipelinedOneWay,
        &CostModel::paper(),
        &CartCostModel::paper_era(),
    );
    assert_eq!(plan.tracks, 2);
    assert!(plan.total_cost.value() < 150_000.0, "{}", plan.total_cost);

    // 2. The DES confirms the delivered schedule at that scale.
    let report = DhlSystem::new(SimConfig::paper_default())
        .unwrap()
        .run_bulk_transfer(dataset)
        .unwrap();
    assert!(report.embodied_bandwidth.terabytes_per_second() > 25.0);

    // 3. Growth: dataset at √2×/year vs NAND at 1.3×/year — the 114-cart
    //    working set stays manageable for the 5-year horizon.
    let projection = FleetProjection {
        dataset: GrowthModel::dataset_default(dataset),
        cart_capacity: GrowthModel::nand_density_default(cfg.cart_capacity),
    };
    assert!(projection.fleet_stays_within(180, 5));

    // 4. Wear: daily restaging consumes the carts' rated writes in ~700
    //    days, so budget one cart-SSD refresh within the horizon.
    let endurance = EnduranceModel::rocket_4_plus_8tb();
    let mut wear = CartWear::new(endurance.clone(), cfg.cart_capacity);
    for _ in 0..(2 * 365) {
        wear.record_write(cfg.cart_capacity);
    }
    assert!(
        wear.is_worn_out(),
        "two years of daily restaging exceeds TBW"
    );
    let life = endurance.lifetime(Bytes::from_terabytes(8.0));
    assert!(life.days() > 365.0 && life.days() < 3.0 * 365.0);

    // 5. Carbon & bills: vs optical route C, daily restaging saves tonnes
    //    of CO₂e per year — more than the infrastructure's cost in
    //    electricity alone within ~6 years.
    let dhl_energy = BulkTransfer::evaluate(&cfg, dataset).energy;
    let baseline = Route::c().transfer_energy(dataset);
    let year = annualise(&GridModel::us_average(), baseline, dhl_energy, 365.0);
    assert!(year.kg_co2e_saved > 10_000.0);
    assert!(
        year.usd_saved.value() * 6.0
            > CostModel::paper()
                .total_cost(cfg.track_length, cfg.max_speed,)
                .value()
    );
}
