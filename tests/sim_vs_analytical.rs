//! Cross-validation: the discrete-event simulator reproduces the analytical
//! model's bulk-transfer accounting across the whole Table VI design space,
//! and quantifies what the paper's conservative accounting leaves on the
//! table.

use datacentre_hyperloop::core::{BulkTransfer, DhlConfig};
use datacentre_hyperloop::sim::{DhlSystem, EndpointKind, EndpointSpec, SimConfig};
use datacentre_hyperloop::storage::devices::StorageDevice;
use datacentre_hyperloop::units::{Bytes, Metres, MetresPerSecond};

/// Builds the strictly serial simulator configuration matching an
/// analytical design point.
fn serial_sim_config(speed: f64, length: f64, ssds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_serial();
    cfg.max_speed = MetresPerSecond::new(speed);
    cfg.endpoints = vec![
        EndpointSpec {
            position: Metres::ZERO,
            docks: 1,
            kind: EndpointKind::Library,
        },
        EndpointSpec {
            position: Metres::new(length),
            docks: 1,
            kind: EndpointKind::Rack,
        },
    ];
    cfg.cart_capacity = StorageDevice::sabrent_rocket_4_plus().capacity * u64::from(ssds);
    cfg.cart_mass = dhl_physics::CartMassModel::paper_default()
        .budget(ssds)
        .total;
    cfg
}

#[test]
fn des_matches_analytical_for_every_table_vi_point() {
    let dataset = Bytes::from_petabytes(29.0);
    for (speed, length, ssds) in datacentre_hyperloop::core::TABLE_VI_ROWS {
        let analytical = BulkTransfer::evaluate(
            &DhlConfig::with_ssd_count(MetresPerSecond::new(speed), Metres::new(length), ssds),
            dataset,
        );
        let report = DhlSystem::new(serial_sim_config(speed, length, ssds))
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();

        assert_eq!(
            report.deliveries, analytical.deliveries,
            "{speed}/{length}/{ssds}"
        );
        assert_eq!(report.movements, analytical.movements);
        // Times agree exactly: the serial DES is the analytical model.
        let dt = (report.completion_time.seconds() - analytical.time.seconds()).abs();
        assert!(
            dt < 1e-6 * analytical.time.seconds(),
            "{speed}/{length}/{ssds}: DES {} vs analytical {}",
            report.completion_time.seconds(),
            analytical.time.seconds()
        );
        // DES energy adds the drag + stabilisation terms the paper
        // neglects: bigger, but by under 6 % even for the slowest, lightest
        // cart (where the fixed drag term looms largest).
        let ratio = report.total_energy.value() / analytical.energy.value();
        assert!(
            (1.0..1.06).contains(&ratio),
            "{speed}/{length}/{ssds}: energy ratio {ratio}"
        );
    }
}

#[test]
fn pipelining_recovers_up_to_half_the_serial_time() {
    let dataset = Bytes::from_petabytes(29.0);
    let serial = DhlSystem::new(SimConfig::paper_serial())
        .unwrap()
        .run_bulk_transfer(dataset)
        .unwrap();
    let pipelined = DhlSystem::new(SimConfig::paper_default())
        .unwrap()
        .run_bulk_transfer(dataset)
        .unwrap();
    let mut dual_cfg = SimConfig::paper_default();
    dual_cfg.dual_track = true;
    let dual = DhlSystem::new(dual_cfg)
        .unwrap()
        .run_bulk_transfer(dataset)
        .unwrap();

    let s = serial.completion_time.seconds();
    let p = pipelined.completion_time.seconds();
    let d = dual.completion_time.seconds();
    assert!(p < s, "pipelined {p} < serial {s}");
    assert!(d < p, "dual {d} < pipelined {p}");
    // Dual-track pipelining approaches the one-way launch cadence:
    // 114 launches × max(headway, ...) — at least 2× better than serial.
    assert!(d < s / 2.0, "dual {d} vs serial {s}");
    // Energy identical across schedules.
    assert!((serial.total_energy.value() - dual.total_energy.value()).abs() < 1.0);
}

#[test]
fn des_embodied_bandwidth_brackets_table_vi() {
    // Table VI's 30 TB/s is one-way, no pipelining. The serial DES (with
    // returns) gives half that; the dual-track pipelined DES approaches and
    // can exceed it.
    let dataset = Bytes::from_petabytes(29.0);
    let serial = DhlSystem::new(SimConfig::paper_serial())
        .unwrap()
        .run_bulk_transfer(dataset)
        .unwrap();
    let tbps_serial = serial.embodied_bandwidth.terabytes_per_second();
    assert!((tbps_serial - 14.8).abs() < 0.3, "serial {tbps_serial}");

    let mut dual_cfg = SimConfig::paper_default();
    dual_cfg.dual_track = true;
    let dual = DhlSystem::new(dual_cfg)
        .unwrap()
        .run_bulk_transfer(dataset)
        .unwrap();
    let tbps_dual = dual.embodied_bandwidth.terabytes_per_second();
    assert!(tbps_dual > 25.0, "dual {tbps_dual}");
}
