//! Exercises the facade crate's public surface end-to-end: a user story
//! that touches every re-exported module.

use datacentre_hyperloop as dhl;

use dhl::core::{BulkComparison, DhlConfig, LaunchMetrics};
use dhl::net::topology::{FatTree, NodeAddress};
use dhl::physics::{CartMassModel, LinearInductionMotor};
use dhl::sim::api::DhlApi;
use dhl::sim::{DhlSystem, SimConfig};
use dhl::storage::cart::{CartStorage, PcieGeneration, PcieLink};
use dhl::storage::datasets;
use dhl::units::Bytes;

#[test]
fn facade_reexports_compose() {
    assert!(!dhl::VERSION.is_empty());

    // Physics → core: cart mass feeds launch metrics.
    let mass = CartMassModel::paper_default().budget(32).total;
    let lim = LinearInductionMotor::paper_default();
    let e = lim.accel_energy(mass, dhl::units::MetresPerSecond::new(200.0));
    let metrics = LaunchMetrics::evaluate(&DhlConfig::paper_default());
    assert!((metrics.energy.value() - 2.0 * e.value()).abs() < 1e-6);

    // Storage → net: how long does the network need for LAION-5B?
    let laion = datasets::laion_5b();
    let tree = FatTree::figure_2();
    let route = tree
        .route_between(NodeAddress::new(0, 0, 0), NodeAddress::new(1, 0, 0))
        .unwrap();
    let network_time = route.transfer_time(laion.size);
    assert!(network_time.hours() > 1.0);

    // Core: the DHL does it in a couple of trips.
    let cmp = BulkComparison::evaluate(&DhlConfig::paper_default(), laion.size);
    assert_eq!(cmp.dhl.deliveries, 1); // 250 TB fits one 256 TB cart
    assert!(cmp.dhl.time.seconds() < 20.0);
}

#[test]
fn full_user_story_train_on_a_cartload() {
    // An ML engineer opens a cart, streams a dataset shard through the
    // PCIe dock, and sends the cart home — then checks the datacentre-scale
    // numbers with the DES.
    let cart = CartStorage::paper_default();
    let link = PcieLink::new(PcieGeneration::Gen6, 64);
    let docked_bw = cart.docked_read_bandwidth(link);

    let mut api = DhlApi::new(
        SimConfig::paper_default(),
        docked_bw,
        cart.aggregate_write_bandwidth().min(link.bandwidth()),
    )
    .unwrap();
    let c = api.open(1).unwrap();
    let shard = Bytes::from_terabytes(128.0);
    let read_time = api.read(c, shard).unwrap();
    assert!(read_time.seconds() > 100.0); // SSD-bound, not track-bound
    api.close(c).unwrap();

    // The same capacity moved over the DES, datasheet-to-datasheet.
    let report = DhlSystem::new(SimConfig::paper_default())
        .unwrap()
        .run_bulk_transfer(datasets::meta_dlrm_29pb().size)
        .unwrap();
    assert_eq!(report.deliveries, 114);
    assert!(report.total_energy.megajoules() < 5.0);
}

#[test]
fn serde_round_trips_for_key_types() {
    let cfg = DhlConfig::paper_default();
    let json = serde_json_like(&cfg);
    assert!(json.contains("max_speed"));

    let sim = SimConfig::paper_default();
    let json = serde_json_like(&sim);
    assert!(json.contains("endpoints"));
}

/// Poor-man's serde check without a json dependency: the types implement
/// `Serialize`, so serialising into the `serde` data model must succeed.
/// We use `format!("{:?}")` for content assertions and a no-op serializer
/// via `serde::Serialize` bound for the compile-time guarantee.
fn serde_json_like<T: serde::Serialize + std::fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}
