/root/repo/target/debug/deps/dhl_core-046fcc9a7f73fd22.d: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_core-046fcc9a7f73fd22.rmeta: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bulk.rs:
crates/core/src/carbon.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/crossover.rs:
crates/core/src/dse.rs:
crates/core/src/fleet.rs:
crates/core/src/launch.rs:
crates/core/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
