/root/repo/target/debug/deps/dhl_storage-63297d559a16c2d8.d: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_storage-63297d559a16c2d8.rmeta: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/cart.rs:
crates/storage/src/connectors.rs:
crates/storage/src/datasets.rs:
crates/storage/src/devices.rs:
crates/storage/src/failure.rs:
crates/storage/src/growth.rs:
crates/storage/src/thermal.rs:
crates/storage/src/wear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
