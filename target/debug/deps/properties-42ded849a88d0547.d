/root/repo/target/debug/deps/properties-42ded849a88d0547.d: crates/sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-42ded849a88d0547.rmeta: crates/sched/tests/properties.rs Cargo.toml

crates/sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
