/root/repo/target/debug/deps/adoption_planning-ee6b1cfce3f11bd1.d: tests/adoption_planning.rs

/root/repo/target/debug/deps/adoption_planning-ee6b1cfce3f11bd1: tests/adoption_planning.rs

tests/adoption_planning.rs:
