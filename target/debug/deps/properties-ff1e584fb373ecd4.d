/root/repo/target/debug/deps/properties-ff1e584fb373ecd4.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-ff1e584fb373ecd4: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
