/root/repo/target/debug/deps/fig2_network_energy-0662bb210997d49e.d: crates/bench/benches/fig2_network_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_network_energy-0662bb210997d49e.rmeta: crates/bench/benches/fig2_network_energy.rs Cargo.toml

crates/bench/benches/fig2_network_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
