/root/repo/target/debug/deps/trace_invariants-a8777c7060e72dba.d: tests/trace_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_invariants-a8777c7060e72dba.rmeta: tests/trace_invariants.rs Cargo.toml

tests/trace_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
