/root/repo/target/debug/deps/dhl_core-4e27f2fc5a79216a.d: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libdhl_core-4e27f2fc5a79216a.rlib: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libdhl_core-4e27f2fc5a79216a.rmeta: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/bulk.rs:
crates/core/src/carbon.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/crossover.rs:
crates/core/src/dse.rs:
crates/core/src/fleet.rs:
crates/core/src/launch.rs:
crates/core/src/sensitivity.rs:
