/root/repo/target/debug/deps/dhl_bench-faf1ad988ecd593c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_bench-faf1ad988ecd593c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
