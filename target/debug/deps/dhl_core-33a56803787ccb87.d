/root/repo/target/debug/deps/dhl_core-33a56803787ccb87.d: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/dhl_core-33a56803787ccb87: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/bulk.rs:
crates/core/src/carbon.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/crossover.rs:
crates/core/src/dse.rs:
crates/core/src/fleet.rs:
crates/core/src/launch.rs:
crates/core/src/sensitivity.rs:
