/root/repo/target/debug/deps/dhl_units-7af23fa8277709a1.d: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/debug/deps/dhl_units-7af23fa8277709a1: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

crates/units/src/lib.rs:
crates/units/src/macros.rs:
crates/units/src/bandwidth.rs:
crates/units/src/bytes.rs:
crates/units/src/kinematics.rs:
crates/units/src/money.rs:
crates/units/src/power.rs:
