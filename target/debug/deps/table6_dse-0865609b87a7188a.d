/root/repo/target/debug/deps/table6_dse-0865609b87a7188a.d: crates/bench/benches/table6_dse.rs

/root/repo/target/debug/deps/table6_dse-0865609b87a7188a: crates/bench/benches/table6_dse.rs

crates/bench/benches/table6_dse.rs:
