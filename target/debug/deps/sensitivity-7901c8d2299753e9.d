/root/repo/target/debug/deps/sensitivity-7901c8d2299753e9.d: crates/bench/benches/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-7901c8d2299753e9: crates/bench/benches/sensitivity.rs

crates/bench/benches/sensitivity.rs:
