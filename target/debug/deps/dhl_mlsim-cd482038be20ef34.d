/root/repo/target/debug/deps/dhl_mlsim-cd482038be20ef34.d: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

/root/repo/target/debug/deps/libdhl_mlsim-cd482038be20ef34.rlib: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

/root/repo/target/debug/deps/libdhl_mlsim-cd482038be20ef34.rmeta: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

crates/mlsim/src/lib.rs:
crates/mlsim/src/experiment.rs:
crates/mlsim/src/fabric.rs:
crates/mlsim/src/training.rs:
crates/mlsim/src/workload.rs:
