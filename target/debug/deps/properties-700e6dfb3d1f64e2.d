/root/repo/target/debug/deps/properties-700e6dfb3d1f64e2.d: crates/units/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-700e6dfb3d1f64e2.rmeta: crates/units/tests/properties.rs Cargo.toml

crates/units/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
