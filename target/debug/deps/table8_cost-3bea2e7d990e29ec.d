/root/repo/target/debug/deps/table8_cost-3bea2e7d990e29ec.d: crates/bench/benches/table8_cost.rs

/root/repo/target/debug/deps/table8_cost-3bea2e7d990e29ec: crates/bench/benches/table8_cost.rs

crates/bench/benches/table8_cost.rs:
