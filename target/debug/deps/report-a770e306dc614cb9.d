/root/repo/target/debug/deps/report-a770e306dc614cb9.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-a770e306dc614cb9.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
