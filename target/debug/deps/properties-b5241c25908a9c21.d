/root/repo/target/debug/deps/properties-b5241c25908a9c21.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b5241c25908a9c21.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
