/root/repo/target/debug/deps/dhl_physics-734787e86cbc39a0.d: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_physics-734787e86cbc39a0.rmeta: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs Cargo.toml

crates/physics/src/lib.rs:
crates/physics/src/braking.rs:
crates/physics/src/cart.rs:
crates/physics/src/error.rs:
crates/physics/src/halbach.rs:
crates/physics/src/integrator.rs:
crates/physics/src/kinematics.rs:
crates/physics/src/levitation.rs:
crates/physics/src/lim.rs:
crates/physics/src/stabilisation.rs:
crates/physics/src/vacuum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
