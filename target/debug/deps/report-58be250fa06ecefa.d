/root/repo/target/debug/deps/report-58be250fa06ecefa.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-58be250fa06ecefa: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
