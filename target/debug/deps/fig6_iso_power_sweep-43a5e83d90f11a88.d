/root/repo/target/debug/deps/fig6_iso_power_sweep-43a5e83d90f11a88.d: crates/bench/benches/fig6_iso_power_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_iso_power_sweep-43a5e83d90f11a88.rmeta: crates/bench/benches/fig6_iso_power_sweep.rs Cargo.toml

crates/bench/benches/fig6_iso_power_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
