/root/repo/target/debug/deps/properties-b6d7c630cb1b40b0.d: crates/physics/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b6d7c630cb1b40b0.rmeta: crates/physics/tests/properties.rs Cargo.toml

crates/physics/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
