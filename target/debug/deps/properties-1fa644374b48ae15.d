/root/repo/target/debug/deps/properties-1fa644374b48ae15.d: crates/sched/tests/properties.rs

/root/repo/target/debug/deps/properties-1fa644374b48ae15: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
