/root/repo/target/debug/deps/report-7f2f0e3133379b07.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-7f2f0e3133379b07: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
