/root/repo/target/debug/deps/properties-d2e31d92b6133bd0.d: crates/physics/tests/properties.rs

/root/repo/target/debug/deps/properties-d2e31d92b6133bd0: crates/physics/tests/properties.rs

crates/physics/tests/properties.rs:
