/root/repo/target/debug/deps/properties-d392fa4a76c3e428.d: crates/mlsim/tests/properties.rs

/root/repo/target/debug/deps/properties-d392fa4a76c3e428: crates/mlsim/tests/properties.rs

crates/mlsim/tests/properties.rs:
