/root/repo/target/debug/deps/dhl_storage-dacacd9f65e38a4c.d: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

/root/repo/target/debug/deps/libdhl_storage-dacacd9f65e38a4c.rlib: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

/root/repo/target/debug/deps/libdhl_storage-dacacd9f65e38a4c.rmeta: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

crates/storage/src/lib.rs:
crates/storage/src/cart.rs:
crates/storage/src/connectors.rs:
crates/storage/src/datasets.rs:
crates/storage/src/devices.rs:
crates/storage/src/failure.rs:
crates/storage/src/growth.rs:
crates/storage/src/thermal.rs:
crates/storage/src/wear.rs:
