/root/repo/target/debug/deps/dhl_rng-27cd3f0c3fd683d7.d: crates/rng/src/lib.rs crates/rng/src/check.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_rng-27cd3f0c3fd683d7.rmeta: crates/rng/src/lib.rs crates/rng/src/check.rs Cargo.toml

crates/rng/src/lib.rs:
crates/rng/src/check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
