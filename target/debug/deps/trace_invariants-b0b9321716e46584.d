/root/repo/target/debug/deps/trace_invariants-b0b9321716e46584.d: tests/trace_invariants.rs

/root/repo/target/debug/deps/trace_invariants-b0b9321716e46584: tests/trace_invariants.rs

tests/trace_invariants.rs:
