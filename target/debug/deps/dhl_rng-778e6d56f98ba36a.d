/root/repo/target/debug/deps/dhl_rng-778e6d56f98ba36a.d: crates/rng/src/lib.rs crates/rng/src/check.rs

/root/repo/target/debug/deps/libdhl_rng-778e6d56f98ba36a.rlib: crates/rng/src/lib.rs crates/rng/src/check.rs

/root/repo/target/debug/deps/libdhl_rng-778e6d56f98ba36a.rmeta: crates/rng/src/lib.rs crates/rng/src/check.rs

crates/rng/src/lib.rs:
crates/rng/src/check.rs:
