/root/repo/target/debug/deps/dhl_bench-d2ab253ef86c0adb.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_bench-d2ab253ef86c0adb.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
