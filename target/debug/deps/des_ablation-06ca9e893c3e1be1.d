/root/repo/target/debug/deps/des_ablation-06ca9e893c3e1be1.d: crates/bench/benches/des_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdes_ablation-06ca9e893c3e1be1.rmeta: crates/bench/benches/des_ablation.rs Cargo.toml

crates/bench/benches/des_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
