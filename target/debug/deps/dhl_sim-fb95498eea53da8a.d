/root/repo/target/debug/deps/dhl_sim-fb95498eea53da8a.d: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdhl_sim-fb95498eea53da8a.rlib: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdhl_sim-fb95498eea53da8a.rmeta: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/api.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/movement.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/trace.rs:
