/root/repo/target/debug/deps/dhl_sched-3cac48c0ed2a1f7c.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libdhl_sched-3cac48c0ed2a1f7c.rlib: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libdhl_sched-3cac48c0ed2a1f7c.rmeta: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
