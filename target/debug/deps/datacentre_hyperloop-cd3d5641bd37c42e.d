/root/repo/target/debug/deps/datacentre_hyperloop-cd3d5641bd37c42e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdatacentre_hyperloop-cd3d5641bd37c42e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
