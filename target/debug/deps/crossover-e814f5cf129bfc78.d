/root/repo/target/debug/deps/crossover-e814f5cf129bfc78.d: crates/bench/benches/crossover.rs

/root/repo/target/debug/deps/crossover-e814f5cf129bfc78: crates/bench/benches/crossover.rs

crates/bench/benches/crossover.rs:
