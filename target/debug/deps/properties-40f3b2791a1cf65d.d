/root/repo/target/debug/deps/properties-40f3b2791a1cf65d.d: crates/units/tests/properties.rs

/root/repo/target/debug/deps/properties-40f3b2791a1cf65d: crates/units/tests/properties.rs

crates/units/tests/properties.rs:
