/root/repo/target/debug/deps/crossover-4502d3b65b2e801e.d: crates/bench/benches/crossover.rs Cargo.toml

/root/repo/target/debug/deps/libcrossover-4502d3b65b2e801e.rmeta: crates/bench/benches/crossover.rs Cargo.toml

crates/bench/benches/crossover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
