/root/repo/target/debug/deps/workspace_api-e7873f5a114724d4.d: tests/workspace_api.rs

/root/repo/target/debug/deps/workspace_api-e7873f5a114724d4: tests/workspace_api.rs

tests/workspace_api.rs:
