/root/repo/target/debug/deps/paper_claims-2ff80113f6c1d29d.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-2ff80113f6c1d29d.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
