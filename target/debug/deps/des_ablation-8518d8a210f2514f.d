/root/repo/target/debug/deps/des_ablation-8518d8a210f2514f.d: crates/bench/benches/des_ablation.rs

/root/repo/target/debug/deps/des_ablation-8518d8a210f2514f: crates/bench/benches/des_ablation.rs

crates/bench/benches/des_ablation.rs:
