/root/repo/target/debug/deps/table6_dse-2ccb16338f0f660d.d: crates/bench/benches/table6_dse.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_dse-2ccb16338f0f660d.rmeta: crates/bench/benches/table6_dse.rs Cargo.toml

crates/bench/benches/table6_dse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
