/root/repo/target/debug/deps/sim_vs_analytical-8a12741dbb3f444d.d: tests/sim_vs_analytical.rs Cargo.toml

/root/repo/target/debug/deps/libsim_vs_analytical-8a12741dbb3f444d.rmeta: tests/sim_vs_analytical.rs Cargo.toml

tests/sim_vs_analytical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
