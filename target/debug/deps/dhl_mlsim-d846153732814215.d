/root/repo/target/debug/deps/dhl_mlsim-d846153732814215.d: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_mlsim-d846153732814215.rmeta: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs Cargo.toml

crates/mlsim/src/lib.rs:
crates/mlsim/src/experiment.rs:
crates/mlsim/src/fabric.rs:
crates/mlsim/src/training.rs:
crates/mlsim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
