/root/repo/target/debug/deps/dhl_sched-1e5d669b06e1edfd.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_sched-1e5d669b06e1edfd.rmeta: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
