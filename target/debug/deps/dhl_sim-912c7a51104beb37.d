/root/repo/target/debug/deps/dhl_sim-912c7a51104beb37.d: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_sim-912c7a51104beb37.rmeta: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/api.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/movement.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
