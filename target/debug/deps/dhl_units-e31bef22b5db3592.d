/root/repo/target/debug/deps/dhl_units-e31bef22b5db3592.d: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/debug/deps/libdhl_units-e31bef22b5db3592.rlib: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/debug/deps/libdhl_units-e31bef22b5db3592.rmeta: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

crates/units/src/lib.rs:
crates/units/src/macros.rs:
crates/units/src/bandwidth.rs:
crates/units/src/bytes.rs:
crates/units/src/kinematics.rs:
crates/units/src/money.rs:
crates/units/src/power.rs:
