/root/repo/target/debug/deps/dhl_core-f067e9c28ec6b719.d: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libdhl_core-f067e9c28ec6b719.rlib: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libdhl_core-f067e9c28ec6b719.rmeta: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/bulk.rs:
crates/core/src/carbon.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/crossover.rs:
crates/core/src/dse.rs:
crates/core/src/fleet.rs:
crates/core/src/launch.rs:
crates/core/src/sensitivity.rs:
