/root/repo/target/debug/deps/dhl_bench-688fbb6ecd7e936b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/dhl_bench-688fbb6ecd7e936b: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
