/root/repo/target/debug/deps/dhl_net-7f8af6820064e752.d: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_net-7f8af6820064e752.rmeta: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/background_traffic.rs:
crates/net/src/components.rs:
crates/net/src/energy_proportional.rs:
crates/net/src/latency.rs:
crates/net/src/route.rs:
crates/net/src/topology.rs:
crates/net/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
