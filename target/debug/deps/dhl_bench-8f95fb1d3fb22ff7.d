/root/repo/target/debug/deps/dhl_bench-8f95fb1d3fb22ff7.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libdhl_bench-8f95fb1d3fb22ff7.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libdhl_bench-8f95fb1d3fb22ff7.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
