/root/repo/target/debug/deps/paper_claims-c4f81b907b4d28d3.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c4f81b907b4d28d3: tests/paper_claims.rs

tests/paper_claims.rs:
