/root/repo/target/debug/deps/datacentre_hyperloop-82dc1928d86cbf56.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdatacentre_hyperloop-82dc1928d86cbf56.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
