/root/repo/target/debug/deps/table7_astra-f4a14e6e5d5271ab.d: crates/bench/benches/table7_astra.rs

/root/repo/target/debug/deps/table7_astra-f4a14e6e5d5271ab: crates/bench/benches/table7_astra.rs

crates/bench/benches/table7_astra.rs:
