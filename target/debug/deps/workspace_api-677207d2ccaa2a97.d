/root/repo/target/debug/deps/workspace_api-677207d2ccaa2a97.d: tests/workspace_api.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_api-677207d2ccaa2a97.rmeta: tests/workspace_api.rs Cargo.toml

tests/workspace_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
