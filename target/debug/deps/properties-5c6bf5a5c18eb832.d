/root/repo/target/debug/deps/properties-5c6bf5a5c18eb832.d: crates/storage/tests/properties.rs

/root/repo/target/debug/deps/properties-5c6bf5a5c18eb832: crates/storage/tests/properties.rs

crates/storage/tests/properties.rs:
