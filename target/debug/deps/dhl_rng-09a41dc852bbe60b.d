/root/repo/target/debug/deps/dhl_rng-09a41dc852bbe60b.d: crates/rng/src/lib.rs crates/rng/src/check.rs

/root/repo/target/debug/deps/dhl_rng-09a41dc852bbe60b: crates/rng/src/lib.rs crates/rng/src/check.rs

crates/rng/src/lib.rs:
crates/rng/src/check.rs:
