/root/repo/target/debug/deps/dhl_units-2cfca52b234ff1b9.d: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_units-2cfca52b234ff1b9.rmeta: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/macros.rs:
crates/units/src/bandwidth.rs:
crates/units/src/bytes.rs:
crates/units/src/kinematics.rs:
crates/units/src/money.rs:
crates/units/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
