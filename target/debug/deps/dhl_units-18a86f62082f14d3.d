/root/repo/target/debug/deps/dhl_units-18a86f62082f14d3.d: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/debug/deps/libdhl_units-18a86f62082f14d3.rlib: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/debug/deps/libdhl_units-18a86f62082f14d3.rmeta: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

crates/units/src/lib.rs:
crates/units/src/macros.rs:
crates/units/src/bandwidth.rs:
crates/units/src/bytes.rs:
crates/units/src/kinematics.rs:
crates/units/src/money.rs:
crates/units/src/power.rs:
