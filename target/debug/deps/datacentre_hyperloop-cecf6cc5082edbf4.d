/root/repo/target/debug/deps/datacentre_hyperloop-cecf6cc5082edbf4.d: src/lib.rs

/root/repo/target/debug/deps/libdatacentre_hyperloop-cecf6cc5082edbf4.rlib: src/lib.rs

/root/repo/target/debug/deps/libdatacentre_hyperloop-cecf6cc5082edbf4.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
