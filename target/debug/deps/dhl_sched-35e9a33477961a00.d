/root/repo/target/debug/deps/dhl_sched-35e9a33477961a00.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/dhl_sched-35e9a33477961a00: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
