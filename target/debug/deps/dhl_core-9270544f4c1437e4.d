/root/repo/target/debug/deps/dhl_core-9270544f4c1437e4.d: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_core-9270544f4c1437e4.rmeta: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bulk.rs:
crates/core/src/carbon.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/crossover.rs:
crates/core/src/dse.rs:
crates/core/src/fleet.rs:
crates/core/src/launch.rs:
crates/core/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
