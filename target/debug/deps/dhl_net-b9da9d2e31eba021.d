/root/repo/target/debug/deps/dhl_net-b9da9d2e31eba021.d: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/debug/deps/libdhl_net-b9da9d2e31eba021.rlib: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/debug/deps/libdhl_net-b9da9d2e31eba021.rmeta: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

crates/net/src/lib.rs:
crates/net/src/background_traffic.rs:
crates/net/src/components.rs:
crates/net/src/energy_proportional.rs:
crates/net/src/latency.rs:
crates/net/src/route.rs:
crates/net/src/topology.rs:
crates/net/src/transfer.rs:
