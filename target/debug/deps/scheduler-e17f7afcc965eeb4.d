/root/repo/target/debug/deps/scheduler-e17f7afcc965eeb4.d: crates/bench/benches/scheduler.rs

/root/repo/target/debug/deps/scheduler-e17f7afcc965eeb4: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
