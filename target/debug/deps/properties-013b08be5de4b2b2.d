/root/repo/target/debug/deps/properties-013b08be5de4b2b2.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-013b08be5de4b2b2: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
