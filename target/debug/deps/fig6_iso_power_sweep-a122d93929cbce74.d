/root/repo/target/debug/deps/fig6_iso_power_sweep-a122d93929cbce74.d: crates/bench/benches/fig6_iso_power_sweep.rs

/root/repo/target/debug/deps/fig6_iso_power_sweep-a122d93929cbce74: crates/bench/benches/fig6_iso_power_sweep.rs

crates/bench/benches/fig6_iso_power_sweep.rs:
