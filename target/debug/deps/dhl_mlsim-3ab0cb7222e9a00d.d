/root/repo/target/debug/deps/dhl_mlsim-3ab0cb7222e9a00d.d: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

/root/repo/target/debug/deps/dhl_mlsim-3ab0cb7222e9a00d: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

crates/mlsim/src/lib.rs:
crates/mlsim/src/experiment.rs:
crates/mlsim/src/fabric.rs:
crates/mlsim/src/training.rs:
crates/mlsim/src/workload.rs:
