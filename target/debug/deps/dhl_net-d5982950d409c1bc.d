/root/repo/target/debug/deps/dhl_net-d5982950d409c1bc.d: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/debug/deps/libdhl_net-d5982950d409c1bc.rlib: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/debug/deps/libdhl_net-d5982950d409c1bc.rmeta: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

crates/net/src/lib.rs:
crates/net/src/background_traffic.rs:
crates/net/src/components.rs:
crates/net/src/energy_proportional.rs:
crates/net/src/latency.rs:
crates/net/src/route.rs:
crates/net/src/topology.rs:
crates/net/src/transfer.rs:
