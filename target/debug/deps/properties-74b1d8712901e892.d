/root/repo/target/debug/deps/properties-74b1d8712901e892.d: crates/storage/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-74b1d8712901e892.rmeta: crates/storage/tests/properties.rs Cargo.toml

crates/storage/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
