/root/repo/target/debug/deps/dhl_storage-75b0a12336e094f8.d: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

/root/repo/target/debug/deps/libdhl_storage-75b0a12336e094f8.rlib: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

/root/repo/target/debug/deps/libdhl_storage-75b0a12336e094f8.rmeta: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

crates/storage/src/lib.rs:
crates/storage/src/cart.rs:
crates/storage/src/connectors.rs:
crates/storage/src/datasets.rs:
crates/storage/src/devices.rs:
crates/storage/src/failure.rs:
crates/storage/src/growth.rs:
crates/storage/src/thermal.rs:
crates/storage/src/wear.rs:
