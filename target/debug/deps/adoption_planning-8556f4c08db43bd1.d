/root/repo/target/debug/deps/adoption_planning-8556f4c08db43bd1.d: tests/adoption_planning.rs Cargo.toml

/root/repo/target/debug/deps/libadoption_planning-8556f4c08db43bd1.rmeta: tests/adoption_planning.rs Cargo.toml

tests/adoption_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
