/root/repo/target/debug/deps/report-d82df5cb772759f7.d: crates/bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-d82df5cb772759f7.rmeta: crates/bench/src/bin/report.rs Cargo.toml

crates/bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
