/root/repo/target/debug/deps/dhl_bench-3be0d6037651fcc4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libdhl_bench-3be0d6037651fcc4.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libdhl_bench-3be0d6037651fcc4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
