/root/repo/target/debug/deps/fig2_network_energy-7e71a8dc30bf77cb.d: crates/bench/benches/fig2_network_energy.rs

/root/repo/target/debug/deps/fig2_network_energy-7e71a8dc30bf77cb: crates/bench/benches/fig2_network_energy.rs

crates/bench/benches/fig2_network_energy.rs:
