/root/repo/target/debug/deps/sensitivity-b9bef0408305ad06.d: crates/bench/benches/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-b9bef0408305ad06.rmeta: crates/bench/benches/sensitivity.rs Cargo.toml

crates/bench/benches/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
