/root/repo/target/debug/deps/dhl_net-b7bfbc0228c04c5b.d: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/debug/deps/dhl_net-b7bfbc0228c04c5b: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

crates/net/src/lib.rs:
crates/net/src/background_traffic.rs:
crates/net/src/components.rs:
crates/net/src/energy_proportional.rs:
crates/net/src/latency.rs:
crates/net/src/route.rs:
crates/net/src/topology.rs:
crates/net/src/transfer.rs:
