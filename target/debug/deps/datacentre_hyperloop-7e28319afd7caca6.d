/root/repo/target/debug/deps/datacentre_hyperloop-7e28319afd7caca6.d: src/lib.rs

/root/repo/target/debug/deps/datacentre_hyperloop-7e28319afd7caca6: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
