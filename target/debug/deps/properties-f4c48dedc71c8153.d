/root/repo/target/debug/deps/properties-f4c48dedc71c8153.d: crates/mlsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f4c48dedc71c8153.rmeta: crates/mlsim/tests/properties.rs Cargo.toml

crates/mlsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
