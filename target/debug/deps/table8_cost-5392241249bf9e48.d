/root/repo/target/debug/deps/table8_cost-5392241249bf9e48.d: crates/bench/benches/table8_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_cost-5392241249bf9e48.rmeta: crates/bench/benches/table8_cost.rs Cargo.toml

crates/bench/benches/table8_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
