/root/repo/target/debug/deps/properties-9e3f18ae2e74fbbc.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9e3f18ae2e74fbbc.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
