/root/repo/target/debug/deps/table7_astra-ea3dd9d5a1191268.d: crates/bench/benches/table7_astra.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_astra-ea3dd9d5a1191268.rmeta: crates/bench/benches/table7_astra.rs Cargo.toml

crates/bench/benches/table7_astra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
