/root/repo/target/debug/deps/scheduler-6b54065fd3452d1d.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-6b54065fd3452d1d.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
