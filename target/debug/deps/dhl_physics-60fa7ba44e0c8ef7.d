/root/repo/target/debug/deps/dhl_physics-60fa7ba44e0c8ef7.d: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs

/root/repo/target/debug/deps/libdhl_physics-60fa7ba44e0c8ef7.rlib: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs

/root/repo/target/debug/deps/libdhl_physics-60fa7ba44e0c8ef7.rmeta: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs

crates/physics/src/lib.rs:
crates/physics/src/braking.rs:
crates/physics/src/cart.rs:
crates/physics/src/error.rs:
crates/physics/src/halbach.rs:
crates/physics/src/integrator.rs:
crates/physics/src/kinematics.rs:
crates/physics/src/levitation.rs:
crates/physics/src/lim.rs:
crates/physics/src/stabilisation.rs:
crates/physics/src/vacuum.rs:
