/root/repo/target/debug/deps/report-da3792ea58145c84.d: crates/bench/src/bin/report.rs

/root/repo/target/debug/deps/report-da3792ea58145c84: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
