/root/repo/target/debug/deps/dhl_sched-3011eed91068b672.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libdhl_sched-3011eed91068b672.rmeta: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
