/root/repo/target/debug/deps/datacentre_hyperloop-a83c606b34f50ff5.d: src/lib.rs

/root/repo/target/debug/deps/libdatacentre_hyperloop-a83c606b34f50ff5.rlib: src/lib.rs

/root/repo/target/debug/deps/libdatacentre_hyperloop-a83c606b34f50ff5.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
