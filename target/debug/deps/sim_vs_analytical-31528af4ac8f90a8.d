/root/repo/target/debug/deps/sim_vs_analytical-31528af4ac8f90a8.d: tests/sim_vs_analytical.rs

/root/repo/target/debug/deps/sim_vs_analytical-31528af4ac8f90a8: tests/sim_vs_analytical.rs

tests/sim_vs_analytical.rs:
