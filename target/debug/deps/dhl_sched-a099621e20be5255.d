/root/repo/target/debug/deps/dhl_sched-a099621e20be5255.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libdhl_sched-a099621e20be5255.rlib: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libdhl_sched-a099621e20be5255.rmeta: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
