/root/repo/target/debug/examples/datacentre_backup-34cba784952b4f33.d: examples/datacentre_backup.rs Cargo.toml

/root/repo/target/debug/examples/libdatacentre_backup-34cba784952b4f33.rmeta: examples/datacentre_backup.rs Cargo.toml

examples/datacentre_backup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
