/root/repo/target/debug/examples/ml_training-86088efa5ab754ef.d: examples/ml_training.rs

/root/repo/target/debug/examples/ml_training-86088efa5ab754ef: examples/ml_training.rs

examples/ml_training.rs:
