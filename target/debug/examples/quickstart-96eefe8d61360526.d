/root/repo/target/debug/examples/quickstart-96eefe8d61360526.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-96eefe8d61360526: examples/quickstart.rs

examples/quickstart.rs:
