/root/repo/target/debug/examples/physics_experiment-a3ae1ec29b2897bf.d: examples/physics_experiment.rs

/root/repo/target/debug/examples/physics_experiment-a3ae1ec29b2897bf: examples/physics_experiment.rs

examples/physics_experiment.rs:
