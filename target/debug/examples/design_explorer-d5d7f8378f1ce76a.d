/root/repo/target/debug/examples/design_explorer-d5d7f8378f1ce76a.d: examples/design_explorer.rs

/root/repo/target/debug/examples/design_explorer-d5d7f8378f1ce76a: examples/design_explorer.rs

examples/design_explorer.rs:
