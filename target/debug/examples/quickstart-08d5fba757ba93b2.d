/root/repo/target/debug/examples/quickstart-08d5fba757ba93b2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-08d5fba757ba93b2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
