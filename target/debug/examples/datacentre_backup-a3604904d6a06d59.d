/root/repo/target/debug/examples/datacentre_backup-a3604904d6a06d59.d: examples/datacentre_backup.rs

/root/repo/target/debug/examples/datacentre_backup-a3604904d6a06d59: examples/datacentre_backup.rs

examples/datacentre_backup.rs:
