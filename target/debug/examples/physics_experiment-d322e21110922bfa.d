/root/repo/target/debug/examples/physics_experiment-d322e21110922bfa.d: examples/physics_experiment.rs Cargo.toml

/root/repo/target/debug/examples/libphysics_experiment-d322e21110922bfa.rmeta: examples/physics_experiment.rs Cargo.toml

examples/physics_experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
