/root/repo/target/debug/examples/design_explorer-973c22b25f22e368.d: examples/design_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_explorer-973c22b25f22e368.rmeta: examples/design_explorer.rs Cargo.toml

examples/design_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
