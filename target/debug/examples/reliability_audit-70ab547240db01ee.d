/root/repo/target/debug/examples/reliability_audit-70ab547240db01ee.d: examples/reliability_audit.rs Cargo.toml

/root/repo/target/debug/examples/libreliability_audit-70ab547240db01ee.rmeta: examples/reliability_audit.rs Cargo.toml

examples/reliability_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
