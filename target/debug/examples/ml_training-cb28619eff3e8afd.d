/root/repo/target/debug/examples/ml_training-cb28619eff3e8afd.d: examples/ml_training.rs Cargo.toml

/root/repo/target/debug/examples/libml_training-cb28619eff3e8afd.rmeta: examples/ml_training.rs Cargo.toml

examples/ml_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
