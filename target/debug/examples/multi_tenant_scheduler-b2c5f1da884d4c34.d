/root/repo/target/debug/examples/multi_tenant_scheduler-b2c5f1da884d4c34.d: examples/multi_tenant_scheduler.rs

/root/repo/target/debug/examples/multi_tenant_scheduler-b2c5f1da884d4c34: examples/multi_tenant_scheduler.rs

examples/multi_tenant_scheduler.rs:
