/root/repo/target/debug/examples/multi_tenant_scheduler-a8dc389b68c9eac9.d: examples/multi_tenant_scheduler.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_tenant_scheduler-a8dc389b68c9eac9.rmeta: examples/multi_tenant_scheduler.rs Cargo.toml

examples/multi_tenant_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
