/root/repo/target/debug/examples/reliability_audit-56849156ddc7ef86.d: examples/reliability_audit.rs

/root/repo/target/debug/examples/reliability_audit-56849156ddc7ef86: examples/reliability_audit.rs

examples/reliability_audit.rs:
