/root/repo/target/debug/libdhl_rng.rlib: /root/repo/crates/rng/src/check.rs /root/repo/crates/rng/src/lib.rs
