/root/repo/target/release/deps/dhl_rng-f734e4d212062c6f.d: crates/rng/src/lib.rs crates/rng/src/check.rs

/root/repo/target/release/deps/libdhl_rng-f734e4d212062c6f.rlib: crates/rng/src/lib.rs crates/rng/src/check.rs

/root/repo/target/release/deps/libdhl_rng-f734e4d212062c6f.rmeta: crates/rng/src/lib.rs crates/rng/src/check.rs

crates/rng/src/lib.rs:
crates/rng/src/check.rs:
