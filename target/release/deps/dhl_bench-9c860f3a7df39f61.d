/root/repo/target/release/deps/dhl_bench-9c860f3a7df39f61.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libdhl_bench-9c860f3a7df39f61.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libdhl_bench-9c860f3a7df39f61.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
