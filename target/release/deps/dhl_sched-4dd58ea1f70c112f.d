/root/repo/target/release/deps/dhl_sched-4dd58ea1f70c112f.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libdhl_sched-4dd58ea1f70c112f.rlib: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libdhl_sched-4dd58ea1f70c112f.rmeta: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
