/root/repo/target/release/deps/report-2b90a5dcfbff61b0.d: crates/bench/src/bin/report.rs

/root/repo/target/release/deps/report-2b90a5dcfbff61b0: crates/bench/src/bin/report.rs

crates/bench/src/bin/report.rs:
