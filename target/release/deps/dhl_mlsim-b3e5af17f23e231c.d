/root/repo/target/release/deps/dhl_mlsim-b3e5af17f23e231c.d: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

/root/repo/target/release/deps/libdhl_mlsim-b3e5af17f23e231c.rlib: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

/root/repo/target/release/deps/libdhl_mlsim-b3e5af17f23e231c.rmeta: crates/mlsim/src/lib.rs crates/mlsim/src/experiment.rs crates/mlsim/src/fabric.rs crates/mlsim/src/training.rs crates/mlsim/src/workload.rs

crates/mlsim/src/lib.rs:
crates/mlsim/src/experiment.rs:
crates/mlsim/src/fabric.rs:
crates/mlsim/src/training.rs:
crates/mlsim/src/workload.rs:
