/root/repo/target/release/deps/dhl_storage-69925feba4305f0d.d: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

/root/repo/target/release/deps/libdhl_storage-69925feba4305f0d.rlib: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

/root/repo/target/release/deps/libdhl_storage-69925feba4305f0d.rmeta: crates/storage/src/lib.rs crates/storage/src/cart.rs crates/storage/src/connectors.rs crates/storage/src/datasets.rs crates/storage/src/devices.rs crates/storage/src/failure.rs crates/storage/src/growth.rs crates/storage/src/thermal.rs crates/storage/src/wear.rs

crates/storage/src/lib.rs:
crates/storage/src/cart.rs:
crates/storage/src/connectors.rs:
crates/storage/src/datasets.rs:
crates/storage/src/devices.rs:
crates/storage/src/failure.rs:
crates/storage/src/growth.rs:
crates/storage/src/thermal.rs:
crates/storage/src/wear.rs:
