/root/repo/target/release/deps/des_ablation-bfa3bc5e6669f926.d: crates/bench/benches/des_ablation.rs

/root/repo/target/release/deps/des_ablation-bfa3bc5e6669f926: crates/bench/benches/des_ablation.rs

crates/bench/benches/des_ablation.rs:
