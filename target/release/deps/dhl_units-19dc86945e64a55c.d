/root/repo/target/release/deps/dhl_units-19dc86945e64a55c.d: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/release/deps/libdhl_units-19dc86945e64a55c.rlib: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

/root/repo/target/release/deps/libdhl_units-19dc86945e64a55c.rmeta: crates/units/src/lib.rs crates/units/src/macros.rs crates/units/src/bandwidth.rs crates/units/src/bytes.rs crates/units/src/kinematics.rs crates/units/src/money.rs crates/units/src/power.rs

crates/units/src/lib.rs:
crates/units/src/macros.rs:
crates/units/src/bandwidth.rs:
crates/units/src/bytes.rs:
crates/units/src/kinematics.rs:
crates/units/src/money.rs:
crates/units/src/power.rs:
