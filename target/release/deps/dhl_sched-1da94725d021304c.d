/root/repo/target/release/deps/dhl_sched-1da94725d021304c.d: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libdhl_sched-1da94725d021304c.rlib: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libdhl_sched-1da94725d021304c.rmeta: crates/sched/src/lib.rs crates/sched/src/availability.rs crates/sched/src/placement.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/availability.rs:
crates/sched/src/placement.rs:
crates/sched/src/scheduler.rs:
