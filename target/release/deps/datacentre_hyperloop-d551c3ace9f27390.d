/root/repo/target/release/deps/datacentre_hyperloop-d551c3ace9f27390.d: src/lib.rs

/root/repo/target/release/deps/libdatacentre_hyperloop-d551c3ace9f27390.rlib: src/lib.rs

/root/repo/target/release/deps/libdatacentre_hyperloop-d551c3ace9f27390.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
