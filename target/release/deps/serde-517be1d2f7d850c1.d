/root/repo/target/release/deps/serde-517be1d2f7d850c1.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-517be1d2f7d850c1.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-517be1d2f7d850c1.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
