/root/repo/target/release/deps/dhl_net-34f47572b77831ab.d: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/release/deps/libdhl_net-34f47572b77831ab.rlib: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

/root/repo/target/release/deps/libdhl_net-34f47572b77831ab.rmeta: crates/net/src/lib.rs crates/net/src/background_traffic.rs crates/net/src/components.rs crates/net/src/energy_proportional.rs crates/net/src/latency.rs crates/net/src/route.rs crates/net/src/topology.rs crates/net/src/transfer.rs

crates/net/src/lib.rs:
crates/net/src/background_traffic.rs:
crates/net/src/components.rs:
crates/net/src/energy_proportional.rs:
crates/net/src/latency.rs:
crates/net/src/route.rs:
crates/net/src/topology.rs:
crates/net/src/transfer.rs:
