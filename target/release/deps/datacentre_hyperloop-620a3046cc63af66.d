/root/repo/target/release/deps/datacentre_hyperloop-620a3046cc63af66.d: src/lib.rs

/root/repo/target/release/deps/libdatacentre_hyperloop-620a3046cc63af66.rlib: src/lib.rs

/root/repo/target/release/deps/libdatacentre_hyperloop-620a3046cc63af66.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
