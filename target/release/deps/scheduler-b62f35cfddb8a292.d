/root/repo/target/release/deps/scheduler-b62f35cfddb8a292.d: crates/bench/benches/scheduler.rs

/root/repo/target/release/deps/scheduler-b62f35cfddb8a292: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
