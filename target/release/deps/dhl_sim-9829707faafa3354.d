/root/repo/target/release/deps/dhl_sim-9829707faafa3354.d: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdhl_sim-9829707faafa3354.rlib: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdhl_sim-9829707faafa3354.rmeta: crates/sim/src/lib.rs crates/sim/src/api.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/movement.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/api.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/movement.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/trace.rs:
