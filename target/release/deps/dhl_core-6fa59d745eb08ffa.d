/root/repo/target/release/deps/dhl_core-6fa59d745eb08ffa.d: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/release/deps/libdhl_core-6fa59d745eb08ffa.rlib: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

/root/repo/target/release/deps/libdhl_core-6fa59d745eb08ffa.rmeta: crates/core/src/lib.rs crates/core/src/bulk.rs crates/core/src/carbon.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/crossover.rs crates/core/src/dse.rs crates/core/src/fleet.rs crates/core/src/launch.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/bulk.rs:
crates/core/src/carbon.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/crossover.rs:
crates/core/src/dse.rs:
crates/core/src/fleet.rs:
crates/core/src/launch.rs:
crates/core/src/sensitivity.rs:
