/root/repo/target/release/deps/dhl_physics-bb84243c1136ead5.d: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs

/root/repo/target/release/deps/libdhl_physics-bb84243c1136ead5.rlib: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs

/root/repo/target/release/deps/libdhl_physics-bb84243c1136ead5.rmeta: crates/physics/src/lib.rs crates/physics/src/braking.rs crates/physics/src/cart.rs crates/physics/src/error.rs crates/physics/src/halbach.rs crates/physics/src/integrator.rs crates/physics/src/kinematics.rs crates/physics/src/levitation.rs crates/physics/src/lim.rs crates/physics/src/stabilisation.rs crates/physics/src/vacuum.rs

crates/physics/src/lib.rs:
crates/physics/src/braking.rs:
crates/physics/src/cart.rs:
crates/physics/src/error.rs:
crates/physics/src/halbach.rs:
crates/physics/src/integrator.rs:
crates/physics/src/kinematics.rs:
crates/physics/src/levitation.rs:
crates/physics/src/lim.rs:
crates/physics/src/stabilisation.rs:
crates/physics/src/vacuum.rs:
