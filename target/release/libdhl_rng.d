/root/repo/target/release/libdhl_rng.rlib: /root/repo/crates/rng/src/check.rs /root/repo/crates/rng/src/lib.rs
