//! Offline stub of `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal substitute: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! emit *marker* impls of the stub traits in the sibling `serde` stub crate
//! (see `vendor/serde`). This keeps every `#[derive(serde::Serialize)]`
//! annotation and `T: serde::Serialize` bound in the codebase compiling —
//! and trivially satisfiable — without pulling in the real dependency.
//! Swapping the real serde back in is a two-line change in the workspace
//! `Cargo.toml`.
//!
//! Limitations (accepted for a stub): no actual serialisation is performed,
//! `#[serde(...)]` attributes are parsed-and-ignored, and generic types get
//! no impl (none exist in this workspace).

use proc_macro::{TokenStream, TokenTree};

/// Finds the `struct`/`enum` name in a derive input and whether it has
/// generic parameters. Leading attributes and visibility are skipped.
fn item_name(input: TokenStream) -> Option<(String, bool)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
                return None;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some((name, false)) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}
