//! Offline stub of `serde`.
//!
//! The build container cannot reach crates.io, so this crate stands in for
//! the real `serde`: it defines `Serialize`/`Deserialize` as *marker* traits
//! (no required methods) and re-exports the stub derive macros from the
//! sibling `serde_derive` stub. Every `#[derive(serde::Serialize)]` and
//! `T: serde::Serialize` bound in the workspace compiles unchanged; no
//! actual serialisation happens. To restore the real serde, point the
//! `serde` entry in the workspace `[workspace.dependencies]` back at
//! crates.io.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Implemented (emptily) by the
/// stub derive for every annotated non-generic type.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
