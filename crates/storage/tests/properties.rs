//! Property-based tests for the storage substrate.

use dhl_rng::check::forall;
use dhl_storage::cart::{CartStorage, PcieGeneration, PcieLink};
use dhl_storage::connectors::{ConnectorKind, DockingConnector};
use dhl_storage::datasets::{Dataset, DatasetKind};
use dhl_storage::devices::StorageDevice;
use dhl_storage::failure::{FailureModel, RaidConfig};
use dhl_storage::integrity::{CorruptionModel, ShardManifest};
use dhl_storage::thermal::ThermalModel;
use dhl_units::{Bytes, Seconds, Watts};

#[test]
fn shards_always_cover_the_dataset() {
    forall("shards_always_cover_the_dataset", 256, |g| {
        let size = g.u64_in(1, 1 << 52);
        let chunk = g.u64_in(1, 1 << 42);
        let d = Dataset {
            name: "prop".into(),
            size: Bytes::new(size),
            kind: DatasetKind::BigData,
        };
        let shards: Vec<Bytes> = d.shards(Bytes::new(chunk)).collect();
        let total: Bytes = shards.iter().sum();
        assert_eq!(total, d.size);
        assert_eq!(shards.len() as u64, size.div_ceil(chunk));
        // every shard but the last is exactly chunk-sized
        for s in &shards[..shards.len().saturating_sub(1)] {
            assert_eq!(s.as_u64(), chunk);
        }
        assert!(shards.last().unwrap().as_u64() <= chunk);
    });
}

#[test]
fn cart_capacity_and_mass_scale_linearly() {
    forall("cart_capacity_and_mass_scale_linearly", 256, |g| {
        let n = g.u32_in(1, 1024);
        let cart = CartStorage::new(StorageDevice::sabrent_rocket_4_plus(), n);
        assert_eq!(cart.capacity().as_u64(), u64::from(n) * 8_000_000_000_000);
        let per = cart.payload_mass().value() / f64::from(n);
        assert!((per - 0.00567).abs() < 1e-12);
    });
}

#[test]
fn docked_bandwidth_never_exceeds_either_limit() {
    forall("docked_bandwidth_never_exceeds_either_limit", 256, |g| {
        let n = g.u32_in(1, 256);
        let lanes = g.u32_in(1, 128);
        let cart = CartStorage::new(StorageDevice::sabrent_rocket_4_plus(), n);
        let link = PcieLink::new(PcieGeneration::Gen6, lanes);
        let eff = cart.docked_read_bandwidth(link);
        assert!(eff.value() <= cart.aggregate_read_bandwidth().value() + 1e-6);
        assert!(eff.value() <= link.bandwidth().value() + 1e-6);
    });
}

#[test]
fn failure_probability_is_monotone_in_time() {
    forall("failure_probability_is_monotone_in_time", 256, |g| {
        let afr = g.f64_in(0.0, 0.99);
        let (t1, t2) = (g.f64_in(0.0, 1e9), g.f64_in(0.0, 1e9));
        let m = FailureModel::new(afr);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        assert!(m.failure_probability(Seconds::new(lo)) <= m.failure_probability(Seconds::new(hi)));
    });
}

#[test]
fn failure_probability_is_a_probability() {
    forall("failure_probability_is_a_probability", 256, |g| {
        let afr = g.f64_in(0.0, 0.999);
        let t = g.f64_in(0.0, 1e12);
        let p = FailureModel::new(afr).failure_probability(Seconds::new(t));
        assert!((0.0..=1.0).contains(&p));
    });
}

#[test]
fn raid_survival_is_monotone_in_parity() {
    forall("raid_survival_is_monotone_in_parity", 256, |g| {
        let data = g.u32_in(1, 64);
        let parity = g.u32_in(0, 16);
        let p = g.f64_in(0.0, 1.0);
        let less = RaidConfig::new(data, parity)
            .unwrap()
            .trip_survival_probability(p);
        let more = RaidConfig::new(data, parity + 1)
            .unwrap()
            .trip_survival_probability(p);
        // Note: adding a parity drive also adds a drive that can fail, but
        // tolerance grows faster than exposure, so survival never drops
        // (both layouts must lose > parity drives, and the larger layout
        // tolerates one more).
        assert!(more >= less - 1e-12);
    });
}

#[test]
fn raid_survival_is_antitone_in_failure_probability() {
    forall(
        "raid_survival_is_antitone_in_failure_probability",
        256,
        |g| {
            // Riskier drives can only hurt: survival is non-increasing in the
            // per-drive trip failure probability for every layout.
            let raid = RaidConfig::new(g.u32_in(1, 64), g.u32_in(0, 16)).unwrap();
            let (p1, p2) = (g.f64_in(0.0, 1.0), g.f64_in(0.0, 1.0));
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let safer = raid.trip_survival_probability(lo);
            let riskier = raid.trip_survival_probability(hi);
            assert!(
                riskier <= safer + 1e-12,
                "survival rose from {safer} to {riskier} as p went {lo} -> {hi}"
            );
            // And both ends pin to certainty.
            assert!((raid.trip_survival_probability(0.0) - 1.0).abs() < 1e-12);
            assert!(raid.trip_survival_probability(1.0) < 1e-12);
        },
    );
}

#[test]
fn raid_survival_composes_with_sanitised_failure_models() {
    forall(
        "raid_survival_composes_with_sanitised_failure_models",
        256,
        |g| {
            // End-to-end over the AFR sanitisation: whatever scalar reaches
            // FailureModel::new (including the non-finite values it now
            // rejects), the composed trip survival stays a probability and
            // keeps both PR-1 monotonicities.
            let afr = match g.u32_in(0, 4) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => g.f64_in(-2.0, 3.0),
                _ => g.f64_in(0.0, 0.999),
            };
            let exposure = Seconds::new(g.f64_in(0.0, 1e9));
            let p = FailureModel::new(afr).failure_probability(exposure);
            assert!((0.0..=1.0).contains(&p), "AFR {afr} gave p {p}");
            let raid = RaidConfig::new(g.u32_in(1, 64), g.u32_in(0, 16)).unwrap();
            let s = raid.trip_survival_probability(p);
            assert!((0.0..=1.0).contains(&s), "AFR {afr} gave survival {s}");
            let more_parity = RaidConfig::new(
                raid.total_drives() - raid.parity_drives(),
                raid.parity_drives() + 1,
            )
            .unwrap()
            .trip_survival_probability(p);
            assert!(more_parity >= s - 1e-12);
        },
    );
}

#[test]
fn corruption_probability_is_a_probability() {
    forall("corruption_probability_is_a_probability", 256, |g| {
        let model = CorruptionModel {
            bit_rot_hazard_per_second: g.f64_in(0.0, 1e-3),
            wear_multiplier: g.f64_in(0.0, 10.0),
            mating_error_per_cycle: g.f64_in(0.0, 1.0),
            thermal_multiplier: g.f64_in(1.0, 10.0),
        };
        assert!(model.validate().is_ok());
        // Inputs deliberately include out-of-range and non-finite values:
        // the model clamps rather than propagates.
        let exposure = match g.u32_in(0, 3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => g.f64_in(-1e6, 1e7),
        };
        let wear = g.f64_in(-1.0, 3.0);
        let conn = g.f64_in(-1.0, 3.0);
        let p = model.shard_corruption_probability(Seconds::new(exposure), wear, conn);
        assert!((0.0..=1.0).contains(&p), "got {p}");
    });
}

#[test]
fn corruption_probability_is_monotone_in_every_hazard_input() {
    forall(
        "corruption_probability_is_monotone_in_every_hazard_input",
        256,
        |g| {
            let model = CorruptionModel {
                bit_rot_hazard_per_second: g.f64_in(1e-9, 1e-4),
                wear_multiplier: g.f64_in(0.0, 5.0),
                mating_error_per_cycle: g.f64_in(0.0, 0.01),
                thermal_multiplier: g.f64_in(1.0, 6.0),
            };
            let t = g.f64_in(0.0, 1e6);
            let dt = g.f64_in(0.0, 1e6);
            let wear = g.f64_in(0.0, 1.0);
            let dwear = g.f64_in(0.0, 1.0 - wear);
            let conn = g.f64_in(0.0, 1.0);
            let dconn = g.f64_in(0.0, 1.0 - conn);
            let base = model.shard_corruption_probability(Seconds::new(t), wear, conn);
            let eps = 1e-15;
            let longer = model.shard_corruption_probability(Seconds::new(t + dt), wear, conn);
            assert!(longer >= base - eps, "exposure: {base} -> {longer}");
            let worn = model.shard_corruption_probability(Seconds::new(t), wear + dwear, conn);
            assert!(worn >= base - eps, "wear: {base} -> {worn}");
            let frayed = model.shard_corruption_probability(Seconds::new(t), wear, conn + dconn);
            assert!(frayed >= base - eps, "connector: {base} -> {frayed}");
        },
    );
}

#[test]
fn manifests_cover_payloads_and_detect_every_injected_corruption() {
    forall(
        "manifests_cover_payloads_and_detect_every_injected_corruption",
        128,
        |g| {
            let payload = Bytes::new(g.u64_in(1, 1 << 50));
            let shard = Bytes::new(g.u64_in(1, 1 << 44));
            let staged = ShardManifest::stage(payload, shard);
            assert_eq!(staged.total_bytes(), payload);
            assert_eq!(
                staged.shard_count(),
                payload.as_u64().div_ceil(shard.as_u64())
            );
            // A clean delivery verifies clean.
            assert!(staged.verify(&staged).is_empty());
            // Any single flipped shard is detected, and only that shard.
            let victim = g.u64_in(0, staged.shard_count());
            let delivered = staged.with_corrupted_shard(victim);
            assert_eq!(staged.verify(&delivered), vec![victim]);
        },
    );
}

#[test]
fn sampled_corruptions_never_exceed_shard_count() {
    forall("sampled_corruptions_never_exceed_shard_count", 128, |g| {
        let model = CorruptionModel {
            bit_rot_hazard_per_second: g.f64_in(0.0, 1e-2),
            wear_multiplier: g.f64_in(0.0, 5.0),
            mating_error_per_cycle: g.f64_in(0.0, 1.0),
            thermal_multiplier: g.f64_in(1.0, 4.0),
        };
        let shards = g.u64_in(0, 512);
        let exposure = Seconds::new(g.f64_in(0.0, 1e9));
        let wear = g.f64_in(0.0, 1.0);
        let conn = g.f64_in(0.0, 1.0);
        let n = model.sample_corrupted_shards(g.rng(), shards, exposure, wear, conn);
        assert!(n <= shards);
    });
}

#[test]
fn raid_usable_capacity_never_exceeds_raw() {
    forall("raid_usable_capacity_never_exceeds_raw", 256, |g| {
        let data = g.u32_in(1, 64);
        let parity = g.u32_in(0, 64);
        let raw = g.u64_in(0, 1 << 50);
        let raid = RaidConfig::new(data, parity).unwrap();
        assert!(raid.usable_capacity(Bytes::new(raw)) <= Bytes::new(raw));
    });
}

#[test]
fn thermal_limit_is_monotone_in_budget() {
    forall("thermal_limit_is_monotone_in_budget", 256, |g| {
        let (w1, w2) = (g.f64_in(0.0, 10_000.0), g.f64_in(0.0, 10_000.0));
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let cart = CartStorage::paper_large();
        let a = ThermalModel::new(Watts::new(lo), 0.9).max_concurrent_ssds(&cart);
        let b = ThermalModel::new(Watts::new(hi), 0.9).max_concurrent_ssds(&cart);
        assert!(a <= b);
    });
}

#[test]
fn connector_wear_is_exact() {
    forall("connector_wear_is_exact", 64, |g| {
        let kind = if g.bool() {
            ConnectorKind::M2
        } else {
            ConnectorKind::UsbC
        };
        let cycles = g.u32_in(0, 500);
        let mut conn = DockingConnector::new(kind);
        let mut succeeded = 0u32;
        for _ in 0..cycles {
            if conn.mate().is_ok() {
                succeeded += 1;
            }
        }
        assert_eq!(succeeded, cycles.min(kind.rated_cycles()));
        assert_eq!(conn.cycles_used(), succeeded);
    });
}
