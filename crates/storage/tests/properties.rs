//! Property-based tests for the storage substrate.

use dhl_storage::cart::{CartStorage, PcieGeneration, PcieLink};
use dhl_storage::connectors::{ConnectorKind, DockingConnector};
use dhl_storage::datasets::{Dataset, DatasetKind};
use dhl_storage::devices::StorageDevice;
use dhl_storage::failure::{FailureModel, RaidConfig};
use dhl_storage::thermal::ThermalModel;
use dhl_units::{Bytes, Seconds, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn shards_always_cover_the_dataset(size in 1u64..1u64<<52, chunk in 1u64..1u64<<42) {
        let d = Dataset {
            name: "prop".into(),
            size: Bytes::new(size),
            kind: DatasetKind::BigData,
        };
        let shards: Vec<Bytes> = d.shards(Bytes::new(chunk)).collect();
        let total: Bytes = shards.iter().sum();
        prop_assert_eq!(total, d.size);
        prop_assert_eq!(shards.len() as u64, size.div_ceil(chunk));
        // every shard but the last is exactly chunk-sized
        for s in &shards[..shards.len().saturating_sub(1)] {
            prop_assert_eq!(s.as_u64(), chunk);
        }
        prop_assert!(shards.last().unwrap().as_u64() <= chunk);
    }

    #[test]
    fn cart_capacity_and_mass_scale_linearly(n in 1u32..1024) {
        let cart = CartStorage::new(StorageDevice::sabrent_rocket_4_plus(), n);
        prop_assert_eq!(cart.capacity().as_u64(), u64::from(n) * 8_000_000_000_000);
        let per = cart.payload_mass().value() / f64::from(n);
        prop_assert!((per - 0.00567).abs() < 1e-12);
    }

    #[test]
    fn docked_bandwidth_never_exceeds_either_limit(n in 1u32..256, lanes in 1u32..128) {
        let cart = CartStorage::new(StorageDevice::sabrent_rocket_4_plus(), n);
        let link = PcieLink::new(PcieGeneration::Gen6, lanes);
        let eff = cart.docked_read_bandwidth(link);
        prop_assert!(eff.value() <= cart.aggregate_read_bandwidth().value() + 1e-6);
        prop_assert!(eff.value() <= link.bandwidth().value() + 1e-6);
    }

    #[test]
    fn failure_probability_is_monotone_in_time(afr in 0.0..0.99f64, t1 in 0.0..1e9f64, t2 in 0.0..1e9f64) {
        let m = FailureModel::new(afr);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(m.failure_probability(Seconds::new(lo)) <= m.failure_probability(Seconds::new(hi)));
    }

    #[test]
    fn failure_probability_is_a_probability(afr in 0.0..0.999f64, t in 0.0..1e12f64) {
        let p = FailureModel::new(afr).failure_probability(Seconds::new(t));
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn raid_survival_is_monotone_in_parity(data in 1u32..64, parity in 0u32..16, p in 0.0..1.0f64) {
        let less = RaidConfig::new(data, parity).unwrap().trip_survival_probability(p);
        let more = RaidConfig::new(data, parity + 1).unwrap().trip_survival_probability(p);
        // Note: adding a parity drive also adds a drive that can fail, but
        // tolerance grows faster than exposure, so survival never drops
        // (both layouts must lose > parity drives, and the larger layout
        // tolerates one more).
        prop_assert!(more >= less - 1e-12);
    }

    #[test]
    fn raid_usable_capacity_never_exceeds_raw(data in 1u32..64, parity in 0u32..64, raw in 0u64..1u64<<50) {
        let raid = RaidConfig::new(data, parity).unwrap();
        prop_assert!(raid.usable_capacity(Bytes::new(raw)) <= Bytes::new(raw));
    }

    #[test]
    fn thermal_limit_is_monotone_in_budget(w1 in 0.0..10_000.0f64, w2 in 0.0..10_000.0f64) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let cart = CartStorage::paper_large();
        let a = ThermalModel::new(Watts::new(lo), 0.9).max_concurrent_ssds(&cart);
        let b = ThermalModel::new(Watts::new(hi), 0.9).max_concurrent_ssds(&cart);
        prop_assert!(a <= b);
    }

    #[test]
    fn connector_wear_is_exact(kind in prop_oneof![Just(ConnectorKind::M2), Just(ConnectorKind::UsbC)], cycles in 0u32..500) {
        let mut conn = DockingConnector::new(kind);
        let mut succeeded = 0u32;
        for _ in 0..cycles {
            if conn.mate().is_ok() { succeeded += 1; }
        }
        prop_assert_eq!(succeeded, cycles.min(kind.rated_cycles()));
        prop_assert_eq!(conn.cycles_used(), succeeded);
    }
}
