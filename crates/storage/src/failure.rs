//! SSD failure injection and RAID tolerance (§III-D).
//!
//! "If an SSD fails in-flight, the endpoint's DHL API will report the error,
//! and RAID and backups can ameliorate the issue." This module provides the
//! stochastic failure model the simulator injects and the RAID arithmetic
//! that decides whether a cart's data survived.

use dhl_rng::Rng;
use serde::{Deserialize, Serialize};

use dhl_units::Seconds;

/// Exponential (constant-hazard) SSD failure model parameterised by annual
/// failure rate (AFR).
///
/// # Examples
///
/// ```rust
/// use dhl_storage::failure::FailureModel;
/// use dhl_units::Seconds;
///
/// let model = FailureModel::new(0.01); // 1 % AFR, typical enterprise SSD
/// let p = model.failure_probability(Seconds::new(8.6));
/// assert!(p > 0.0 && p < 1e-8); // one trip is essentially risk-free
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FailureModel {
    annual_failure_rate: f64,
}

impl FailureModel {
    /// Seconds per (365-day) year.
    const SECONDS_PER_YEAR: f64 = 365.0 * 86_400.0;

    /// A model with the given annual failure rate, clamped into `[0, 1)`.
    /// A non-finite AFR (NaN or ±∞ would otherwise leak through `clamp`
    /// into every survival probability) is treated as zero.
    #[must_use]
    pub fn new(annual_failure_rate: f64) -> Self {
        let afr = if annual_failure_rate.is_finite() {
            annual_failure_rate
        } else {
            0.0
        };
        Self {
            annual_failure_rate: afr.clamp(0.0, 1.0 - f64::EPSILON),
        }
    }

    /// A typical enterprise SSD at 1 % AFR.
    #[must_use]
    pub fn typical_enterprise_ssd() -> Self {
        Self::new(0.01)
    }

    /// The annual failure rate.
    #[must_use]
    pub fn annual_failure_rate(&self) -> f64 {
        self.annual_failure_rate
    }

    /// Constant hazard rate λ (per second) such that
    /// `1 - exp(-λ·year) = AFR`.
    #[must_use]
    pub fn hazard_per_second(&self) -> f64 {
        -(1.0 - self.annual_failure_rate).ln() / Self::SECONDS_PER_YEAR
    }

    /// Probability that one SSD fails within `duration`. Negative and
    /// non-finite durations are clamped to zero exposure rather than
    /// propagating NaN into the survival arithmetic.
    #[must_use]
    pub fn failure_probability(&self, duration: Seconds) -> f64 {
        let exposure = if duration.seconds().is_finite() {
            duration.seconds().max(0.0)
        } else if duration.seconds() == f64::INFINITY {
            return if self.annual_failure_rate > 0.0 {
                1.0
            } else {
                0.0
            };
        } else {
            0.0
        };
        1.0 - (-self.hazard_per_second() * exposure).exp()
    }

    /// Samples how many of `ssd_count` independent SSDs fail within
    /// `duration`.
    pub fn sample_failures<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ssd_count: u32,
        duration: Seconds,
    ) -> u32 {
        let p = self.failure_probability(duration);
        (0..ssd_count).filter(|_| rng.random_bool(p)).count() as u32
    }
}

/// A RAID layout across a cart's SSDs.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::failure::RaidConfig;
/// use dhl_units::Bytes;
///
/// // 28 data + 4 parity drives on a 32-SSD cart (RAID-6-style, two groups).
/// let raid = RaidConfig::new(28, 4).unwrap();
/// assert!(raid.tolerates(4));
/// assert!(!raid.tolerates(5));
/// // Usable capacity loses the parity fraction.
/// let usable = raid.usable_capacity(Bytes::from_terabytes(256.0));
/// assert_eq!(usable.terabytes(), 224.0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RaidConfig {
    data_drives: u32,
    parity_drives: u32,
}

/// Error constructing a degenerate RAID layout.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InvalidRaid;

impl core::fmt::Display for InvalidRaid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "raid layout needs at least one data drive")
    }
}

impl std::error::Error for InvalidRaid {}

impl RaidConfig {
    /// A layout of `data_drives` data and `parity_drives` parity drives.
    ///
    /// # Errors
    ///
    /// [`InvalidRaid`] if there are zero data drives.
    pub fn new(data_drives: u32, parity_drives: u32) -> Result<Self, InvalidRaid> {
        if data_drives == 0 {
            return Err(InvalidRaid);
        }
        Ok(Self {
            data_drives,
            parity_drives,
        })
    }

    /// No redundancy: every drive carries unique data.
    ///
    /// `drives` must be at least 1; a zero-drive layout is meaningless and
    /// is clamped to a single data drive (debug builds assert instead, so
    /// the bug surfaces in tests rather than silently shifting capacity
    /// arithmetic). Use [`RaidConfig::new`] when the drive count is not
    /// statically known to be positive — it returns a `Result`.
    #[must_use]
    pub fn none(drives: u32) -> Self {
        debug_assert!(drives >= 1, "RaidConfig::none requires at least one drive");
        Self {
            data_drives: drives.max(1),
            parity_drives: 0,
        }
    }

    /// Total drives in the layout.
    #[must_use]
    pub fn total_drives(&self) -> u32 {
        self.data_drives + self.parity_drives
    }

    /// Number of parity drives.
    #[must_use]
    pub fn parity_drives(&self) -> u32 {
        self.parity_drives
    }

    /// Whether the layout survives `failures` simultaneous drive losses.
    #[must_use]
    pub fn tolerates(&self, failures: u32) -> bool {
        failures <= self.parity_drives
    }

    /// Usable (non-parity) fraction of a raw capacity.
    #[must_use]
    pub fn usable_capacity(&self, raw: dhl_units::Bytes) -> dhl_units::Bytes {
        let frac = f64::from(self.data_drives) / f64::from(self.total_drives());
        dhl_units::Bytes::new((raw.as_f64() * frac).round() as u64)
    }

    /// Probability the cart's data survives a trip, given a per-SSD failure
    /// probability `p` (binomial survival across the layout).
    ///
    /// Each binomial term is O(1) via the memoised/Stirling
    /// [`ln_factorial`], so the whole sum is O(parity) rather than
    /// O(drives × parity).
    #[must_use]
    pub fn trip_survival_probability(&self, p: f64) -> f64 {
        let n = self.total_drives();
        let p = p.clamp(0.0, 1.0);
        // Sum P(k failures) for k = 0..=parity.
        let mut survival = 0.0;
        for k in 0..=self.parity_drives.min(n) {
            survival += binomial_pmf(n, k, p);
        }
        survival.min(1.0)
    }
}

/// Binomial probability mass function, computed in log space for stability.
fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + f64::from(k) * p.ln() + f64::from(n - k) * (1.0 - p).ln()).exp()
}

/// How many `ln(n!)` values the exact cumulative table covers. Carts top out
/// at a few hundred SSDs, so lookups almost never fall through to Stirling.
const LN_FACTORIAL_TABLE_SIZE: usize = 1025;

/// `ln(n!)` in O(1): an exact memoised prefix-sum table for `n < 1025`,
/// falling back to a Stirling-series approximation beyond it (error
/// < 1e-12 relative there, far below the table boundary values).
fn ln_factorial(n: u32) -> f64 {
    static TABLE: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = Vec::with_capacity(LN_FACTORIAL_TABLE_SIZE);
        let mut acc = 0.0f64;
        t.push(acc); // ln(0!) = 0
        for i in 1..LN_FACTORIAL_TABLE_SIZE as u64 {
            acc += (i as f64).ln();
            t.push(acc);
        }
        t
    });
    if let Some(&v) = table.get(n as usize) {
        return v;
    }
    // Stirling's series for ln(n!) = ln Γ(n+1).
    let x = f64::from(n) + 1.0;
    let ln_2pi = (2.0 * std::f64::consts::PI).ln();
    (x - 0.5) * x.ln() - x + 0.5 * ln_2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhl_rng::DeterministicRng;

    #[test]
    fn afr_round_trips_through_hazard() {
        let m = FailureModel::new(0.01);
        let year = Seconds::new(365.0 * 86_400.0);
        assert!((m.failure_probability(year) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn per_trip_probability_is_tiny() {
        let m = FailureModel::typical_enterprise_ssd();
        let p = m.failure_probability(Seconds::new(8.6));
        assert!(p < 3e-9, "got {p}");
        assert!(p > 0.0);
    }

    #[test]
    fn zero_duration_never_fails() {
        let m = FailureModel::new(0.5);
        assert_eq!(m.failure_probability(Seconds::ZERO), 0.0);
        assert_eq!(m.failure_probability(Seconds::new(-5.0)), 0.0);
    }

    #[test]
    fn degenerate_afr_is_sanitised() {
        // Non-finite AFRs would previously slip through `clamp` and poison
        // every downstream survival probability with NaN.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let m = FailureModel::new(bad);
            assert_eq!(m.annual_failure_rate(), 0.0, "AFR {bad} must sanitise");
            assert_eq!(m.failure_probability(Seconds::new(8.6)), 0.0);
        }
        // Negative AFRs clamp to zero; ≥ 1 clamps just below certainty.
        assert_eq!(FailureModel::new(-0.3).annual_failure_rate(), 0.0);
        let certain = FailureModel::new(2.0);
        assert!(certain.annual_failure_rate() < 1.0);
        assert!(certain.hazard_per_second().is_finite());
    }

    #[test]
    fn degenerate_durations_are_clamped() {
        let m = FailureModel::new(0.01);
        // NaN exposure clamps to zero exposure, not NaN probability.
        assert_eq!(m.failure_probability(Seconds::new(f64::NAN)), 0.0);
        assert_eq!(m.failure_probability(Seconds::new(f64::NEG_INFINITY)), 0.0);
        // Unbounded exposure with a positive hazard is certain failure...
        assert_eq!(m.failure_probability(Seconds::new(f64::INFINITY)), 1.0);
        // ...but a zero-hazard model never fails even over infinite time
        // (previously 0 × ∞ = NaN).
        let immortal = FailureModel::new(0.0);
        assert_eq!(
            immortal.failure_probability(Seconds::new(f64::INFINITY)),
            0.0
        );
        // Sampling with sanitised inputs stays well-defined.
        let mut rng = DeterministicRng::seed_from_u64(7);
        assert_eq!(m.sample_failures(&mut rng, 32, Seconds::new(f64::NAN)), 0);
    }

    #[test]
    fn sampling_matches_expectation_roughly() {
        let mut rng = DeterministicRng::seed_from_u64(42);
        let m = FailureModel::new(0.5);
        let long = Seconds::new(365.0 * 86_400.0); // a full year: p = 0.5
        let trials = 2_000u32;
        let mut total = 0;
        for _ in 0..trials {
            total += m.sample_failures(&mut rng, 1, long);
        }
        let rate = f64::from(total) / f64::from(trials);
        assert!((rate - 0.5).abs() < 0.05, "got {rate}");
    }

    #[test]
    fn raid_tolerance_and_capacity() {
        let raid = RaidConfig::new(28, 4).unwrap();
        assert_eq!(raid.total_drives(), 32);
        assert!(raid.tolerates(0));
        assert!(raid.tolerates(4));
        assert!(!raid.tolerates(5));
        let usable = raid.usable_capacity(dhl_units::Bytes::from_terabytes(256.0));
        assert_eq!(usable.terabytes(), 224.0);
    }

    #[test]
    fn raid_none_tolerates_nothing() {
        let raid = RaidConfig::none(32);
        assert!(raid.tolerates(0));
        assert!(!raid.tolerates(1));
        assert_eq!(
            raid.usable_capacity(dhl_units::Bytes::from_terabytes(256.0))
                .terabytes(),
            256.0
        );
    }

    #[test]
    fn zero_data_drives_rejected() {
        assert_eq!(RaidConfig::new(0, 4), Err(InvalidRaid));
    }

    #[test]
    fn survival_probability_boundaries() {
        let raid = RaidConfig::new(28, 4).unwrap();
        assert!((raid.trip_survival_probability(0.0) - 1.0).abs() < 1e-12);
        assert!(raid.trip_survival_probability(1.0) < 1e-12);
        // Tiny p: survival is essentially certain with 4 parity drives.
        assert!(raid.trip_survival_probability(1e-9) > 0.999_999_999);
    }

    #[test]
    fn survival_improves_with_parity() {
        let p = 0.01;
        let none = RaidConfig::none(32).trip_survival_probability(p);
        let raid4 = RaidConfig::new(28, 4).unwrap().trip_survival_probability(p);
        assert!(raid4 > none);
        // 32 drives at 1% each: ~72.5% chance all survive.
        assert!((none - 0.99f64.powi(32)).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 10;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
