//! Storage substrate for the DHL models.
//!
//! Implements the paper's storage-side building blocks:
//!
//! - [`devices`]: the Table II device catalog (3.5″ HDD, 3.5″ SSD, M.2 SSD)
//!   with mass/capacity/bandwidth and derived density metrics;
//! - [`cart`]: cart storage configurations (16/32/64 × 8 TB M.2) and the
//!   PCIe docking-station bandwidth model (§III-B.5);
//! - [`thermal`]: the §VI heat-sink model (10 W per active M.2);
//! - [`failure`]: SSD failure injection and RAID tolerance (§III-D);
//! - [`integrity`]: payload checksums, shard manifests, and silent
//!   corruption models driven by wear, connector cycles, and thermals;
//! - [`connectors`]: docking-connector endurance (§VI — M.2's hundreds of
//!   cycles vs USB-C's 10k–20k);
//! - [`datasets`]: the Table I / Table IV dataset and model catalog,
//!   including Meta's 29 PB DLRM training set used throughout the
//!   evaluation.
//!
//! # Example
//!
//! ```rust
//! use dhl_storage::cart::CartStorage;
//! use dhl_storage::datasets;
//!
//! let cart = CartStorage::paper_default(); // 32 × 8 TB M.2
//! assert_eq!(cart.capacity().terabytes(), 256.0);
//!
//! let dataset = datasets::meta_dlrm_29pb();
//! assert_eq!(dataset.size.div_ceil(cart.capacity()), 114); // trips
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cart;
pub mod connectors;
pub mod datasets;
pub mod devices;
pub mod failure;
pub mod growth;
pub mod integrity;
pub mod thermal;
pub mod wear;

pub use cart::{CartStorage, PcieGeneration, PcieLink};
pub use connectors::{ConnectorKind, DockingConnector};
pub use datasets::{Dataset, DatasetKind, MlModel};
pub use devices::{FormFactor, StorageDevice};
pub use failure::{FailureModel, RaidConfig};
pub use growth::{FleetProjection, GrowthModel};
pub use integrity::{fnv1a_64, Checksum64, CorruptionModel, ShardChecksum, ShardManifest};
pub use thermal::ThermalModel;
pub use wear::{CartWear, EnduranceModel};
