//! End-to-end payload integrity: checksums, shard manifests, and silent
//! corruption models.
//!
//! The paper's §II-A durability story covers *whole-drive* loss (RAID across
//! a cart's SSDs, [`crate::failure`]); this module covers the other half of
//! the sneakernet integrity problem — *silent* corruption of bytes that
//! still read back. Three physical substrates drive the corruption hazard:
//!
//! - **bit rot** over the shard's exposure window, scaled by NAND wear
//!   ([`crate::wear::CartWear::wear_fraction`]);
//! - **mating errors** on the docking connector, growing as the connector
//!   approaches its rated cycles ([`crate::connectors::DockingConnector`]);
//! - **thermal stress**: a docking bay that cannot cool every SSD
//!   ([`crate::thermal::ThermalModel::bandwidth_derating`]) reads hotter
//!   drives, multiplying the error rate.
//!
//! Checksums are an in-tree, zero-dependency 64-bit FNV-1a — the same
//! no-new-crates discipline as `dhl-obs`'s JSON writer.

use dhl_rng::Rng;
use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, Seconds};

use crate::cart::CartStorage;
use crate::thermal::ThermalModel;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the 64-bit FNV-1a checksum of a byte slice.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::integrity::fnv1a_64;
///
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a_64(b"shard-0"), fnv1a_64(b"shard-1"));
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An incremental FNV-1a 64-bit checksum, for data that arrives in chunks.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Checksum64 {
    state: u64,
}

impl Checksum64 {
    /// A fresh checksum (the FNV-1a offset basis).
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The checksum over everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

/// The recorded checksum of one shard of a cart payload.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ShardChecksum {
    /// Shard index within the payload.
    pub shard_index: u64,
    /// Bytes in the shard (the final shard may be partial).
    pub bytes: Bytes,
    /// 64-bit FNV-1a checksum recorded at staging time.
    pub checksum: u64,
}

/// A per-cart manifest of shard checksums, written when the payload is
/// staged in the library and re-verified on dock.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ShardManifest {
    shards: Vec<ShardChecksum>,
}

impl ShardManifest {
    /// Builds the manifest for a `payload` split into `shard_size` chunks.
    /// Checksums are synthesised deterministically from the payload geometry
    /// (the simulator moves no real bytes), so staging the same payload
    /// twice yields the same manifest.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero while the payload is not.
    #[must_use]
    pub fn stage(payload: Bytes, shard_size: Bytes) -> Self {
        if payload.is_zero() {
            return Self { shards: Vec::new() };
        }
        assert!(!shard_size.is_zero(), "shard size must be non-zero");
        let count = payload.as_u64().div_ceil(shard_size.as_u64());
        let shards = (0..count)
            .map(|i| {
                let offset = i * shard_size.as_u64();
                let bytes = Bytes::new(shard_size.as_u64().min(payload.as_u64() - offset));
                ShardChecksum {
                    shard_index: i,
                    bytes,
                    checksum: Self::synthesise(payload, i, bytes),
                }
            })
            .collect();
        Self { shards }
    }

    /// The deterministic stand-in checksum for a shard: FNV-1a over the
    /// shard's identifying geometry.
    fn synthesise(payload: Bytes, index: u64, bytes: Bytes) -> u64 {
        let mut c = Checksum64::new();
        c.update(&payload.as_u64().to_le_bytes());
        c.update(&index.to_le_bytes());
        c.update(&bytes.as_u64().to_le_bytes());
        c.finish()
    }

    /// The shard checksums, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[ShardChecksum] {
        &self.shards
    }

    /// Number of shards in the manifest.
    #[must_use]
    pub fn shard_count(&self) -> u64 {
        self.shards.len() as u64
    }

    /// Total bytes covered by the manifest.
    #[must_use]
    pub fn total_bytes(&self) -> Bytes {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Verifies a delivered manifest against this staged one, returning the
    /// indices of shards whose checksum (or size) no longer matches.
    #[must_use]
    pub fn verify(&self, delivered: &ShardManifest) -> Vec<u64> {
        let mut corrupted = Vec::new();
        for (i, staged) in self.shards.iter().enumerate() {
            match delivered.shards.get(i) {
                Some(d) if d == staged => {}
                _ => corrupted.push(staged.shard_index),
            }
        }
        for extra in delivered.shards.iter().skip(self.shards.len()) {
            corrupted.push(extra.shard_index);
        }
        corrupted
    }

    /// Returns a copy with the given shard's checksum flipped — the test
    /// hook for injecting a known corruption.
    #[must_use]
    pub fn with_corrupted_shard(&self, shard_index: u64) -> Self {
        let mut out = self.clone();
        for s in &mut out.shards {
            if s.shard_index == shard_index {
                s.checksum = !s.checksum;
            }
        }
        out
    }
}

/// Silent-corruption hazard model for shards riding a cart.
///
/// Combines three per-shard effects into one trip corruption probability:
/// a constant bit-rot hazard scaled up by NAND wear, a per-mating-cycle
/// error probability scaled up by connector wear, and a thermal multiplier
/// (≥ 1) for bays that run their drives throttled-hot.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::integrity::CorruptionModel;
/// use dhl_units::Seconds;
///
/// let model = CorruptionModel::paper_default();
/// let fresh = model.shard_corruption_probability(Seconds::new(8.6), 0.0, 0.0);
/// let worn = model.shard_corruption_probability(Seconds::new(8.6), 1.0, 1.0);
/// assert!(fresh < worn);
/// assert!((0.0..=1.0).contains(&worn));
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CorruptionModel {
    /// Baseline per-shard bit-rot hazard (per second of exposure) on fresh
    /// NAND.
    pub bit_rot_hazard_per_second: f64,
    /// How strongly wear amplifies the bit-rot hazard: the effective hazard
    /// is `base × (1 + wear_multiplier × wear_fraction)`.
    pub wear_multiplier: f64,
    /// Per-shard corruption probability added by one connector mating on
    /// fresh pins; grows linearly to twice that at rated wear-out.
    pub mating_error_per_cycle: f64,
    /// Error-rate multiplier (≥ 1) for thermal stress; see
    /// [`CorruptionModel::with_thermal`].
    pub thermal_multiplier: f64,
}

impl CorruptionModel {
    /// A conservative nominal model: consumer-NAND UBER-scale bit rot
    /// (~1e-9/s per 8 TB shard), wear doubling the hazard at end of life
    /// (wear multiplier 1), a 1e-9 mating-error floor, no thermal stress.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            bit_rot_hazard_per_second: 1e-9,
            wear_multiplier: 1.0,
            mating_error_per_cycle: 1e-9,
            thermal_multiplier: 1.0,
        }
    }

    /// A model that never corrupts anything (verification still runs and
    /// costs time/energy).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            bit_rot_hazard_per_second: 0.0,
            wear_multiplier: 0.0,
            mating_error_per_cycle: 0.0,
            thermal_multiplier: 1.0,
        }
    }

    /// Sets the thermal multiplier from the docking bay's envelope: a bay
    /// that can only keep a fraction `d` of the cart's SSDs inside its heat
    /// budget runs them hotter, multiplying the error rate by `1 / d`
    /// (1.0 when fully heat-sinked, as in the paper's default bay).
    #[must_use]
    pub fn with_thermal(mut self, bay: &ThermalModel, cart: &CartStorage) -> Self {
        let derating = bay.bandwidth_derating(cart);
        self.thermal_multiplier = if derating > 0.0 { 1.0 / derating } else { 1.0 };
        self
    }

    /// Whether every hazard term is zero (no sampling needed).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.bit_rot_hazard_per_second == 0.0 && self.mating_error_per_cycle == 0.0
    }

    /// Validates the model's parameters, returning the first violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let non_negative_finite = |name: &str, v: f64| {
            if !v.is_finite() || v < 0.0 {
                Err(format!("{name} must be non-negative and finite, got {v}"))
            } else {
                Ok(())
            }
        };
        non_negative_finite("bit_rot_hazard_per_second", self.bit_rot_hazard_per_second)?;
        non_negative_finite("wear_multiplier", self.wear_multiplier)?;
        if !self.mating_error_per_cycle.is_finite()
            || !(0.0..=1.0).contains(&self.mating_error_per_cycle)
        {
            return Err(format!(
                "mating_error_per_cycle must be a probability in [0, 1], got {}",
                self.mating_error_per_cycle
            ));
        }
        if !self.thermal_multiplier.is_finite() || self.thermal_multiplier < 1.0 {
            return Err(format!(
                "thermal_multiplier must be ≥ 1 and finite, got {}",
                self.thermal_multiplier
            ));
        }
        Ok(())
    }

    /// Probability that one shard is silently corrupted over a trip:
    /// `exposure` seconds of transit + docked dwell, at the cart's current
    /// NAND `wear_fraction` (0 fresh → 1 worn out) and the connector's
    /// `connector_wear` fraction (0 fresh → 1 at rated cycles).
    ///
    /// Non-finite or negative inputs are clamped rather than propagated.
    #[must_use]
    pub fn shard_corruption_probability(
        &self,
        exposure: Seconds,
        wear_fraction: f64,
        connector_wear: f64,
    ) -> f64 {
        let t = if exposure.seconds().is_finite() {
            exposure.seconds().max(0.0)
        } else {
            0.0
        };
        let sanitise = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        let wear = sanitise(wear_fraction);
        let conn = sanitise(connector_wear);
        let hazard = self.bit_rot_hazard_per_second * (1.0 + self.wear_multiplier * wear);
        let p_rot = 1.0 - (-hazard * t).exp();
        let p_mate = self.mating_error_per_cycle * (1.0 + conn);
        // Independent failure modes, then the thermal stress multiplier.
        let combined = p_rot + p_mate - p_rot * p_mate;
        (combined * self.thermal_multiplier).clamp(0.0, 1.0)
    }

    /// Samples how many of `shard_count` shards corrupt over one trip.
    pub fn sample_corrupted_shards<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        shard_count: u64,
        exposure: Seconds,
        wear_fraction: f64,
        connector_wear: f64,
    ) -> u64 {
        if self.is_disabled() || shard_count == 0 {
            return 0;
        }
        let p = self.shard_corruption_probability(exposure, wear_fraction, connector_wear);
        (0..shard_count).filter(|_| rng.random_bool(p)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhl_rng::DeterministicRng;

    #[test]
    fn fnv_vectors_match_the_reference() {
        // Classic FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut c = Checksum64::new();
        c.update(b"foo");
        c.update(b"bar");
        assert_eq!(c.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn manifest_covers_the_payload_exactly() {
        let payload = Bytes::from_terabytes(250.0);
        let shard = Bytes::from_terabytes(8.0);
        let m = ShardManifest::stage(payload, shard);
        assert_eq!(m.shard_count(), 32); // ceil(250 / 8)
        assert_eq!(m.total_bytes(), payload);
        // All but the last shard are full-sized.
        for s in &m.shards()[..31] {
            assert_eq!(s.bytes, shard);
        }
        assert!(m.shards()[31].bytes < shard);
    }

    #[test]
    fn staging_is_deterministic_and_payload_sensitive() {
        let shard = Bytes::from_terabytes(8.0);
        let a = ShardManifest::stage(Bytes::from_terabytes(256.0), shard);
        let b = ShardManifest::stage(Bytes::from_terabytes(256.0), shard);
        assert_eq!(a, b);
        let c = ShardManifest::stage(Bytes::from_terabytes(128.0), shard);
        assert_ne!(a.shards()[0].checksum, c.shards()[0].checksum);
    }

    #[test]
    fn verify_finds_exactly_the_corrupted_shards() {
        let m = ShardManifest::stage(Bytes::from_terabytes(256.0), Bytes::from_terabytes(8.0));
        assert!(m.verify(&m).is_empty());
        let delivered = m.with_corrupted_shard(3).with_corrupted_shard(17);
        assert_eq!(m.verify(&delivered), vec![3, 17]);
        // A truncated delivery flags every missing shard.
        let mut short = m.clone();
        short.shards.truncate(30);
        assert_eq!(m.verify(&short), vec![30, 31]);
    }

    #[test]
    fn empty_payload_has_an_empty_manifest() {
        let m = ShardManifest::stage(Bytes::ZERO, Bytes::from_terabytes(8.0));
        assert_eq!(m.shard_count(), 0);
        assert_eq!(m.total_bytes(), Bytes::ZERO);
    }

    #[test]
    fn corruption_probability_is_monotone_in_wear_and_exposure() {
        let model = CorruptionModel {
            bit_rot_hazard_per_second: 1e-6,
            wear_multiplier: 2.0,
            mating_error_per_cycle: 1e-5,
            thermal_multiplier: 1.0,
        };
        let t = Seconds::new(1_000.0);
        let fresh = model.shard_corruption_probability(t, 0.0, 0.0);
        let worn = model.shard_corruption_probability(t, 0.8, 0.0);
        let worn_conn = model.shard_corruption_probability(t, 0.8, 0.9);
        assert!(fresh < worn && worn < worn_conn);
        let longer = model.shard_corruption_probability(Seconds::new(10_000.0), 0.0, 0.0);
        assert!(longer > fresh);
    }

    #[test]
    fn thermal_stress_multiplies_the_error_rate() {
        use crate::cart::CartStorage;
        use crate::thermal::ThermalModel;
        let base = CorruptionModel::paper_default();
        // Heat-sinked bay: derating 1.0 → multiplier 1.0.
        let cool = base.with_thermal(&ThermalModel::paper_default(), &CartStorage::paper_large());
        assert_eq!(cool.thermal_multiplier, 1.0);
        // Bare bay throttles a 64-SSD cart to 11 active drives.
        let hot = base.with_thermal(
            &ThermalModel::without_heatsinks(),
            &CartStorage::paper_large(),
        );
        assert!(hot.thermal_multiplier > 5.0);
        let p_cool = cool.shard_corruption_probability(Seconds::new(100.0), 0.0, 0.0);
        let p_hot = hot.shard_corruption_probability(Seconds::new(100.0), 0.0, 0.0);
        assert!((p_hot / p_cool - hot.thermal_multiplier).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_are_clamped_not_propagated() {
        let model = CorruptionModel::paper_default();
        for p in [
            model.shard_corruption_probability(Seconds::new(f64::NAN), 0.5, 0.5),
            model.shard_corruption_probability(Seconds::new(-10.0), f64::NAN, 2.0),
            model.shard_corruption_probability(Seconds::new(f64::INFINITY), -1.0, -1.0),
        ] {
            assert!((0.0..=1.0).contains(&p), "got {p}");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(CorruptionModel::paper_default().validate().is_ok());
        assert!(CorruptionModel::disabled().validate().is_ok());
        let mut m = CorruptionModel::paper_default();
        m.bit_rot_hazard_per_second = f64::NAN;
        assert!(m.validate().is_err());
        let mut m = CorruptionModel::paper_default();
        m.mating_error_per_cycle = 1.5;
        assert!(m.validate().is_err());
        let mut m = CorruptionModel::paper_default();
        m.thermal_multiplier = 0.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn disabled_model_samples_nothing() {
        let mut rng = DeterministicRng::seed_from_u64(1);
        let n = CorruptionModel::disabled().sample_corrupted_shards(
            &mut rng,
            1_000,
            Seconds::new(1e12),
            1.0,
            1.0,
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn sampling_matches_expectation_roughly() {
        let model = CorruptionModel {
            bit_rot_hazard_per_second: 0.0,
            wear_multiplier: 0.0,
            mating_error_per_cycle: 0.25,
            thermal_multiplier: 1.0,
        };
        let mut rng = DeterministicRng::seed_from_u64(9);
        let n = model.sample_corrupted_shards(&mut rng, 10_000, Seconds::ZERO, 0.0, 0.0);
        let rate = n as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "got {rate}");
    }
}
