//! Emerging-dataset and ML-model catalog (Tables I and IV).
//!
//! These descriptors parameterise the workload generators: the DHL use cases
//! all revolve around moving a known number of bytes, so a dataset here is a
//! name, a size and a category — plus a sharding helper that splits it into
//! cart-sized pieces.

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, BytesPerSecond};

/// Category of a large dataset (Table I's "Type" column).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DatasetKind {
    /// Image corpora (LAION-5B).
    Images,
    /// Video corpora (YouTube-8M).
    Videos,
    /// Text / NLP corpora (MassiveText).
    Nlp,
    /// Web crawls (Common Crawl).
    WebCrawl,
    /// ML training sets (Meta's DLRM data).
    MachineLearning,
    /// Genomics archives (NIH / GSA).
    Genomics,
    /// Physics experiment streams (LHC CMS).
    Physics,
    /// General big-data ingest.
    BigData,
}

/// A named dataset with its published size.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Published name.
    pub name: std::borrow::Cow<'static, str>,
    /// Total size in bytes.
    pub size: Bytes,
    /// Category.
    pub kind: DatasetKind,
}

impl Dataset {
    /// Splits the dataset into `chunk`-sized shards; the last shard holds
    /// the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero bytes.
    pub fn shards(&self, chunk: Bytes) -> impl Iterator<Item = Bytes> {
        assert!(!chunk.is_zero(), "shard size must be non-zero");
        let full = self.size.as_u64() / chunk.as_u64();
        let rem = self.size.as_u64() % chunk.as_u64();
        (0..full)
            .map(move |_| chunk)
            .chain((rem > 0).then_some(Bytes::new(rem)))
    }
}

/// LAION-5B: 5.6 billion images, 250 TB (Table I).
#[must_use]
pub fn laion_5b() -> Dataset {
    Dataset {
        name: "LAION-5B".into(),
        size: Bytes::from_terabytes(250.0),
        kind: DatasetKind::Images,
    }
}

/// YouTube-8M: 350 k hours of video ≈ 350 k GiB with the paper's 1 h ≈ 1 GiB
/// conversion (Table I footnote).
#[must_use]
pub fn youtube_8m() -> Dataset {
    Dataset {
        name: "YouTube-8M".into(),
        size: Bytes::from_gibibytes(350_000.0),
        kind: DatasetKind::Videos,
    }
}

/// MassiveText: 10.25 TB of text (Table I).
#[must_use]
pub fn massive_text() -> Dataset {
    Dataset {
        name: "MassiveText".into(),
        size: Bytes::from_terabytes(10.25),
        kind: DatasetKind::Nlp,
    }
}

/// Common Crawl: > 9 PB of web crawl (Table I).
#[must_use]
pub fn common_crawl() -> Dataset {
    Dataset {
        name: "Common Crawl".into(),
        size: Bytes::from_petabytes(9.0),
        kind: DatasetKind::WebCrawl,
    }
}

/// Meta's 29 PB DLRM training dataset — the paper's headline workload.
#[must_use]
pub fn meta_dlrm_29pb() -> Dataset {
    Dataset {
        name: "Meta ML (DLRM)".into(),
        size: Bytes::from_petabytes(29.0),
        kind: DatasetKind::MachineLearning,
    }
}

/// Meta's smaller published ML datasets: 3 PB and 13 PB variants (Table I).
#[must_use]
pub fn meta_ml_datasets() -> Vec<Dataset> {
    [3.0, 13.0, 29.0]
        .into_iter()
        .map(|pb| Dataset {
            name: "Meta ML".into(),
            size: Bytes::from_petabytes(pb),
            kind: DatasetKind::MachineLearning,
        })
        .collect()
}

/// NIH "All of Us" + GSA genomics: 17 PB (Table I).
#[must_use]
pub fn genomics_17pb() -> Dataset {
    Dataset {
        name: "NIH + GSA Genomics".into(),
        size: Bytes::from_petabytes(17.0),
        kind: DatasetKind::Genomics,
    }
}

/// LHC CMS detector raw output rate: 150 TB/s (Table I).
#[must_use]
pub fn lhc_cms_rate() -> BytesPerSecond {
    BytesPerSecond::from_terabytes_per_second(150.0)
}

/// Meta's daily new data: 4 PB/day (Table I).
#[must_use]
pub fn meta_daily_ingest() -> Bytes {
    Bytes::from_petabytes(4.0)
}

/// YouTube's daily new video: 0.7–1.44 PB/day (Table I); returns the range.
#[must_use]
pub fn youtube_daily_ingest_range() -> (Bytes, Bytes) {
    (Bytes::from_petabytes(0.7), Bytes::from_petabytes(1.44))
}

/// A large ML model with its parameter count and storage footprint
/// (Table IV; sizes use the paper's 32-bit-per-parameter convention).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MlModel {
    /// Published name.
    pub name: std::borrow::Cow<'static, str>,
    /// Parameter count.
    pub parameters: u64,
    /// Publication year.
    pub year: u16,
}

impl MlModel {
    /// Storage footprint at 32 bits (4 bytes) per parameter — the paper's
    /// Table IV conversion.
    #[must_use]
    pub fn size(&self) -> Bytes {
        Bytes::new(self.parameters * 4)
    }
}

/// The Table IV model catalog.
#[must_use]
pub fn table_iv_models() -> Vec<MlModel> {
    vec![
        MlModel {
            name: "GPT-3".into(),
            parameters: 175_000_000_000,
            year: 2020,
        },
        MlModel {
            name: "Jurassic-1".into(),
            parameters: 178_000_000_000,
            year: 2021,
        },
        MlModel {
            name: "Gopher".into(),
            parameters: 280_000_000_000,
            year: 2021,
        },
        MlModel {
            name: "M6-10T".into(),
            parameters: 10_000_000_000_000,
            year: 2021,
        },
        MlModel {
            name: "Megatron-Turing NLG".into(),
            parameters: 1_000_000_000_000,
            year: 2022,
        },
        MlModel {
            name: "DLRM 2022".into(),
            parameters: 12_000_000_000_000,
            year: 2022,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_sizes() {
        assert_eq!(laion_5b().size.terabytes(), 250.0);
        assert_eq!(meta_dlrm_29pb().size.petabytes(), 29.0);
        assert_eq!(genomics_17pb().size.petabytes(), 17.0);
        assert!(common_crawl().size.petabytes() >= 9.0);
        assert_eq!(lhc_cms_rate().terabytes_per_second(), 150.0);
        assert_eq!(meta_daily_ingest().petabytes(), 4.0);
        let (lo, hi) = youtube_daily_ingest_range();
        assert!(lo < hi);
    }

    #[test]
    fn table_iv_sizes_match_paper() {
        let models = table_iv_models();
        let by_name = |n: &str| models.iter().find(|m| m.name == n).unwrap();
        // GPT-3: 175B × 4 B = 700 GB.
        assert_eq!(by_name("GPT-3").size().gigabytes(), 700.0);
        // Gopher: 280B → 1.12 TB.
        assert!((by_name("Gopher").size().terabytes() - 1.12).abs() < 1e-9);
        // M6-10T: 10T → 40 TB.
        assert_eq!(by_name("M6-10T").size().terabytes(), 40.0);
        // DLRM 2022: 12T → 48 TB (paper prints 44 TB; 12e12 × 4 B = 48 TB,
        // their table uses a slightly different parameter count).
        assert!((by_name("DLRM 2022").size().terabytes() - 48.0).abs() < 1e-9);
        assert_eq!(models.len(), 6);
    }

    #[test]
    fn shards_cover_dataset_exactly() {
        let d = meta_dlrm_29pb();
        let chunk = Bytes::from_terabytes(256.0);
        let shards: Vec<Bytes> = d.shards(chunk).collect();
        assert_eq!(shards.len(), 114); // 113 full + 1 remainder
        let total: Bytes = shards.iter().sum();
        assert_eq!(total, d.size);
        assert!(shards[..113].iter().all(|s| *s == chunk));
        assert!(shards[113] < chunk);
    }

    #[test]
    fn exact_multiple_has_no_remainder_shard() {
        let d = Dataset {
            name: "test".into(),
            size: Bytes::from_terabytes(512.0),
            kind: DatasetKind::BigData,
        };
        let shards: Vec<Bytes> = d.shards(Bytes::from_terabytes(256.0)).collect();
        assert_eq!(shards.len(), 2);
        assert!(shards.iter().all(|s| s.terabytes() == 256.0));
    }

    #[test]
    #[should_panic(expected = "shard size must be non-zero")]
    fn zero_shard_panics() {
        let _ = laion_5b().shards(Bytes::ZERO).count();
    }

    #[test]
    fn meta_dataset_family() {
        let sizes: Vec<f64> = meta_ml_datasets()
            .iter()
            .map(|d| d.size.petabytes())
            .collect();
        assert_eq!(sizes, vec![3.0, 13.0, 29.0]);
    }
}
