//! Storage-device catalog (Table II) and density metrics (§II-A).

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, BytesPerSecond, Kilograms};

/// Physical packaging of a storage device.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FormFactor {
    /// A 3.5-inch drive bay unit.
    ThreePointFiveInch,
    /// A U.2 2.5-inch enterprise SSD.
    U2,
    /// An M.2 2280 stick — the paper's chosen form factor.
    M2,
}

/// A storage device with the attributes the DHL models need.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::devices::StorageDevice;
///
/// let m2 = StorageDevice::sabrent_rocket_4_plus();
/// let exadrive = StorageDevice::nimbus_exadrive();
/// // §II-A: the 8 TB M.2 is almost 100× lighter for just 12.5× less capacity.
/// assert!(exadrive.mass.value() / m2.mass.value() > 90.0);
/// assert!((exadrive.capacity.as_f64() / m2.capacity.as_f64() - 12.5).abs() < 1e-9);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StorageDevice {
    /// Marketing name.
    pub name: std::borrow::Cow<'static, str>,
    /// Usable capacity.
    pub capacity: Bytes,
    /// Physical packaging.
    pub form_factor: FormFactor,
    /// Device mass.
    pub mass: Kilograms,
    /// Sequential read bandwidth.
    pub read_bandwidth: BytesPerSecond,
    /// Sequential write bandwidth.
    pub write_bandwidth: BytesPerSecond,
    /// Active power draw under load.
    pub active_power_watts: f64,
}

impl StorageDevice {
    /// WD Gold 24 TB 3.5″ enterprise HDD (Table II).
    #[must_use]
    pub fn wd_gold() -> Self {
        Self {
            name: "WD Gold".into(),
            capacity: Bytes::from_terabytes(24.0),
            form_factor: FormFactor::ThreePointFiveInch,
            mass: Kilograms::from_grams(670.0),
            read_bandwidth: BytesPerSecond::from_megabytes_per_second(291.0),
            write_bandwidth: BytesPerSecond::from_megabytes_per_second(291.0),
            active_power_watts: 7.0,
        }
    }

    /// A 22 TB 3.5″ HDD — the drive the paper's §II-C "move the disks by
    /// hand" estimate uses (29 PB requires 1319 of them).
    #[must_use]
    pub fn hdd_22tb() -> Self {
        Self {
            name: "22 TB HDD".into(),
            capacity: Bytes::from_terabytes(22.0),
            form_factor: FormFactor::ThreePointFiveInch,
            mass: Kilograms::from_grams(670.0),
            read_bandwidth: BytesPerSecond::from_megabytes_per_second(291.0),
            write_bandwidth: BytesPerSecond::from_megabytes_per_second(291.0),
            active_power_watts: 7.0,
        }
    }

    /// Nimbus ExaDrive 100 TB 3.5″ SSD (Table II).
    #[must_use]
    pub fn nimbus_exadrive() -> Self {
        Self {
            name: "Nimbus ExaDrive".into(),
            capacity: Bytes::from_terabytes(100.0),
            form_factor: FormFactor::ThreePointFiveInch,
            mass: Kilograms::from_grams(538.0),
            read_bandwidth: BytesPerSecond::from_megabytes_per_second(500.0),
            write_bandwidth: BytesPerSecond::from_megabytes_per_second(460.0),
            active_power_watts: 16.0,
        }
    }

    /// Sabrent Rocket 4 Plus 8 TB M.2 SSD (Table II) — the paper's cart
    /// payload. 5.67 g, 7100/6000 MB/s sequential, up to 10 W under load
    /// (§VI).
    #[must_use]
    pub fn sabrent_rocket_4_plus() -> Self {
        Self {
            name: "Sabrent Rocket 4 Plus".into(),
            capacity: Bytes::from_terabytes(8.0),
            form_factor: FormFactor::M2,
            mass: Kilograms::from_grams(5.67),
            read_bandwidth: BytesPerSecond::from_megabytes_per_second(7100.0),
            write_bandwidth: BytesPerSecond::from_megabytes_per_second(6000.0),
            active_power_watts: 10.0,
        }
    }

    /// The full Table II catalog.
    #[must_use]
    pub fn table_ii_catalog() -> Vec<Self> {
        vec![
            Self::wd_gold(),
            Self::nimbus_exadrive(),
            Self::sabrent_rocket_4_plus(),
        ]
    }

    /// Storage density in terabytes per gram — the quietly skyrocketing
    /// metric the paper's insight rests on.
    #[must_use]
    pub fn terabytes_per_gram(&self) -> f64 {
        self.capacity.terabytes() / self.mass.grams()
    }

    /// How many of this device are needed to hold `data`.
    #[must_use]
    pub fn devices_for(&self, data: Bytes) -> u64 {
        data.div_ceil(self.capacity)
    }

    /// Total mass of enough devices to hold `data`.
    #[must_use]
    pub fn mass_for(&self, data: Bytes) -> Kilograms {
        self.mass * self.devices_for(data) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let wd = StorageDevice::wd_gold();
        assert_eq!(wd.capacity.terabytes(), 24.0);
        assert!((wd.mass.grams() - 670.0).abs() < 1e-9);
        let nim = StorageDevice::nimbus_exadrive();
        assert_eq!(nim.capacity.terabytes(), 100.0);
        assert!((nim.read_bandwidth.value() - 500e6).abs() < 1.0);
        let m2 = StorageDevice::sabrent_rocket_4_plus();
        assert_eq!(m2.capacity.terabytes(), 8.0);
        assert!((m2.mass.grams() - 5.67).abs() < 1e-9);
        assert_eq!(m2.form_factor, FormFactor::M2);
    }

    #[test]
    fn m2_density_dominates() {
        // §II-A: per-gram, the M.2 is the clear winner.
        let m2 = StorageDevice::sabrent_rocket_4_plus();
        let nim = StorageDevice::nimbus_exadrive();
        let wd = StorageDevice::wd_gold();
        assert!(m2.terabytes_per_gram() > nim.terabytes_per_gram());
        assert!(nim.terabytes_per_gram() > wd.terabytes_per_gram());
        // "almost 100× lighter ... for just 12.5× less capacity".
        assert!((nim.mass.value() / m2.mass.value() - 94.9).abs() < 0.1);
        assert!((nim.capacity.as_f64() / m2.capacity.as_f64() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn exadrive_beats_largest_hdd_by_about_5x() {
        // §II-A: "100TB SSDs ... beat the largest regular HDD in capacity by ~5×".
        let ratio = StorageDevice::nimbus_exadrive().capacity.as_f64()
            / StorageDevice::wd_gold().capacity.as_f64();
        assert!(ratio > 4.0 && ratio < 5.0);
    }

    #[test]
    fn moving_29pb_by_hand_is_impractical() {
        // §II-C: 29 PB requires 1319 22 TB HDDs or 290 100 TB SSDs.
        let dataset = Bytes::from_petabytes(29.0);
        assert_eq!(StorageDevice::hdd_22tb().devices_for(dataset), 1319);
        assert_eq!(StorageDevice::nimbus_exadrive().devices_for(dataset), 290);
        // nearly a tonne of HDDs:
        assert!(StorageDevice::hdd_22tb().mass_for(dataset).value() > 800.0);
    }

    #[test]
    fn catalog_contains_three_devices() {
        assert_eq!(StorageDevice::table_ii_catalog().len(), 3);
    }

    #[test]
    fn devices_for_zero_data_is_zero() {
        assert_eq!(StorageDevice::wd_gold().devices_for(Bytes::ZERO), 0);
    }
}
