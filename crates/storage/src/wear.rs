//! SSD write-endurance model.
//!
//! DHL carts are written every time a dataset is (re)staged onto them, so
//! NAND endurance bounds a cart's service life. This module models the
//! standard TBW (terabytes-written) rating and drive-writes-per-day (DWPD)
//! arithmetic so deployments can budget cart replacement alongside §VI's
//! connector replacement.

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, Seconds};

use crate::devices::StorageDevice;

/// Endurance rating of a drive.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct EnduranceModel {
    /// Total bytes the drive may absorb before wear-out (its TBW rating).
    pub rated_writes: Bytes,
    /// Warranty period the DWPD figure is quoted over.
    pub warranty: Seconds,
}

impl EnduranceModel {
    /// The Rocket 4 Plus 8 TB's rating: 5600 TBW over a 5-year warranty.
    #[must_use]
    pub fn rocket_4_plus_8tb() -> Self {
        Self {
            rated_writes: Bytes::from_terabytes(5_600.0),
            warranty: Seconds::from_days(5.0 * 365.0),
        }
    }

    /// A custom rating.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is zero.
    #[must_use]
    pub fn new(rated_writes: Bytes, warranty: Seconds) -> Self {
        assert!(!rated_writes.is_zero(), "TBW rating must be non-zero");
        assert!(warranty.seconds() > 0.0, "warranty must be positive");
        Self {
            rated_writes,
            warranty,
        }
    }

    /// Drive-writes-per-day implied by the rating for a given capacity.
    #[must_use]
    pub fn dwpd(&self, device: &StorageDevice) -> f64 {
        let full_writes = self.rated_writes.as_f64() / device.capacity.as_f64();
        full_writes / self.warranty.days()
    }

    /// Service life under a steady write load (bytes per day), assuming
    /// perfect wear levelling.
    #[must_use]
    pub fn lifetime(&self, daily_writes: Bytes) -> Seconds {
        if daily_writes.is_zero() {
            return Seconds::new(f64::INFINITY);
        }
        Seconds::from_days(self.rated_writes.as_f64() / daily_writes.as_f64())
    }

    /// How many complete rewrites of `device` the rating allows.
    #[must_use]
    pub fn full_rewrites(&self, device: &StorageDevice) -> u64 {
        self.rated_writes.as_u64() / device.capacity.as_u64()
    }
}

/// Wear accounting for a whole cart in DHL service.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CartWear {
    endurance: EnduranceModel,
    cart_capacity: Bytes,
    written: Bytes,
}

impl CartWear {
    /// A fresh cart with the given per-cart capacity and per-drive-fleet
    /// endurance (rating scales with the number of drives, so we track at
    /// cart granularity: rated cart writes = TBW × drives = TBW ×
    /// capacity/drive-capacity; equivalently full rewrites are constant).
    #[must_use]
    pub fn new(endurance: EnduranceModel, cart_capacity: Bytes) -> Self {
        Self {
            endurance,
            cart_capacity,
            written: Bytes::ZERO,
        }
    }

    /// Rated bytes for the whole cart (TBW scaled by cart/drive ratio).
    #[must_use]
    pub fn rated_cart_writes(&self) -> Bytes {
        let device = StorageDevice::sabrent_rocket_4_plus();
        let drives = self.cart_capacity.as_f64() / device.capacity.as_f64();
        Bytes::new((self.endurance.rated_writes.as_f64() * drives) as u64)
    }

    /// Records a full-cart restage (writing `bytes` across the cart).
    pub fn record_write(&mut self, bytes: Bytes) {
        self.written += bytes;
    }

    /// Bytes written so far.
    #[must_use]
    pub fn written(&self) -> Bytes {
        self.written
    }

    /// Fraction of rated life consumed, ≥ 1 means due for replacement.
    #[must_use]
    pub fn wear_fraction(&self) -> f64 {
        self.written.as_f64() / self.rated_cart_writes().as_f64()
    }

    /// Whether the cart has exhausted its rated writes.
    #[must_use]
    pub fn is_worn_out(&self) -> bool {
        self.wear_fraction() >= 1.0
    }

    /// Full-cart restages remaining before wear-out.
    #[must_use]
    pub fn restages_remaining(&self) -> u64 {
        let remaining = self.rated_cart_writes().saturating_sub(self.written);
        remaining.as_u64() / self.cart_capacity.as_u64().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rocket_dwpd_is_fractional() {
        // 5600 TBW / 8 TB / (5 × 365) days ≈ 0.38 DWPD — a consumer-class
        // rating.
        let e = EnduranceModel::rocket_4_plus_8tb();
        let dwpd = e.dwpd(&StorageDevice::sabrent_rocket_4_plus());
        assert!((dwpd - 0.3836).abs() < 0.001, "{dwpd}");
        assert_eq!(
            e.full_rewrites(&StorageDevice::sabrent_rocket_4_plus()),
            700
        );
    }

    #[test]
    fn lifetime_under_daily_backups() {
        // A cart restaged once a day (256 TB written across 32 drives =
        // 8 TB/drive/day = 1 DWPD) lasts 700 days — under 2 years, so wear
        // budgeting matters for the backup use case.
        let e = EnduranceModel::rocket_4_plus_8tb();
        let life = e.lifetime(Bytes::from_terabytes(8.0));
        assert!((life.days() - 700.0).abs() < 0.5);
        // Idle carts last forever.
        assert!(!e.lifetime(Bytes::ZERO).is_finite());
    }

    #[test]
    fn cart_wear_accumulates_and_wears_out() {
        let mut wear = CartWear::new(
            EnduranceModel::rocket_4_plus_8tb(),
            Bytes::from_terabytes(256.0),
        );
        // 32 drives × 5600 TBW = 179 200 TB of rated cart writes = 700
        // restages.
        assert_eq!(wear.restages_remaining(), 700);
        for _ in 0..699 {
            wear.record_write(Bytes::from_terabytes(256.0));
        }
        assert!(!wear.is_worn_out());
        assert_eq!(wear.restages_remaining(), 1);
        wear.record_write(Bytes::from_terabytes(256.0));
        assert!(wear.is_worn_out());
        assert!((wear.wear_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ml_reuse_barely_wears_carts() {
        // The ML use case *reads* repeatedly but writes once per dataset
        // refresh: monthly restaging wears a cart out in 700 months — the
        // connector (§VI) and the SSDs' read path retire first.
        let mut wear = CartWear::new(
            EnduranceModel::rocket_4_plus_8tb(),
            Bytes::from_terabytes(256.0),
        );
        for _ in 0..24 {
            wear.record_write(Bytes::from_terabytes(256.0)); // two years monthly
        }
        assert!(wear.wear_fraction() < 0.04);
    }

    #[test]
    #[should_panic(expected = "TBW rating must be non-zero")]
    fn zero_rating_rejected() {
        let _ = EnduranceModel::new(Bytes::ZERO, Seconds::from_days(1.0));
    }

    #[test]
    fn partial_writes_count_proportionally() {
        let mut wear = CartWear::new(
            EnduranceModel::rocket_4_plus_8tb(),
            Bytes::from_terabytes(256.0),
        );
        wear.record_write(Bytes::from_terabytes(128.0));
        assert!((wear.wear_fraction() - 0.5 / 700.0).abs() < 1e-9);
        assert_eq!(wear.written(), Bytes::from_terabytes(128.0));
    }
}
