//! Docking-connector endurance (§VI "Increasing Connector Longevity").
//!
//! M.2 connectors are rated for only hundreds of mating cycles, while USB-C
//! (which can physically carry PCIe) is rated for 10k–20k — the paper's
//! choice for repeated docking. This module tracks connector wear so the
//! simulator can schedule maintenance.

use serde::{Deserialize, Serialize};

/// Connector family used between the cart and the docking station.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConnectorKind {
    /// A bare M.2 edge connector: rated for ~250 cycles ("100s of cycles").
    M2,
    /// USB-C carrying PCIe: rated 10 000–20 000 cycles; we use the
    /// conservative end.
    UsbC,
}

impl ConnectorKind {
    /// Rated mating cycles before replacement (conservative datasheet end).
    #[must_use]
    pub fn rated_cycles(self) -> u32 {
        match self {
            Self::M2 => 250,
            Self::UsbC => 10_000,
        }
    }
}

/// A physical connector with a wear counter.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::connectors::{ConnectorKind, DockingConnector};
///
/// let mut conn = DockingConnector::new(ConnectorKind::UsbC);
/// for _ in 0..9_999 { assert!(conn.mate().is_ok()); }
/// assert!(conn.mate().is_ok());       // 10 000th and last rated cycle
/// assert!(conn.mate().is_err());      // now worn out
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DockingConnector {
    kind: ConnectorKind,
    cycles_used: u32,
}

/// Error returned when mating a worn-out connector.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ConnectorWornOut {
    /// The connector family that wore out.
    pub kind: ConnectorKind,
    /// Cycles it had sustained.
    pub cycles_used: u32,
}

impl core::fmt::Display for ConnectorWornOut {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "connector {:?} exceeded its {} rated mating cycles",
            self.kind, self.cycles_used
        )
    }
}

impl std::error::Error for ConnectorWornOut {}

impl DockingConnector {
    /// A fresh connector of the given family.
    #[must_use]
    pub fn new(kind: ConnectorKind) -> Self {
        Self {
            kind,
            cycles_used: 0,
        }
    }

    /// The connector family.
    #[must_use]
    pub fn kind(&self) -> ConnectorKind {
        self.kind
    }

    /// Cycles consumed so far.
    #[must_use]
    pub fn cycles_used(&self) -> u32 {
        self.cycles_used
    }

    /// Remaining rated cycles.
    #[must_use]
    pub fn cycles_remaining(&self) -> u32 {
        self.kind.rated_cycles().saturating_sub(self.cycles_used)
    }

    /// Whether the connector has exhausted its rating.
    #[must_use]
    pub fn is_worn_out(&self) -> bool {
        self.cycles_used >= self.kind.rated_cycles()
    }

    /// Records one mating (dock) cycle.
    ///
    /// # Errors
    ///
    /// [`ConnectorWornOut`] once the rated cycle count is exhausted; the
    /// wear counter stops advancing.
    pub fn mate(&mut self) -> Result<(), ConnectorWornOut> {
        if self.is_worn_out() {
            return Err(ConnectorWornOut {
                kind: self.kind,
                cycles_used: self.cycles_used,
            });
        }
        self.cycles_used += 1;
        Ok(())
    }

    /// Replaces the connector, resetting wear to zero.
    pub fn replace(&mut self) {
        self.cycles_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usb_c_outlasts_m2_by_40x() {
        assert_eq!(
            ConnectorKind::UsbC.rated_cycles() / ConnectorKind::M2.rated_cycles(),
            40
        );
    }

    #[test]
    fn m2_wears_out_within_a_day_of_heavy_docking() {
        // At one dock every 8.6 s trip, 250 cycles last ~36 minutes of
        // continuous 29 PB-scale shuttling — why §VI rejects bare M.2.
        let mut conn = DockingConnector::new(ConnectorKind::M2);
        let mut ok = 0;
        while conn.mate().is_ok() {
            ok += 1;
        }
        assert_eq!(ok, 250);
        assert!(conn.is_worn_out());
    }

    #[test]
    fn wear_tracking_and_replacement() {
        let mut conn = DockingConnector::new(ConnectorKind::UsbC);
        assert_eq!(conn.cycles_remaining(), 10_000);
        conn.mate().unwrap();
        conn.mate().unwrap();
        assert_eq!(conn.cycles_used(), 2);
        assert_eq!(conn.cycles_remaining(), 9_998);
        conn.replace();
        assert_eq!(conn.cycles_used(), 0);
        assert!(!conn.is_worn_out());
    }

    #[test]
    fn worn_out_error_displays_context() {
        let mut conn = DockingConnector::new(ConnectorKind::M2);
        for _ in 0..250 {
            conn.mate().unwrap();
        }
        let err = conn.mate().unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("M2"));
        assert!(msg.contains("250"));
    }

    #[test]
    fn enough_usb_c_cycles_for_a_year_of_daily_backups() {
        // A daily backup run needing 2×114 dockings per day uses 83 220
        // cycles/year — 9 connector replacements, vs 333 for M.2.
        let per_year = 2 * 114 * 365u32;
        let usbc_replacements = per_year.div_ceil(ConnectorKind::UsbC.rated_cycles());
        let m2_replacements = per_year.div_ceil(ConnectorKind::M2.rated_cycles());
        assert_eq!(usbc_replacements, 9);
        assert_eq!(m2_replacements, 333);
    }
}
