//! Docked-cart thermal model (§VI "Heat Sinks").
//!
//! An M.2 SSD can consume up to 10 W under load; a 64-drive cart would
//! dissipate 640 W if all drives were active at once. The paper's fix is
//! conductive heat sinks between the M.2 connectors. We model a docking bay
//! with a finite heat-dissipation capacity and compute how many SSDs can run
//! concurrently.

use serde::{Deserialize, Serialize};

use dhl_units::Watts;

use crate::cart::CartStorage;

/// Thermal envelope of a docking bay.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::thermal::ThermalModel;
/// use dhl_storage::cart::CartStorage;
///
/// let bay = ThermalModel::paper_default();
/// // With heat sinks, the default 32-SSD cart can run fully active.
/// assert!(bay.can_sustain_full_load(&CartStorage::paper_default()));
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ThermalModel {
    dissipation_capacity: Watts,
    ambient_headroom: f64,
}

impl ThermalModel {
    /// Dissipation capacity of a heat-sinked docking bay. Budgeted to cover
    /// a fully active 64-SSD cart (640 W) with margin: 800 W.
    pub const PAPER_DISSIPATION: Watts = Watts::new(800.0);
    /// Fraction of capacity usable after ambient/airflow derating.
    pub const PAPER_HEADROOM: f64 = 0.9;

    /// The paper-calibrated heat-sinked bay.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            dissipation_capacity: Self::PAPER_DISSIPATION,
            ambient_headroom: Self::PAPER_HEADROOM,
        }
    }

    /// A bay without heat sinks: convection only, ~2 W per M.2 slot over the
    /// 64-slot footprint.
    #[must_use]
    pub fn without_heatsinks() -> Self {
        Self {
            dissipation_capacity: Watts::new(128.0),
            ambient_headroom: Self::PAPER_HEADROOM,
        }
    }

    /// A custom envelope. `headroom` is clamped into `(0, 1]`.
    #[must_use]
    pub fn new(dissipation_capacity: Watts, headroom: f64) -> Self {
        Self {
            dissipation_capacity: Watts::new(dissipation_capacity.value().max(0.0)),
            ambient_headroom: headroom.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }

    /// Usable dissipation budget after derating.
    #[must_use]
    pub fn usable_budget(&self) -> Watts {
        self.dissipation_capacity * self.ambient_headroom
    }

    /// Maximum number of `cart`'s SSDs that may be active concurrently.
    #[must_use]
    pub fn max_concurrent_ssds(&self, cart: &CartStorage) -> u32 {
        let per_ssd = cart.device().active_power_watts;
        if per_ssd <= 0.0 {
            return cart.ssd_count();
        }
        let limit = (self.usable_budget().value() / per_ssd).floor() as u32;
        limit.min(cart.ssd_count())
    }

    /// Whether every SSD on the cart can be active at once.
    #[must_use]
    pub fn can_sustain_full_load(&self, cart: &CartStorage) -> bool {
        self.max_concurrent_ssds(cart) == cart.ssd_count()
    }

    /// Fraction of the cart's aggregate bandwidth usable under this thermal
    /// envelope (active SSDs / total SSDs).
    #[must_use]
    pub fn bandwidth_derating(&self, cart: &CartStorage) -> f64 {
        if cart.ssd_count() == 0 {
            return 1.0;
        }
        f64::from(self.max_concurrent_ssds(cart)) / f64::from(cart.ssd_count())
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatsinked_bay_sustains_all_paper_carts() {
        let bay = ThermalModel::paper_default();
        for cart in [
            CartStorage::paper_small(),
            CartStorage::paper_default(),
            CartStorage::paper_large(),
        ] {
            assert!(
                bay.can_sustain_full_load(&cart),
                "{} SSDs",
                cart.ssd_count()
            );
            assert_eq!(bay.bandwidth_derating(&cart), 1.0);
        }
    }

    #[test]
    fn bare_bay_throttles_large_carts() {
        // Without heat sinks only 11 of 64 SSDs (10 W each, 115.2 W budget)
        // can run — the §VI motivation for adding them.
        let bay = ThermalModel::without_heatsinks();
        let large = CartStorage::paper_large();
        assert_eq!(bay.max_concurrent_ssds(&large), 11);
        assert!(!bay.can_sustain_full_load(&large));
        assert!(bay.bandwidth_derating(&large) < 0.2);
    }

    #[test]
    fn limit_never_exceeds_ssd_count() {
        let bay = ThermalModel::new(Watts::new(1e9), 1.0);
        let cart = CartStorage::paper_small();
        assert_eq!(bay.max_concurrent_ssds(&cart), 16);
    }

    #[test]
    fn zero_capacity_allows_nothing() {
        let bay = ThermalModel::new(Watts::ZERO, 1.0);
        assert_eq!(bay.max_concurrent_ssds(&CartStorage::paper_default()), 0);
        assert_eq!(bay.bandwidth_derating(&CartStorage::paper_default()), 0.0);
    }

    #[test]
    fn headroom_is_clamped() {
        let bay = ThermalModel::new(Watts::new(100.0), 2.0);
        assert!((bay.usable_budget().value() - 100.0).abs() < 1e-9);
    }
}
