//! Cart storage configuration and docking-station PCIe bandwidth
//! (§III-B.1, §III-B.5, Table V).

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, BytesPerSecond, Kilograms, Seconds};

use crate::devices::StorageDevice;

/// PCI Express generations relevant to docking stations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PcieGeneration {
    /// PCIe 4.0 — 16 GT/s per lane.
    Gen4,
    /// PCIe 5.0 — 32 GT/s per lane.
    Gen5,
    /// PCIe 6.0 — 64 GT/s per lane (the paper's §III-B.5 example:
    /// 3.8 Tb/s over 64 lanes).
    Gen6,
}

impl PcieGeneration {
    /// Per-lane signalling rate in gigatransfers per second.
    #[must_use]
    pub fn gigatransfers_per_second(self) -> f64 {
        match self {
            Self::Gen4 => 16.0,
            Self::Gen5 => 32.0,
            Self::Gen6 => 64.0,
        }
    }

    /// Encoding/protocol efficiency: 128b/130b for Gen4/5, FLIT 242/256 for
    /// Gen6.
    #[must_use]
    pub fn efficiency(self) -> f64 {
        match self {
            Self::Gen4 | Self::Gen5 => 128.0 / 130.0,
            Self::Gen6 => 242.0 / 256.0,
        }
    }
}

/// A PCIe link between a docked cart's SSDs and the rack's compute nodes.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::cart::{PcieGeneration, PcieLink};
///
/// // §III-B.5: PCIe 6 ×64 provides ≈ 3.8 Tb/s — one lane per SSD on the
/// // largest (64-SSD) cart.
/// let link = PcieLink::new(PcieGeneration::Gen6, 64);
/// assert!(link.gigabits_per_second() >= 3_800.0);
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PcieLink {
    generation: PcieGeneration,
    lanes: u32,
}

impl PcieLink {
    /// A link of `lanes` lanes at the given generation.
    #[must_use]
    pub fn new(generation: PcieGeneration, lanes: u32) -> Self {
        Self { generation, lanes }
    }

    /// The link's generation.
    #[must_use]
    pub fn generation(&self) -> PcieGeneration {
        self.generation
    }

    /// The number of lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Effective payload rate in gigabits per second.
    #[must_use]
    pub fn gigabits_per_second(&self) -> f64 {
        self.generation.gigatransfers_per_second()
            * f64::from(self.lanes)
            * self.generation.efficiency()
    }

    /// Effective payload rate in bytes per second.
    #[must_use]
    pub fn bandwidth(&self) -> BytesPerSecond {
        BytesPerSecond::new(self.gigabits_per_second() * 1e9 / 8.0)
    }
}

/// The SSD payload carried by one cart.
///
/// The paper fixes the SSDs inside the cart (cart and SSDs dock as one unit)
/// and evaluates carts of 16, 32 (default) and 64 × 8 TB M.2 drives —
/// 128/256/512 TB per cart.
///
/// # Examples
///
/// ```rust
/// use dhl_storage::cart::CartStorage;
///
/// let cart = CartStorage::paper_default();
/// assert_eq!(cart.ssd_count(), 32);
/// assert_eq!(cart.capacity().terabytes(), 256.0);
/// // Local read bandwidth across all SSDs in parallel: 32 × 7.1 GB/s.
/// assert!((cart.aggregate_read_bandwidth().terabytes_per_second() - 0.2272).abs() < 1e-4);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CartStorage {
    device: StorageDevice,
    ssd_count: u32,
}

impl CartStorage {
    /// The paper's default: 32 × Sabrent Rocket 4 Plus (256 TB).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(StorageDevice::sabrent_rocket_4_plus(), 32)
    }

    /// The paper's small configuration: 16 SSDs (128 TB).
    #[must_use]
    pub fn paper_small() -> Self {
        Self::new(StorageDevice::sabrent_rocket_4_plus(), 16)
    }

    /// The paper's large configuration: 64 SSDs (512 TB).
    #[must_use]
    pub fn paper_large() -> Self {
        Self::new(StorageDevice::sabrent_rocket_4_plus(), 64)
    }

    /// A cart carrying `ssd_count` copies of `device`.
    #[must_use]
    pub fn new(device: StorageDevice, ssd_count: u32) -> Self {
        Self { device, ssd_count }
    }

    /// The device model on board.
    #[must_use]
    pub fn device(&self) -> &StorageDevice {
        &self.device
    }

    /// Number of SSDs on board.
    #[must_use]
    pub fn ssd_count(&self) -> u32 {
        self.ssd_count
    }

    /// Total cart capacity.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.device.capacity * u64::from(self.ssd_count)
    }

    /// Total SSD payload mass.
    #[must_use]
    pub fn payload_mass(&self) -> Kilograms {
        self.device.mass * f64::from(self.ssd_count)
    }

    /// Aggregate sequential read bandwidth with all SSDs active in parallel.
    #[must_use]
    pub fn aggregate_read_bandwidth(&self) -> BytesPerSecond {
        self.device.read_bandwidth * f64::from(self.ssd_count)
    }

    /// Aggregate sequential write bandwidth with all SSDs active in parallel.
    #[must_use]
    pub fn aggregate_write_bandwidth(&self) -> BytesPerSecond {
        self.device.write_bandwidth * f64::from(self.ssd_count)
    }

    /// Effective drain (read) bandwidth through a docking station's PCIe
    /// link: the minimum of SSD aggregate bandwidth and link bandwidth.
    #[must_use]
    pub fn docked_read_bandwidth(&self, link: PcieLink) -> BytesPerSecond {
        self.aggregate_read_bandwidth().min(link.bandwidth())
    }

    /// Time to read the full cart through a docking station.
    #[must_use]
    pub fn full_read_time(&self, link: PcieLink) -> Seconds {
        self.docked_read_bandwidth(link)
            .transfer_time(self.capacity())
    }

    /// Time to write the full cart through a docking station.
    #[must_use]
    pub fn full_write_time(&self, link: PcieLink) -> Seconds {
        self.aggregate_write_bandwidth()
            .min(link.bandwidth())
            .transfer_time(self.capacity())
    }

    /// Aggregate active power with all SSDs under load (feeds the thermal
    /// model).
    #[must_use]
    pub fn active_power_watts(&self) -> f64 {
        self.device.active_power_watts * f64::from(self.ssd_count)
    }
}

impl Default for CartStorage {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cart_capacities() {
        assert_eq!(CartStorage::paper_small().capacity().terabytes(), 128.0);
        assert_eq!(CartStorage::paper_default().capacity().terabytes(), 256.0);
        assert_eq!(CartStorage::paper_large().capacity().terabytes(), 512.0);
    }

    #[test]
    fn payload_masses_match_section_iv_a() {
        // §IV-A: 91/180/363 g for 16/32/64 SSDs (rounded).
        assert!((CartStorage::paper_small().payload_mass().grams() - 90.72).abs() < 0.01);
        assert!((CartStorage::paper_default().payload_mass().grams() - 181.44).abs() < 0.01);
        assert!((CartStorage::paper_large().payload_mass().grams() - 362.88).abs() < 0.01);
    }

    #[test]
    fn pcie6_x64_provides_about_3_8_tbps() {
        let link = PcieLink::new(PcieGeneration::Gen6, 64);
        let gbps = link.gigabits_per_second();
        assert!(gbps > 3_800.0 && gbps < 3_900.0, "got {gbps}");
    }

    #[test]
    fn pcie_generations_double() {
        let g4 = PcieLink::new(PcieGeneration::Gen4, 16).bandwidth().value();
        let g5 = PcieLink::new(PcieGeneration::Gen5, 16).bandwidth().value();
        let g6 = PcieLink::new(PcieGeneration::Gen6, 16).bandwidth().value();
        assert!((g5 / g4 - 2.0).abs() < 1e-9);
        // Gen6 doubles the rate but switches to FLIT encoding.
        assert!(g6 / g5 > 1.9 && g6 / g5 < 2.0);
    }

    #[test]
    fn docked_bandwidth_is_min_of_ssd_and_link() {
        let cart = CartStorage::paper_large(); // 64 × 7.1 GB/s = 454 GB/s
        let narrow = PcieLink::new(PcieGeneration::Gen4, 16); // ~31.5 GB/s
        let wide = PcieLink::new(PcieGeneration::Gen6, 64); // ~484 GB/s
        assert_eq!(cart.docked_read_bandwidth(narrow), narrow.bandwidth());
        assert_eq!(
            cart.docked_read_bandwidth(wide),
            cart.aggregate_read_bandwidth()
        );
    }

    #[test]
    fn full_read_time_is_plausible() {
        // 256 TB at 227.2 GB/s ≈ 1127 s — this is why the paper pipelines
        // cart deliveries behind SSD reads.
        let t =
            CartStorage::paper_default().full_read_time(PcieLink::new(PcieGeneration::Gen6, 64));
        assert!((t.seconds() - 1126.7).abs() < 1.0);
    }

    #[test]
    fn active_power_scales_with_count() {
        assert_eq!(CartStorage::paper_default().active_power_watts(), 320.0);
        assert_eq!(CartStorage::paper_large().active_power_watts(), 640.0);
    }
}
