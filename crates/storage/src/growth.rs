//! Dataset and density growth projections (§II, §II-A).
//!
//! "For decades there has been exponential growth in data creation and
//! dataset sizes" — and on the other side, SSD density "has been quietly
//! skyrocketing". This module projects both exponentials so deployments can
//! ask when a dataset outgrows a cart fleet, and whether NAND scaling keeps
//! pace.

use serde::{Deserialize, Serialize};

use dhl_units::Bytes;

/// An exponential growth process with a fixed annual rate.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GrowthModel {
    /// Size at year zero.
    pub initial: Bytes,
    /// Annual growth factor (1.4 = +40 %/year).
    pub annual_factor: f64,
}

impl GrowthModel {
    /// Dataset growth at the rough doubling-every-two-years rate implied by
    /// Table I's trajectory (Meta: 3 → 13 → 29 PB over ~2 years ≈ 3×/year
    /// at the steep end; we default to √2 ≈ 1.41×/year as the long-run
    /// rate).
    #[must_use]
    pub fn dataset_default(initial: Bytes) -> Self {
        Self {
            initial,
            annual_factor: std::f64::consts::SQRT_2,
        }
    }

    /// NAND density growth: ~1.3×/year (layer-count stacking cadence).
    #[must_use]
    pub fn nand_density_default(initial: Bytes) -> Self {
        Self {
            initial,
            annual_factor: 1.3,
        }
    }

    /// A custom process.
    ///
    /// # Panics
    ///
    /// Panics unless `annual_factor` is finite and positive.
    #[must_use]
    pub fn new(initial: Bytes, annual_factor: f64) -> Self {
        assert!(
            annual_factor.is_finite() && annual_factor > 0.0,
            "growth factor must be positive and finite"
        );
        Self {
            initial,
            annual_factor,
        }
    }

    /// Projected size after `years` (fractional years allowed).
    #[must_use]
    pub fn size_after(&self, years: f64) -> Bytes {
        let projected = self.initial.as_f64() * self.annual_factor.powf(years);
        Bytes::new(projected.min(u64::MAX as f64) as u64)
    }

    /// Years until the process reaches `target` (0 if already there;
    /// +∞ if shrinking or static below the target).
    #[must_use]
    pub fn years_until(&self, target: Bytes) -> f64 {
        if self.initial >= target {
            return 0.0;
        }
        if self.annual_factor <= 1.0 {
            return f64::INFINITY;
        }
        (target.as_f64() / self.initial.as_f64()).ln() / self.annual_factor.ln()
    }
}

/// Whether a cart fleet keeps up with a growing dataset: compares the
/// number of carts a dataset needs over time under both exponentials.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FleetProjection {
    /// The dataset's growth.
    pub dataset: GrowthModel,
    /// Per-cart capacity growth (NAND density; cart count and mass fixed).
    pub cart_capacity: GrowthModel,
}

impl FleetProjection {
    /// Carts needed `years` from now.
    #[must_use]
    pub fn carts_needed_after(&self, years: f64) -> u64 {
        let data = self.dataset.size_after(years);
        let cart = self.cart_capacity.size_after(years);
        if cart.is_zero() {
            return u64::MAX;
        }
        data.div_ceil(cart)
    }

    /// Whether the cart count stays bounded by `limit` over a horizon
    /// (checked at yearly granularity).
    #[must_use]
    pub fn fleet_stays_within(&self, limit: u64, horizon_years: u32) -> bool {
        (0..=horizon_years).all(|y| self.carts_needed_after(f64::from(y)) <= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_math() {
        let g = GrowthModel::new(Bytes::from_petabytes(29.0), 2.0);
        assert_eq!(g.size_after(0.0), Bytes::from_petabytes(29.0));
        assert_eq!(g.size_after(1.0), Bytes::from_petabytes(58.0));
        assert!((g.years_until(Bytes::from_petabytes(116.0)) - 2.0).abs() < 1e-9);
        assert_eq!(g.years_until(Bytes::from_petabytes(1.0)), 0.0);
    }

    #[test]
    fn static_growth_never_reaches_target() {
        let g = GrowthModel::new(Bytes::from_petabytes(1.0), 1.0);
        assert!(g.years_until(Bytes::from_petabytes(2.0)).is_infinite());
    }

    #[test]
    fn meta_trajectory_is_steeper_than_the_default() {
        // 3 → 29 PB in ~2 years is ≈ 3.1×/year — Table I's steep end.
        let implied = (29.0f64 / 3.0).powf(0.5);
        assert!(implied > GrowthModel::dataset_default(Bytes::from_petabytes(3.0)).annual_factor);
    }

    #[test]
    fn nand_density_nearly_keeps_up_with_default_dataset_growth() {
        // Dataset at √2/year vs carts at 1.3/year: the fleet grows slowly
        // (ratio 1.088/year) — a 114-cart fleet stays under 200 carts for
        // ~6 years.
        let p = FleetProjection {
            dataset: GrowthModel::dataset_default(Bytes::from_petabytes(29.0)),
            cart_capacity: GrowthModel::nand_density_default(Bytes::from_terabytes(256.0)),
        };
        assert_eq!(p.carts_needed_after(0.0), 114);
        assert!(p.fleet_stays_within(200, 6));
        assert!(!p.fleet_stays_within(200, 15));
    }

    #[test]
    fn meta_rate_outruns_nand() {
        // At Meta's observed 3×/year the fleet balloons within a few years
        // even with NAND scaling — a real adoption risk worth surfacing.
        let p = FleetProjection {
            dataset: GrowthModel::new(Bytes::from_petabytes(29.0), 3.0),
            cart_capacity: GrowthModel::nand_density_default(Bytes::from_terabytes(256.0)),
        };
        assert!(p.carts_needed_after(3.0) > 1_000);
    }

    #[test]
    #[should_panic(expected = "growth factor must be positive")]
    fn bad_factor_rejected() {
        let _ = GrowthModel::new(Bytes::new(1), 0.0);
    }

    #[test]
    fn fractional_years() {
        let g = GrowthModel::new(Bytes::from_petabytes(4.0), 4.0);
        assert_eq!(g.size_after(0.5), Bytes::from_petabytes(8.0));
    }
}
