//! Property-based tests for the analytical model's invariants.

use dhl_core::{crossover, BulkComparison, BulkTransfer, CostModel, DhlConfig, LaunchMetrics};
use dhl_rng::check::{forall, Gen};
use dhl_units::{Bytes, Kilograms, Metres, MetresPerSecond};

/// Valid (speed, length, ssds) draws: the track must fit both LIM ramps.
fn valid_config(g: &mut Gen) -> DhlConfig {
    let speed = g.f64_in(30.0, 400.0);
    let ssds = g.u32_in(1, 200);
    let min_len = speed * speed / 1000.0;
    let length = g.f64_in(min_len * 1.01, 10_000.0);
    DhlConfig::with_ssd_count(MetresPerSecond::new(speed), Metres::new(length), ssds)
}

#[test]
fn launch_metrics_are_internally_consistent() {
    forall("launch_metrics_are_internally_consistent", 128, |g| {
        let cfg = valid_config(g);
        let m = LaunchMetrics::evaluate(&cfg);
        // Bandwidth × time = capacity.
        let recovered = m.bandwidth.value() * m.trip_time.seconds();
        assert!((recovered - cfg.cart_capacity.as_f64()).abs() < 1e-6 * cfg.cart_capacity.as_f64());
        // Efficiency × energy = capacity (in GB).
        let gb = m.efficiency.value() * m.energy.value();
        assert!((gb - cfg.cart_capacity.gigabytes()).abs() < 1e-6 * cfg.cart_capacity.gigabytes());
        // All metrics positive and finite.
        for v in [
            m.energy.value(),
            m.trip_time.seconds(),
            m.bandwidth.value(),
            m.peak_power.value(),
            m.efficiency.value(),
        ] {
            assert!(v > 0.0 && v.is_finite());
        }
    });
}

#[test]
fn energy_is_exactly_mass_speed_squared_over_eta() {
    forall("energy_is_exactly_mass_speed_squared_over_eta", 128, |g| {
        let cfg = valid_config(g);
        let m = LaunchMetrics::evaluate(&cfg);
        let expect = cfg.cart_mass.value() * cfg.max_speed.value().powi(2) / 0.75;
        assert!((m.energy.value() - expect).abs() < 1e-9 * expect);
    });
}

#[test]
fn bulk_transfer_is_monotone_in_dataset() {
    forall("bulk_transfer_is_monotone_in_dataset", 128, |g| {
        let cfg = valid_config(g);
        let (a, b) = (g.u64_in(0, 1 << 55), g.u64_in(0, 1 << 55));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = BulkTransfer::evaluate(&cfg, Bytes::new(lo));
        let t_hi = BulkTransfer::evaluate(&cfg, Bytes::new(hi));
        assert!(t_lo.deliveries <= t_hi.deliveries);
        assert!(t_lo.time.seconds() <= t_hi.time.seconds());
        assert!(t_lo.energy.value() <= t_hi.energy.value());
    });
}

#[test]
fn energy_reductions_are_route_ordered() {
    forall("energy_reductions_are_route_ordered", 128, |g| {
        let cfg = valid_config(g);
        let cmp = BulkComparison::evaluate(&cfg, Bytes::from_petabytes(29.0));
        let vals: Vec<f64> = cmp.energy_reduction.iter().map(|(_, x)| *x).collect();
        for pair in vals.windows(2) {
            assert!(pair[0] < pair[1], "reductions must grow with route cost");
        }
        assert!(cmp.time_speedup > 0.0);
    });
}

#[test]
fn movements_always_double_deliveries() {
    forall("movements_always_double_deliveries", 128, |g| {
        let cfg = valid_config(g);
        let pb = g.f64_in(0.001, 100.0);
        let t = BulkTransfer::evaluate(&cfg, Bytes::from_petabytes(pb));
        assert_eq!(t.movements, 2 * t.deliveries);
        assert!(t.deliveries >= 1);
    });
}

#[test]
fn cost_grows_with_distance_and_speed() {
    forall("cost_grows_with_distance_and_speed", 128, |g| {
        let (d1, d2) = (g.f64_in(50.0, 2_000.0), g.f64_in(50.0, 2_000.0));
        let (v1, v2) = (g.f64_in(100.0, 300.0), g.f64_in(100.0, 300.0));
        let m = CostModel::paper();
        let (dlo, dhi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (vlo, vhi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let base = m.total_cost(Metres::new(dlo), MetresPerSecond::new(vlo));
        let more_d = m.total_cost(Metres::new(dhi), MetresPerSecond::new(vlo));
        let more_v = m.total_cost(Metres::new(dlo), MetresPerSecond::new(vhi));
        assert!(more_d.value() >= base.value());
        assert!(more_v.value() >= base.value());
    });
}

#[test]
fn crossover_breakeven_scales_with_trip_time() {
    forall("crossover_breakeven_scales_with_trip_time", 128, |g| {
        let extra_dock = g.f64_in(0.0, 10.0);
        let mut cfg = dhl_core::paper_minimal_dhl();
        cfg.dock_time += dhl_units::Seconds::new(extra_dock);
        let base = crossover(&dhl_core::paper_minimal_dhl());
        let slower = crossover(&cfg);
        assert!(slower.breakeven_dataset >= base.breakeven_dataset);
        // Breakeven = line rate × trip time exactly.
        let expect = 50e9 * slower.dhl_time.seconds();
        assert!((slower.breakeven_dataset.as_f64() - expect).abs() < 1.0);
    });
}

#[test]
fn dse_point_is_deterministic() {
    forall("dse_point_is_deterministic", 64, |g| {
        let cfg = valid_config(g);
        let a = dhl_core::DsePoint::evaluate(cfg.clone(), Bytes::from_petabytes(29.0));
        let b = dhl_core::DsePoint::evaluate(cfg, Bytes::from_petabytes(29.0));
        assert_eq!(a, b);
    });
}

#[test]
fn custom_cart_masses_scale_energy_linearly() {
    forall("custom_cart_masses_scale_energy_linearly", 128, |g| {
        let grams = g.f64_in(1.0, 10_000.0);
        let base = DhlConfig::with_custom_cart(
            MetresPerSecond::new(200.0),
            Metres::new(500.0),
            Bytes::from_terabytes(256.0),
            Kilograms::from_grams(grams),
        );
        let double = DhlConfig::with_custom_cart(
            MetresPerSecond::new(200.0),
            Metres::new(500.0),
            Bytes::from_terabytes(256.0),
            Kilograms::from_grams(2.0 * grams),
        );
        let e1 = LaunchMetrics::evaluate(&base).energy.value();
        let e2 = LaunchMetrics::evaluate(&double).energy.value();
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    });
}
