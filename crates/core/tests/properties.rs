//! Property-based tests for the analytical model's invariants.

use dhl_core::{
    crossover, BulkComparison, BulkTransfer, CostModel, DhlConfig, LaunchMetrics,
};
use dhl_units::{Bytes, Kilograms, Metres, MetresPerSecond};
use proptest::prelude::*;

/// Valid (speed, length) pairs: the track must fit both LIM ramps.
fn valid_config() -> impl Strategy<Value = DhlConfig> {
    (30.0..400.0f64, 1u32..200)
        .prop_flat_map(|(speed, ssds)| {
            let min_len = speed * speed / 1000.0;
            (
                Just(speed),
                (min_len * 1.01)..10_000.0f64,
                Just(ssds),
            )
        })
        .prop_map(|(speed, length, ssds)| {
            DhlConfig::with_ssd_count(
                MetresPerSecond::new(speed),
                Metres::new(length),
                ssds,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn launch_metrics_are_internally_consistent(cfg in valid_config()) {
        let m = LaunchMetrics::evaluate(&cfg);
        // Bandwidth × time = capacity.
        let recovered = m.bandwidth.value() * m.trip_time.seconds();
        prop_assert!((recovered - cfg.cart_capacity.as_f64()).abs() < 1e-6 * cfg.cart_capacity.as_f64());
        // Efficiency × energy = capacity (in GB).
        let gb = m.efficiency.value() * m.energy.value();
        prop_assert!((gb - cfg.cart_capacity.gigabytes()).abs() < 1e-6 * cfg.cart_capacity.gigabytes());
        // All metrics positive and finite.
        for v in [m.energy.value(), m.trip_time.seconds(), m.bandwidth.value(), m.peak_power.value(), m.efficiency.value()] {
            prop_assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn energy_is_exactly_mass_speed_squared_over_eta(cfg in valid_config()) {
        let m = LaunchMetrics::evaluate(&cfg);
        let expect = cfg.cart_mass.value() * cfg.max_speed.value().powi(2) / 0.75;
        prop_assert!((m.energy.value() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn bulk_transfer_is_monotone_in_dataset(cfg in valid_config(), a in 0u64..1u64<<55, b in 0u64..1u64<<55) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = BulkTransfer::evaluate(&cfg, Bytes::new(lo));
        let t_hi = BulkTransfer::evaluate(&cfg, Bytes::new(hi));
        prop_assert!(t_lo.deliveries <= t_hi.deliveries);
        prop_assert!(t_lo.time.seconds() <= t_hi.time.seconds());
        prop_assert!(t_lo.energy.value() <= t_hi.energy.value());
    }

    #[test]
    fn energy_reductions_are_route_ordered(cfg in valid_config()) {
        let cmp = BulkComparison::evaluate(&cfg, Bytes::from_petabytes(29.0));
        let vals: Vec<f64> = cmp.energy_reduction.iter().map(|(_, x)| *x).collect();
        for pair in vals.windows(2) {
            prop_assert!(pair[0] < pair[1], "reductions must grow with route cost");
        }
        prop_assert!(cmp.time_speedup > 0.0);
    }

    #[test]
    fn movements_always_double_deliveries(cfg in valid_config(), pb in 0.001..100.0f64) {
        let t = BulkTransfer::evaluate(&cfg, Bytes::from_petabytes(pb));
        prop_assert_eq!(t.movements, 2 * t.deliveries);
        prop_assert!(t.deliveries >= 1);
    }

    #[test]
    fn cost_grows_with_distance_and_speed(
        d1 in 50.0..2_000.0f64, d2 in 50.0..2_000.0f64,
        v1 in 100.0..300.0f64, v2 in 100.0..300.0f64,
    ) {
        let m = CostModel::paper();
        let (dlo, dhi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (vlo, vhi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let base = m.total_cost(Metres::new(dlo), MetresPerSecond::new(vlo));
        let more_d = m.total_cost(Metres::new(dhi), MetresPerSecond::new(vlo));
        let more_v = m.total_cost(Metres::new(dlo), MetresPerSecond::new(vhi));
        prop_assert!(more_d.value() >= base.value());
        prop_assert!(more_v.value() >= base.value());
    }

    #[test]
    fn crossover_breakeven_scales_with_trip_time(extra_dock in 0.0..10.0f64) {
        let mut cfg = dhl_core::paper_minimal_dhl();
        cfg.dock_time = cfg.dock_time + dhl_units::Seconds::new(extra_dock);
        let base = crossover(&dhl_core::paper_minimal_dhl());
        let slower = crossover(&cfg);
        prop_assert!(slower.breakeven_dataset >= base.breakeven_dataset);
        // Breakeven = line rate × trip time exactly.
        let expect = 50e9 * slower.dhl_time.seconds();
        prop_assert!((slower.breakeven_dataset.as_f64() - expect).abs() < 1.0);
    }

    #[test]
    fn dse_point_is_deterministic(cfg in valid_config()) {
        let a = dhl_core::DsePoint::evaluate(cfg.clone(), Bytes::from_petabytes(29.0));
        let b = dhl_core::DsePoint::evaluate(cfg, Bytes::from_petabytes(29.0));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn custom_cart_masses_scale_energy_linearly(grams in 1.0..10_000.0f64) {
        let base = DhlConfig::with_custom_cart(
            MetresPerSecond::new(200.0),
            Metres::new(500.0),
            Bytes::from_terabytes(256.0),
            Kilograms::from_grams(grams),
        );
        let double = DhlConfig::with_custom_cart(
            MetresPerSecond::new(200.0),
            Metres::new(500.0),
            Bytes::from_terabytes(256.0),
            Kilograms::from_grams(2.0 * grams),
        );
        let e1 = LaunchMetrics::evaluate(&base).energy.value();
        let e2 = LaunchMetrics::evaluate(&double).energy.value();
        prop_assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
