//! Fleet sizing and total cost of ownership.
//!
//! The paper's Table VIII prices the track and motors; a deployment also
//! needs carts — and the carts' SSDs dominate everything else. This module
//! sizes a fleet to sustain a target embodied bandwidth and prices the
//! whole system, answering the practical question Table VIII stops short
//! of: *dollars per sustained TB/s*.

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, BytesPerSecond, Seconds, Usd};

use crate::config::DhlConfig;
use crate::cost::CostModel;
use crate::launch::LaunchMetrics;

/// How the track is operated, which sets the sustained per-track rate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PipelineModel {
    /// The paper's conservative accounting: one cart at a time, out and
    /// back — rate = capacity / (2 × trip time).
    SerialRoundTrips,
    /// One-way launches at the trip cadence (returns on a second track or
    /// hidden behind processing) — rate = capacity / trip time.
    PipelinedOneWay,
    /// Dual-track launches at the docking headway — rate = capacity /
    /// headway (the §III-B.5 ceiling).
    HeadwayLimited,
}

/// Prices not covered by Table VIII: the carts themselves.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CartCostModel {
    /// SSD price per decimal terabyte (May 2023 street price of the 8 TB
    /// Rocket 4 Plus ≈ $900 ⇒ ≈ $110/TB; we round to $100/TB).
    pub ssd_usd_per_tb: f64,
    /// Everything else on the cart (magnets, fin, frame, connectors).
    pub chassis_usd: f64,
}

impl CartCostModel {
    /// May 2023 street prices.
    #[must_use]
    pub fn paper_era() -> Self {
        Self {
            ssd_usd_per_tb: 100.0,
            chassis_usd: 500.0,
        }
    }

    /// Price of one cart of the given capacity.
    #[must_use]
    pub fn cart_cost(&self, capacity: Bytes) -> Usd {
        Usd::new(capacity.terabytes() * self.ssd_usd_per_tb + self.chassis_usd)
    }
}

/// A sized and priced deployment.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Parallel tracks required.
    pub tracks: u32,
    /// Carts in circulation per track (enough to keep the launch cadence
    /// fed through a full round trip).
    pub carts_per_track: u32,
    /// Docking stations needed at each endpoint per track.
    pub docks_per_endpoint: u32,
    /// Sustained embodied bandwidth the plan actually delivers.
    pub sustained_bandwidth: BytesPerSecond,
    /// Track + LIM materials (Table VIII), all tracks.
    pub infrastructure_cost: Usd,
    /// All carts (SSDs dominate).
    pub cart_cost: Usd,
    /// Infrastructure + carts.
    pub total_cost: Usd,
}

impl FleetPlan {
    /// Dollars per sustained TB/s — the figure of merit for comparing
    /// against network upgrades.
    #[must_use]
    pub fn usd_per_terabyte_per_second(&self) -> f64 {
        self.total_cost.value() / self.sustained_bandwidth.terabytes_per_second()
    }
}

/// Per-track sustained rate and launch cadence under a pipeline model.
#[must_use]
pub fn per_track_rate(cfg: &DhlConfig, model: PipelineModel) -> (BytesPerSecond, Seconds) {
    let m = LaunchMetrics::evaluate(cfg);
    let cadence = match model {
        PipelineModel::SerialRoundTrips => m.trip_time * 2.0,
        PipelineModel::PipelinedOneWay => m.trip_time,
        PipelineModel::HeadwayLimited => cfg.dock_time.max(cfg.undock_time),
    };
    (cfg.cart_capacity / cadence, cadence)
}

/// Sizes and prices a fleet to sustain `target` embodied bandwidth.
///
/// # Panics
///
/// Panics if `target` is not positive.
#[must_use]
pub fn plan_for_bandwidth(
    target: BytesPerSecond,
    cfg: &DhlConfig,
    model: PipelineModel,
    infra: &CostModel,
    carts: &CartCostModel,
) -> FleetPlan {
    assert!(target.value() > 0.0, "target bandwidth must be positive");
    let (rate, cadence) = per_track_rate(cfg, model);
    let tracks = (target.value() / rate.value()).ceil().max(1.0) as u32;

    // Carts in circulation: a round trip's worth of launch slots (out and
    // back), so the library never starves the cadence.
    let m = LaunchMetrics::evaluate(cfg);
    let round_trip = m.trip_time * 2.0;
    let carts_per_track = (round_trip.seconds() / cadence.seconds()).ceil().max(1.0) as u32;
    // Docks: carts simultaneously present or reserved at one endpoint.
    let docks_per_endpoint = carts_per_track.div_ceil(2).max(1);

    let infra_cost_one = infra.total_cost(cfg.track_length, cfg.max_speed);
    let infrastructure_cost = infra_cost_one * f64::from(tracks);
    let cart_cost = carts.cart_cost(cfg.cart_capacity) * f64::from(carts_per_track * tracks);
    FleetPlan {
        tracks,
        carts_per_track,
        docks_per_endpoint,
        sustained_bandwidth: rate * f64::from(tracks),
        infrastructure_cost,
        cart_cost,
        total_cost: infrastructure_cost + cart_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(target_tbps: f64, model: PipelineModel) -> FleetPlan {
        plan_for_bandwidth(
            BytesPerSecond::from_terabytes_per_second(target_tbps),
            &DhlConfig::paper_default(),
            model,
            &CostModel::paper(),
            &CartCostModel::paper_era(),
        )
    }

    #[test]
    fn per_track_rates_are_ordered() {
        let cfg = DhlConfig::paper_default();
        let (serial, _) = per_track_rate(&cfg, PipelineModel::SerialRoundTrips);
        let (oneway, _) = per_track_rate(&cfg, PipelineModel::PipelinedOneWay);
        let (headway, _) = per_track_rate(&cfg, PipelineModel::HeadwayLimited);
        assert!(serial < oneway);
        assert!(oneway < headway);
        // Serial: 256 TB / 17.2 s ≈ 14.9 TB/s; headway: 256/3 ≈ 85.3 TB/s.
        assert!((serial.terabytes_per_second() - 14.88).abs() < 0.01);
        assert!((headway.terabytes_per_second() - 85.33).abs() < 0.01);
    }

    #[test]
    fn one_track_covers_modest_targets() {
        let p = plan(10.0, PipelineModel::SerialRoundTrips);
        assert_eq!(p.tracks, 1);
        assert!(p.sustained_bandwidth.terabytes_per_second() >= 10.0);
        // Serial: one cart, one dock.
        assert_eq!(p.carts_per_track, 1);
        assert_eq!(p.docks_per_endpoint, 1);
    }

    #[test]
    fn big_targets_need_parallel_tracks() {
        let p = plan(100.0, PipelineModel::SerialRoundTrips);
        assert_eq!(p.tracks, 7); // ceil(100 / 14.88)
        let q = plan(100.0, PipelineModel::HeadwayLimited);
        assert_eq!(q.tracks, 2);
        // Pipelining needs more carts in total but buys far more sustained
        // bandwidth, so it wins on $/TB/s.
        assert!(
            q.usd_per_terabyte_per_second() < p.usd_per_terabyte_per_second(),
            "headway {} vs serial {}",
            q.usd_per_terabyte_per_second(),
            p.usd_per_terabyte_per_second()
        );
    }

    #[test]
    fn headway_model_needs_a_cart_fleet() {
        let p = plan(80.0, PipelineModel::HeadwayLimited);
        // Round trip 17.2 s / 3 s cadence ⇒ 6 carts circulating.
        assert_eq!(p.carts_per_track, 6);
        assert_eq!(p.docks_per_endpoint, 3);
    }

    #[test]
    fn ssds_dominate_the_bill() {
        let p = plan(80.0, PipelineModel::HeadwayLimited);
        assert!(
            p.cart_cost.value() > 5.0 * p.infrastructure_cost.value(),
            "carts {} vs infra {}",
            p.cart_cost.display_dollars(),
            p.infrastructure_cost.display_dollars()
        );
        // A 256 TB cart ≈ $26k of SSD.
        let one_cart = CartCostModel::paper_era().cart_cost(Bytes::from_terabytes(256.0));
        assert_eq!(one_cart.value(), 26_100.0);
    }

    #[test]
    fn dollars_per_tbps_beats_network_scaling() {
        // The paper's 1-hour transfer needs 64 Tb/s of 400 Gb/s switching:
        // ~160 switch ports ≈ 5 × $20k switches ≈ $100k for 8 TB/s of
        // payload bandwidth ⇒ $12.5k per TB/s. The DHL fleet undercuts it.
        let p = plan(80.0, PipelineModel::HeadwayLimited);
        assert!(
            p.usd_per_terabyte_per_second() < 12_500.0,
            "{}",
            p.usd_per_terabyte_per_second()
        );
    }

    #[test]
    #[should_panic(expected = "target bandwidth must be positive")]
    fn zero_target_rejected() {
        let _ = plan(0.0, PipelineModel::SerialRoundTrips);
    }
}
