//! Bulk-transfer comparison vs optical networking (Table VI, right half).

use serde::{Deserialize, Serialize};

use dhl_net::route::{Route, RouteId};
use dhl_units::{Bytes, Joules, Seconds};

use crate::config::DhlConfig;
use crate::launch::LaunchMetrics;

/// The paper's 29 PB reference dataset (Meta's DLRM training data).
#[must_use]
pub fn paper_dataset() -> Bytes {
    Bytes::from_petabytes(29.0)
}

/// Closed-form model of moving a whole dataset through a DHL (§V-B).
///
/// One-way deliveries are `ceil(dataset / capacity)`; the endpoint's limited
/// docking capacity forces every cart back to the library, **doubling** the
/// movement count (the paper's conservative accounting — see
/// `dhl-sim` for what pipelining and dual tracks recover).
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BulkTransfer {
    /// One-way cart deliveries required.
    pub deliveries: u64,
    /// Total movements including returns (2 × deliveries).
    pub movements: u64,
    /// Total transfer time.
    pub time: Seconds,
    /// Total electrical energy.
    pub energy: Joules,
}

impl BulkTransfer {
    /// Evaluates the model for `dataset` under `cfg`.
    #[must_use]
    pub fn evaluate(cfg: &DhlConfig, dataset: Bytes) -> Self {
        let launch = LaunchMetrics::evaluate(cfg);
        let deliveries = if dataset.is_zero() {
            0
        } else {
            dataset.div_ceil(cfg.cart_capacity)
        };
        let movements = 2 * deliveries;
        Self {
            deliveries,
            movements,
            time: launch.trip_time * movements as f64,
            energy: launch.energy * movements as f64,
        }
    }
}

/// One comparison row: DHL vs every optical route for a fixed dataset
/// (Table VI's right half).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BulkComparison {
    /// The DHL transfer being compared.
    pub dhl: BulkTransfer,
    /// Baseline single-link (route-independent) transfer time.
    pub network_time: Seconds,
    /// Time speedup of DHL over one 400 Gb/s link.
    pub time_speedup: f64,
    /// Energy reduction factor per route, in [`RouteId::ALL`] order.
    pub energy_reduction: [(RouteId, f64); 5],
}

impl BulkComparison {
    /// Compares `cfg` moving `dataset` against all five routes.
    #[must_use]
    pub fn evaluate(cfg: &DhlConfig, dataset: Bytes) -> Self {
        let dhl = BulkTransfer::evaluate(cfg, dataset);
        let network_time = Route::a0().transfer_time(dataset);
        let time_speedup = network_time.seconds() / dhl.time.seconds();
        let energy_reduction = RouteId::ALL.map(|id| {
            let route_energy = Route::from_id(id).transfer_energy(dataset);
            (id, route_energy.value() / dhl.energy.value())
        });
        Self {
            dhl,
            network_time,
            time_speedup,
            energy_reduction,
        }
    }

    /// Energy-reduction factor against one route.
    #[must_use]
    pub fn reduction_vs(&self, id: RouteId) -> f64 {
        self.energy_reduction
            .iter()
            .find(|(r, _)| *r == id)
            .map(|(_, x)| *x)
            .expect("all routes present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhl_units::{Metres, MetresPerSecond};

    fn cmp(speed: f64, length: f64, ssds: u32) -> BulkComparison {
        BulkComparison::evaluate(
            &DhlConfig::with_ssd_count(MetresPerSecond::new(speed), Metres::new(length), ssds),
            paper_dataset(),
        )
    }

    #[test]
    fn trip_counts_match_section_v_b() {
        // "DHL needs 227, 114 or 57 trips ... doubled."
        assert_eq!(cmp(200.0, 500.0, 16).dhl.deliveries, 227);
        assert_eq!(cmp(200.0, 500.0, 32).dhl.deliveries, 114);
        assert_eq!(cmp(200.0, 500.0, 64).dhl.deliveries, 57);
        assert_eq!(cmp(200.0, 500.0, 32).dhl.movements, 228);
    }

    /// Table VI right half: every row's time speedup and A0/C energy
    /// reductions, within 1.5 % of the paper's printed values (the paper's
    /// own spreadsheet rounds intermediates; see EXPERIMENTS.md).
    #[test]
    fn table_vi_right_all_rows() {
        let rows: [(f64, f64, u32, f64, f64, f64); 13] = [
            // speed, len, ssds, speedup, vs A0, vs C
            (100.0, 500.0, 32, 229.6, 16.3, 350.9),
            (200.0, 500.0, 32, 295.1, 4.1, 87.7),
            (300.0, 500.0, 32, 324.6, 1.8, 39.0),
            (200.0, 100.0, 32, 384.5, 4.1, 87.7),
            (200.0, 500.0, 32, 295.1, 4.1, 87.7),
            (200.0, 1000.0, 32, 228.6, 4.1, 87.7),
            (200.0, 500.0, 16, 147.5, 3.6, 76.8),
            (200.0, 500.0, 32, 295.1, 4.1, 87.7),
            (200.0, 500.0, 64, 587.5, 4.4, 94.0),
            (100.0, 500.0, 16, 114.8, 14.3, 307.3),
            (100.0, 500.0, 64, 457.3, 17.5, 376.1),
            (300.0, 500.0, 16, 162.3, 1.6, 34.1),
            (300.0, 500.0, 64, 646.4, 1.9, 41.8),
        ];
        for (v, l, n, speedup, vs_a0, vs_c) in rows {
            let c = cmp(v, l, n);
            let rel = |got: f64, want: f64| (got - want).abs() / want;
            assert!(
                rel(c.time_speedup, speedup) < 0.015,
                "{v}/{l}/{n}: speedup {} vs {speedup}",
                c.time_speedup
            );
            assert!(
                rel(c.reduction_vs(RouteId::A0), vs_a0) < 0.03,
                "{v}/{l}/{n}: vs A0 {} vs {vs_a0}",
                c.reduction_vs(RouteId::A0)
            );
            assert!(
                rel(c.reduction_vs(RouteId::C), vs_c) < 0.03,
                "{v}/{l}/{n}: vs C {} vs {vs_c}",
                c.reduction_vs(RouteId::C)
            );
        }
    }

    #[test]
    fn headline_ranges() {
        // Abstract: energy reductions 1.6×–376.1×, speedups 114.8×–646.4×.
        let mut min_red = f64::INFINITY;
        let mut max_red: f64 = 0.0;
        let mut min_speed = f64::INFINITY;
        let mut max_speed: f64 = 0.0;
        for (v, n) in [
            (100.0, 16),
            (100.0, 32),
            (100.0, 64),
            (200.0, 16),
            (200.0, 32),
            (200.0, 64),
            (300.0, 16),
            (300.0, 32),
            (300.0, 64),
        ] {
            let c = cmp(v, 500.0, n);
            for (_, r) in c.energy_reduction {
                min_red = min_red.min(r);
                max_red = max_red.max(r);
            }
            min_speed = min_speed.min(c.time_speedup);
            max_speed = max_speed.max(c.time_speedup);
        }
        assert!((min_red - 1.6).abs() < 0.05, "min reduction {min_red}");
        assert!(
            (max_red - 376.1).abs() / 376.1 < 0.01,
            "max reduction {max_red}"
        );
        assert!(
            (min_speed - 114.8).abs() / 114.8 < 0.015,
            "min speedup {min_speed}"
        );
        assert!(
            (max_speed - 646.4).abs() / 646.4 < 0.015,
            "max speedup {max_speed}"
        );
    }

    #[test]
    fn dhl_beats_even_transceiver_only_baseline_everywhere() {
        // §V-B: "Across all configurations, DHL outperforms ... Option A0."
        for v in [100.0, 200.0, 300.0] {
            for n in [16, 32, 64] {
                let c = cmp(v, 500.0, n);
                assert!(
                    c.reduction_vs(RouteId::A0) > 1.0,
                    "{v} m/s / {n} SSDs: {}",
                    c.reduction_vs(RouteId::A0)
                );
            }
        }
    }

    #[test]
    fn reductions_are_monotone_in_route_cost() {
        let c = cmp(200.0, 500.0, 32);
        let vals: Vec<f64> = c.energy_reduction.iter().map(|(_, x)| *x).collect();
        for pair in vals.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn zero_dataset_is_free() {
        let t = BulkTransfer::evaluate(&DhlConfig::paper_default(), Bytes::ZERO);
        assert_eq!(t.deliveries, 0);
        assert_eq!(t.time.seconds(), 0.0);
        assert_eq!(t.energy, Joules::ZERO);
    }
}
