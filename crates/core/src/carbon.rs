//! Carbon-footprint accounting (§II-D.3).
//!
//! "This creates a strong argument for data centre architects to invest in
//! special data centre-scale solutions to reduce the carbon footprint of
//! training (both in terms of computation and data ingestion), potentially
//! creating big savings in energy bills." This module converts the energy
//! models into CO₂-equivalent emissions and electricity cost, so the
//! DHL-vs-network comparison can be stated in tonnes and dollars per year.

use serde::{Deserialize, Serialize};

use dhl_units::{Joules, Usd};

/// Grid carbon intensity and electricity price.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GridModel {
    /// kg CO₂e emitted per kWh drawn.
    pub kg_co2e_per_kwh: f64,
    /// Electricity price, USD per kWh.
    pub usd_per_kwh: f64,
}

impl GridModel {
    /// The 2023 US grid average: ≈ 0.39 kg CO₂e/kWh at ≈ $0.083/kWh
    /// (industrial rate).
    #[must_use]
    pub fn us_average() -> Self {
        Self {
            kg_co2e_per_kwh: 0.39,
            usd_per_kwh: 0.083,
        }
    }

    /// A low-carbon grid (hydro/nuclear heavy, e.g. Quebec or Norway).
    #[must_use]
    pub fn low_carbon() -> Self {
        Self {
            kg_co2e_per_kwh: 0.03,
            usd_per_kwh: 0.05,
        }
    }

    /// A coal-heavy grid.
    #[must_use]
    pub fn coal_heavy() -> Self {
        Self {
            kg_co2e_per_kwh: 0.82,
            usd_per_kwh: 0.09,
        }
    }

    /// Emissions for an energy draw, in kg CO₂e.
    #[must_use]
    pub fn emissions_kg(&self, energy: Joules) -> f64 {
        energy.value() / 3.6e6 * self.kg_co2e_per_kwh
    }

    /// Electricity cost for an energy draw.
    #[must_use]
    pub fn electricity_cost(&self, energy: Joules) -> Usd {
        Usd::new(energy.value() / 3.6e6 * self.usd_per_kwh)
    }
}

impl Default for GridModel {
    fn default() -> Self {
        Self::us_average()
    }
}

/// Annualised comparison of two communication substrates.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AnnualFootprint {
    /// Yearly energy of the baseline (network).
    pub baseline_energy: Joules,
    /// Yearly energy of the DHL alternative.
    pub dhl_energy: Joules,
    /// Yearly CO₂e avoided, kg.
    pub kg_co2e_saved: f64,
    /// Yearly electricity-bill saving.
    pub usd_saved: Usd,
}

/// Annualises a per-event energy pair over `events_per_year` occurrences
/// (e.g. daily backups ⇒ 365).
#[must_use]
pub fn annualise(
    grid: &GridModel,
    baseline_per_event: Joules,
    dhl_per_event: Joules,
    events_per_year: f64,
) -> AnnualFootprint {
    let baseline_energy = baseline_per_event * events_per_year;
    let dhl_energy = dhl_per_event * events_per_year;
    let saved = baseline_energy - dhl_energy;
    AnnualFootprint {
        baseline_energy,
        dhl_energy,
        kg_co2e_saved: grid.emissions_kg(saved),
        usd_saved: grid.electricity_cost(saved),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::{paper_dataset, BulkTransfer};
    use crate::config::DhlConfig;
    use dhl_net::route::Route;

    #[test]
    fn unit_conversions() {
        let grid = GridModel::us_average();
        // 1 kWh = 3.6 MJ.
        assert!((grid.emissions_kg(Joules::from_megajoules(3.6)) - 0.39).abs() < 1e-12);
        assert!(
            (grid.electricity_cost(Joules::from_megajoules(3.6)).value() - 0.083).abs() < 1e-12
        );
    }

    #[test]
    fn daily_29pb_on_route_c_saves_tonnes_per_year() {
        // Daily re-staging of the 29 PB dataset: route C burns 299.45 MJ a
        // day; the DHL 3.43 MJ.
        let grid = GridModel::us_average();
        let baseline = Route::c().transfer_energy(paper_dataset());
        let dhl = BulkTransfer::evaluate(&DhlConfig::paper_default(), paper_dataset()).energy;
        let year = annualise(&grid, baseline, dhl, 365.0);
        // ≈ 108 GJ saved ⇒ ≈ 11.7 t CO₂e and ≈ $2.5k of electricity.
        assert!(year.kg_co2e_saved > 10_000.0, "{}", year.kg_co2e_saved);
        assert!(year.kg_co2e_saved < 14_000.0, "{}", year.kg_co2e_saved);
        assert!(year.usd_saved.value() > 2_000.0 && year.usd_saved.value() < 3_000.0);
    }

    #[test]
    fn grid_choice_scales_emissions_not_energy() {
        let baseline = Joules::from_megajoules(100.0);
        let dhl = Joules::from_megajoules(1.0);
        let us = annualise(&GridModel::us_average(), baseline, dhl, 1.0);
        let coal = annualise(&GridModel::coal_heavy(), baseline, dhl, 1.0);
        let clean = annualise(&GridModel::low_carbon(), baseline, dhl, 1.0);
        assert_eq!(us.baseline_energy, coal.baseline_energy);
        assert!(coal.kg_co2e_saved > us.kg_co2e_saved);
        assert!(us.kg_co2e_saved > clean.kg_co2e_saved);
        let ratio = coal.kg_co2e_saved / clean.kg_co2e_saved;
        assert!((ratio - 0.82 / 0.03).abs() < 1e-9);
    }

    #[test]
    fn zero_events_zero_savings() {
        let year = annualise(
            &GridModel::us_average(),
            Joules::from_megajoules(10.0),
            Joules::from_megajoules(1.0),
            0.0,
        );
        assert_eq!(year.kg_co2e_saved, 0.0);
        assert_eq!(year.usd_saved.value(), 0.0);
    }

    #[test]
    fn negative_savings_possible_if_dhl_loses() {
        // Degenerate case: a "baseline" cheaper than the DHL reports a
        // negative saving rather than lying.
        let year = annualise(
            &GridModel::us_average(),
            Joules::from_megajoules(1.0),
            Joules::from_megajoules(10.0),
            1.0,
        );
        assert!(year.kg_co2e_saved < 0.0);
        assert!(year.usd_saved.value() < 0.0);
    }
}
