//! Parameter sensitivity analyses for the §V-A observations and the §II-A
//! scaling argument.
//!
//! Three sweeps the paper motivates but does not tabulate:
//!
//! - **Docking time** — "the docking/un-docking time has a huge impact on
//!   the total time to move DHL" (§V-A): trip time and embodied bandwidth
//!   vs the 3 s pessimistic assumption.
//! - **Acceleration rate** — "we can reduce DHL's peak power by adjusting
//!   the acceleration rate … slightly increasing acceleration time but
//!   reducing power" (§V-A note).
//! - **SSD density scaling** — "as storage density improves … DHLs will
//!   achieve higher embodied data transmission rates. We only need to
//!   upgrade the carts' SSDs and not the hyperloop itself" (§II-A).

use serde::{Deserialize, Serialize};

use dhl_physics::LinearInductionMotor;
use dhl_units::{Bytes, Metres, MetresPerSecondSquared, Seconds, Watts};

use crate::config::DhlConfig;
use crate::launch::LaunchMetrics;

/// One row of the docking-time sweep.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DockingSensitivityRow {
    /// Dock (= undock) time assumed.
    pub dock_time: Seconds,
    /// Resulting launch metrics.
    pub metrics: LaunchMetrics,
    /// Fraction of the trip spent docking.
    pub docking_fraction: f64,
}

/// Sweeps the dock/undock time from `times` over a base configuration.
#[must_use]
pub fn docking_time_sweep(base: &DhlConfig, times: &[Seconds]) -> Vec<DockingSensitivityRow> {
    times
        .iter()
        .map(|&t| {
            let mut cfg = base.clone();
            cfg.dock_time = t;
            cfg.undock_time = t;
            let metrics = LaunchMetrics::evaluate(&cfg);
            DockingSensitivityRow {
                dock_time: t,
                docking_fraction: (t.seconds() * 2.0) / metrics.trip_time.seconds(),
                metrics,
            }
        })
        .collect()
}

/// One row of the acceleration sweep.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AccelerationSensitivityRow {
    /// Acceleration rate assumed.
    pub acceleration: MetresPerSecondSquared,
    /// LIM length this rate requires.
    pub lim_length: Metres,
    /// Resulting launch metrics (peak power falls with the rate).
    pub metrics: LaunchMetrics,
}

/// Sweeps the LIM acceleration rate over a base configuration.
///
/// # Panics
///
/// Panics if a rate is so low the track cannot fit the ramps.
#[must_use]
pub fn acceleration_sweep(
    base: &DhlConfig,
    rates: &[MetresPerSecondSquared],
) -> Vec<AccelerationSensitivityRow> {
    rates
        .iter()
        .map(|&a| {
            let mut cfg = base.clone();
            cfg.lim = LinearInductionMotor::new(cfg.lim.efficiency(), a).expect("positive rate");
            let metrics = LaunchMetrics::evaluate(&cfg);
            AccelerationSensitivityRow {
                acceleration: a,
                lim_length: cfg.lim_length(),
                metrics,
            }
        })
        .collect()
}

/// One row of the SSD-density scaling projection.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DensityScalingRow {
    /// Capacity multiplier relative to today's 8 TB M.2 at the same mass.
    pub density_factor: f64,
    /// Cart capacity at that density.
    pub cart_capacity: Bytes,
    /// Resulting launch metrics — bandwidth and GB/J scale with density
    /// while energy, time and power stay fixed.
    pub metrics: LaunchMetrics,
}

/// Projects the default cart forward through NAND density scaling: same
/// cart mass and kinematics, `factor ×` the bytes.
#[must_use]
pub fn density_scaling(base: &DhlConfig, factors: &[f64]) -> Vec<DensityScalingRow> {
    factors
        .iter()
        .map(|&factor| {
            let mut cfg = base.clone();
            cfg.cart_capacity = Bytes::new((cfg.cart_capacity.as_f64() * factor).round() as u64);
            let metrics = LaunchMetrics::evaluate(&cfg);
            DensityScalingRow {
                density_factor: factor,
                cart_capacity: cfg.cart_capacity,
                metrics,
            }
        })
        .collect()
}

/// The §V-A peak-power observation quantified: the acceleration rate that
/// caps peak power at `limit` for a configuration (exact, from
/// `P = M·a·v/η`).
#[must_use]
pub fn acceleration_for_peak_power(cfg: &DhlConfig, limit: Watts) -> MetresPerSecondSquared {
    MetresPerSecondSquared::new(
        limit.value() * cfg.lim.efficiency() / (cfg.cart_mass.value() * cfg.max_speed.value()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhl_units::MetresPerSecond;

    #[test]
    fn docking_dominates_and_shrinking_it_pays() {
        let base = DhlConfig::paper_default();
        let rows = docking_time_sweep(&base, &[0.0, 1.0, 2.0, 3.0, 5.0].map(Seconds::new));
        // At the paper's 3 s, docking is ~70 % of the trip.
        let at3 = &rows[3];
        assert!((at3.docking_fraction - 6.0 / 8.6).abs() < 1e-9);
        // Zero docking collapses the trip to 2.6 s and triples bandwidth.
        assert!((rows[0].metrics.trip_time.seconds() - 2.6).abs() < 1e-9);
        assert!(rows[0].metrics.bandwidth.value() > 3.0 * at3.metrics.bandwidth.value());
        // Energy is untouched by docking time.
        for r in &rows {
            assert_eq!(r.metrics.energy, at3.metrics.energy);
        }
        // Bandwidth decreases monotonically with docking time.
        for pair in rows.windows(2) {
            assert!(pair[0].metrics.bandwidth > pair[1].metrics.bandwidth);
        }
    }

    #[test]
    fn halving_acceleration_halves_peak_power() {
        let base = DhlConfig::paper_default();
        let rows = acceleration_sweep(&base, &[500.0, 1000.0].map(MetresPerSecondSquared::new));
        let half = &rows[0];
        let full = &rows[1];
        assert!(
            (half.metrics.peak_power.value() / full.metrics.peak_power.value() - 0.5).abs() < 1e-12
        );
        // At the cost of a doubled LIM (40 m vs 20 m)...
        assert_eq!(half.lim_length.value(), 2.0 * full.lim_length.value());
        // ...a slightly longer trip...
        assert!(half.metrics.trip_time > full.metrics.trip_time);
        assert!(half.metrics.trip_time.seconds() - full.metrics.trip_time.seconds() < 0.2);
        // ...and identical energy.
        assert_eq!(half.metrics.energy, full.metrics.energy);
    }

    #[test]
    fn acceleration_for_peak_power_inverts_the_model() {
        let cfg = DhlConfig::paper_default();
        // Cap at half the default peak power → exactly half the rate.
        let limit = LaunchMetrics::evaluate(&cfg).peak_power * 0.5;
        let a = acceleration_for_peak_power(&cfg, limit);
        assert!((a.value() - 500.0).abs() < 1e-9, "{a:?}");
        let mut capped = cfg.clone();
        capped.lim = LinearInductionMotor::new(0.75, a).unwrap();
        let m = LaunchMetrics::evaluate(&capped);
        assert!((m.peak_power.value() - limit.value()).abs() < 1e-6);
        let _ = Watts::from_kilowatts(37.6);
    }

    #[test]
    fn density_scaling_boosts_bandwidth_and_efficiency_only() {
        let base = DhlConfig::paper_default();
        let rows = density_scaling(&base, &[1.0, 2.0, 4.0, 8.0]);
        let today = &rows[0];
        for (i, r) in rows.iter().enumerate() {
            let k = [1.0, 2.0, 4.0, 8.0][i];
            assert!((r.cart_capacity.terabytes() - 256.0 * k).abs() < 1e-6);
            // Same physics...
            assert_eq!(r.metrics.energy, today.metrics.energy);
            assert_eq!(r.metrics.trip_time, today.metrics.trip_time);
            assert_eq!(r.metrics.peak_power, today.metrics.peak_power);
            // ...k× the data rate and data-per-joule.
            assert!(
                (r.metrics.bandwidth.value() / today.metrics.bandwidth.value() - k).abs() < 1e-9
            );
            assert!(
                (r.metrics.efficiency.value() / today.metrics.efficiency.value() - k).abs() < 1e-9
            );
        }
        // An 8× density future: 2 PB carts at 238 TB/s embodied.
        let future = &rows[3];
        assert!(future.metrics.bandwidth.terabytes_per_second() > 230.0);
    }

    #[test]
    fn sweeps_accept_the_speed_variants() {
        for v in [100.0, 300.0] {
            let cfg = DhlConfig::with_ssd_count(MetresPerSecond::new(v), Metres::new(500.0), 32);
            assert_eq!(docking_time_sweep(&cfg, &[Seconds::new(3.0)]).len(), 1);
            assert_eq!(
                acceleration_sweep(&cfg, &[MetresPerSecondSquared::new(1000.0)]).len(),
                1
            );
        }
    }
}
