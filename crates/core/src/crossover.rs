//! Minimum specifications for DHL to outperform optical (§V-E).
//!
//! The 6 s docking overhead is unavoidable even for tiny transfers, so a DHL
//! only wins above a minimum dataset size. The paper's example: a DHL with
//! 360 GB carts at 10 m/s over 10 m completes a one-way transfer in ≈ 7.2 s
//! — the same time a single A0 optical link needs for 360 GB — while using
//! a minuscule amount of energy vs the link's ≈ 144–173 J.

use serde::{Deserialize, Serialize};

use dhl_net::route::Route;
use dhl_units::{Bytes, Joules, Kilograms, Metres, MetresPerSecond, Seconds};

use crate::config::DhlConfig;
use crate::launch::LaunchMetrics;

/// The §V-E example DHL: 360 GB cart, 10 m/s, 10 m, ~50 g cart.
#[must_use]
pub fn paper_minimal_dhl() -> DhlConfig {
    DhlConfig::with_custom_cart(
        MetresPerSecond::new(10.0),
        Metres::new(10.0),
        Bytes::from_gigabytes(360.0),
        // A 360 GB payload is well under one 8 TB M.2; the cart is
        // essentially frame + magnets + fin: ≈ 50 g.
        Kilograms::from_grams(50.0),
    )
}

/// Result of comparing a minimal DHL against a single optical link.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// One-way DHL transfer time for the cart.
    pub dhl_time: Seconds,
    /// DHL launch energy.
    pub dhl_energy: Joules,
    /// Dataset size at which a single A0 link needs exactly `dhl_time`.
    pub breakeven_dataset: Bytes,
    /// Energy the A0 link spends moving `breakeven_dataset`.
    pub optical_energy: Joules,
}

/// Computes the time-parity dataset size for a DHL configuration: the
/// payload at which one A0 optical link ties the DHL's one-way trip time.
/// Below it the link wins on latency; above it the DHL wins on both time
/// and (vastly) energy.
#[must_use]
pub fn crossover(cfg: &DhlConfig) -> CrossoverPoint {
    let m = LaunchMetrics::evaluate(cfg);
    let a0 = Route::a0();
    let rate = a0.line_rate().bytes_per_second();
    let breakeven = rate * m.trip_time;
    CrossoverPoint {
        dhl_time: m.trip_time,
        dhl_energy: m.energy,
        breakeven_dataset: breakeven,
        optical_energy: a0.power() * m.trip_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_minimal_dhl_takes_about_7_seconds() {
        // Paper: 7.2 s. Our kinematics give 6 + 10/10 + 10/(2·1000) ≈ 7.0 s
        // (the paper's 7.2 s corresponds to a slightly gentler ramp).
        let c = crossover(&paper_minimal_dhl());
        assert!((c.dhl_time.seconds() - 7.005).abs() < 0.001);
    }

    #[test]
    fn breakeven_dataset_is_about_360_gb() {
        // Paper: "DHL is desirable when transferring datasets of size at
        // least 360 GB over at least 10 metres." Our 7.005 s trip ties A0 at
        // 350 GB — within 3 % of the paper's 360 GB.
        let c = crossover(&paper_minimal_dhl());
        let gb = c.breakeven_dataset.gigabytes();
        assert!((gb - 350.25).abs() < 0.5, "got {gb}");
        assert!((gb - 360.0).abs() / 360.0 < 0.03);
    }

    #[test]
    fn optical_energy_at_breakeven_is_well_over_100_joules() {
        // Paper prints 144 J (24 W × 6 s); the full 7.2 s trip costs
        // 172.8 J. Ours: 24 W × 7.005 s = 168.1 J. Either way, orders of
        // magnitude above the DHL's launch energy.
        let c = crossover(&paper_minimal_dhl());
        assert!((c.optical_energy.value() - 168.1).abs() < 0.2);
        assert!(c.optical_energy.value() > 140.0);
    }

    #[test]
    fn dhl_energy_is_minuscule() {
        // ½·0.05 kg·(10 m/s)² / 0.75 × 2 = 6.7 J — vs 168 J for optical.
        let c = crossover(&paper_minimal_dhl());
        assert!((c.dhl_energy.value() - 6.667).abs() < 0.01);
        assert!(c.optical_energy.value() / c.dhl_energy.value() > 20.0);
    }

    #[test]
    fn above_breakeven_dhl_wins_both_time_and_energy() {
        let cfg = paper_minimal_dhl();
        let c = crossover(&cfg);
        let bigger = Bytes::new(c.breakeven_dataset.as_u64() * 2);
        // The cart holds 360 GB < 700 GB, but a single one-way trip moves
        // whatever fits; compare per-payload-byte rates instead: DHL time is
        // constant per trip while optical time doubles.
        let optical_time = Route::a0().transfer_time(bigger);
        assert!(optical_time.seconds() > c.dhl_time.seconds());
        let optical_energy = Route::a0().transfer_energy(bigger);
        assert!(optical_energy.value() > c.dhl_energy.value());
    }

    #[test]
    fn faster_minimal_dhl_lowers_the_breakeven() {
        // A quicker trip ties optical at a smaller dataset.
        let mut fast = paper_minimal_dhl();
        fast.max_speed = MetresPerSecond::new(20.0);
        // Halve docking too, since it dominates.
        fast.dock_time = Seconds::new(1.0);
        fast.undock_time = Seconds::new(1.0);
        let base = crossover(&paper_minimal_dhl());
        let quick = crossover(&fast);
        assert!(quick.breakeven_dataset < base.breakeven_dataset);
    }
}
