//! The DHL model configuration (Table V).

use serde::{Deserialize, Serialize};

use dhl_physics::{CartMassModel, LinearInductionMotor, PhysicsError, TimeModel};
use dhl_storage::devices::StorageDevice;
use dhl_units::{Bytes, Kilograms, Metres, MetresPerSecond, Seconds};

/// Parameters of one DHL design point (Table V; bold defaults).
///
/// # Examples
///
/// ```rust
/// use dhl_core::DhlConfig;
///
/// let cfg = DhlConfig::paper_default();
/// assert_eq!(cfg.max_speed.value(), 200.0);
/// assert_eq!(cfg.track_length.value(), 500.0);
/// assert_eq!(cfg.cart_capacity.terabytes(), 256.0);
/// assert!((cfg.cart_mass.grams() - 281.92).abs() < 0.01);
/// assert_eq!(cfg.lim_length().value(), 20.0);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DhlConfig {
    /// Maximum cart speed (Table V: 100 / **200** / 300 m/s).
    pub max_speed: MetresPerSecond,
    /// Distance between the two endpoints (Table V: 100 / **500** / 1000 m).
    pub track_length: Metres,
    /// Data stored per cart (Table V: 128 / **256** / 512 TB).
    pub cart_capacity: Bytes,
    /// Loaded cart mass (Table V: 161 / **282** / 524 g).
    pub cart_mass: Kilograms,
    /// Time to dock (Table V pessimistic: 3 s).
    pub dock_time: Seconds,
    /// Time to undock (Table V pessimistic: 3 s).
    pub undock_time: Seconds,
    /// The LIM: 75 % efficiency at 1000 m/s² (Table V).
    pub lim: LinearInductionMotor,
    /// Trip-time accounting (defaults to the paper-matching single ramp).
    pub time_model: TimeModel,
}

impl DhlConfig {
    /// The paper's bold Table V configuration: 200 m/s, 500 m, 32 × 8 TB
    /// SSDs (256 TB, 282 g).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::with_ssd_count(MetresPerSecond::new(200.0), Metres::new(500.0), 32)
    }

    /// A configuration whose cart carries `ssd_count` of the paper's 8 TB
    /// M.2 SSDs; capacity and mass follow from the Table II device and the
    /// §IV-A mass model.
    #[must_use]
    pub fn with_ssd_count(
        max_speed: MetresPerSecond,
        track_length: Metres,
        ssd_count: u32,
    ) -> Self {
        let device = StorageDevice::sabrent_rocket_4_plus();
        Self {
            max_speed,
            track_length,
            cart_capacity: device.capacity * u64::from(ssd_count),
            cart_mass: CartMassModel::paper_default().budget(ssd_count).total,
            dock_time: Seconds::new(3.0),
            undock_time: Seconds::new(3.0),
            lim: LinearInductionMotor::paper_default(),
            time_model: TimeModel::PaperSingleRamp,
        }
    }

    /// A fully custom cart (used e.g. by the §V-E crossover's 360 GB cart).
    #[must_use]
    pub fn with_custom_cart(
        max_speed: MetresPerSecond,
        track_length: Metres,
        cart_capacity: Bytes,
        cart_mass: Kilograms,
    ) -> Self {
        Self {
            max_speed,
            track_length,
            cart_capacity,
            cart_mass,
            dock_time: Seconds::new(3.0),
            undock_time: Seconds::new(3.0),
            lim: LinearInductionMotor::paper_default(),
            time_model: TimeModel::PaperSingleRamp,
        }
    }

    /// Validates physical sanity: positive speed/length/mass/capacity and a
    /// track long enough for the ramps.
    ///
    /// # Errors
    ///
    /// The first violated [`PhysicsError`].
    pub fn validate(&self) -> Result<(), PhysicsError> {
        for (what, value) in [
            ("max speed", self.max_speed.value()),
            ("track length", self.track_length.value()),
            ("cart mass", self.cart_mass.value()),
            ("cart capacity", self.cart_capacity.as_f64()),
        ] {
            if value.is_nan() || value <= 0.0 {
                return Err(PhysicsError::NonPositive { what, value });
            }
        }
        // The trip must fit acceleration and braking ramps.
        dhl_physics::TripKinematics::new(self.track_length, self.max_speed, self.lim.acceleration())
            .map(|_| ())
    }

    /// Length of the LIM needed for this speed (Table V: 5/20/45 m).
    #[must_use]
    pub fn lim_length(&self) -> Metres {
        self.lim.length_for(self.max_speed)
    }

    /// Total docking overhead per one-way trip (6 s by default).
    #[must_use]
    pub fn docking_overhead(&self) -> Seconds {
        self.dock_time + self.undock_time
    }
}

impl Default for DhlConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_defaults() {
        let cfg = DhlConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.docking_overhead().seconds(), 6.0);
        assert_eq!(cfg.lim.efficiency(), 0.75);
        assert_eq!(cfg.lim.acceleration().value(), 1000.0);
    }

    #[test]
    fn table_v_cart_variants() {
        for (n, tb, grams) in [
            (16, 128.0, 160.96),
            (32, 256.0, 281.92),
            (64, 512.0, 523.84),
        ] {
            let cfg = DhlConfig::with_ssd_count(MetresPerSecond::new(200.0), Metres::new(500.0), n);
            assert_eq!(cfg.cart_capacity.terabytes(), tb);
            assert!((cfg.cart_mass.grams() - grams).abs() < 0.01);
        }
    }

    #[test]
    fn table_v_lim_lengths() {
        for (v, l) in [(100.0, 5.0), (200.0, 20.0), (300.0, 45.0)] {
            let cfg = DhlConfig::with_ssd_count(MetresPerSecond::new(v), Metres::new(500.0), 32);
            assert_eq!(cfg.lim_length().value(), l);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = DhlConfig::paper_default();
        cfg.max_speed = MetresPerSecond::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = DhlConfig::paper_default();
        cfg.track_length = Metres::new(10.0); // can't fit 200 m/s ramps
        assert!(matches!(
            cfg.validate(),
            Err(PhysicsError::TrackTooShort { .. })
        ));

        let mut cfg = DhlConfig::paper_default();
        cfg.cart_mass = Kilograms::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn custom_cart_constructor() {
        let cfg = DhlConfig::with_custom_cart(
            MetresPerSecond::new(10.0),
            Metres::new(10.0),
            Bytes::from_gigabytes(360.0),
            Kilograms::from_grams(50.0),
        );
        cfg.validate().unwrap();
        assert_eq!(cfg.cart_capacity.gigabytes(), 360.0);
    }
}
