//! Single-launch metrics (Table VI, left half).

use serde::{Deserialize, Serialize};

use dhl_physics::TripKinematics;
use dhl_units::{BytesPerSecond, GigabytesPerJoule, Joules, Seconds, Watts};

use crate::config::DhlConfig;

/// The five §IV-D metrics for a single cart launch between two endpoints.
///
/// # Examples
///
/// The paper's default row of Table VI (200 m/s, 500 m, 256 TB):
///
/// ```rust
/// use dhl_core::{DhlConfig, LaunchMetrics};
///
/// let m = LaunchMetrics::evaluate(&DhlConfig::paper_default());
/// assert!((m.energy.kilojoules() - 15.04).abs() < 0.01);   // table: 15
/// assert!((m.trip_time.seconds() - 8.6).abs() < 1e-9);     // table: 8.6
/// assert!((m.efficiency.value() - 17.0).abs() < 0.1);      // table: 17
/// assert!((m.bandwidth.terabytes_per_second() - 29.8).abs() < 0.1); // table: 30
/// assert!((m.peak_power.kilowatts() - 75.2).abs() < 0.1);  // table: 75
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LaunchMetrics {
    /// Energy to launch **and** decelerate the cart (both LIM-costed).
    pub energy: Joules,
    /// Data moved per unit energy.
    pub efficiency: GigabytesPerJoule,
    /// Un-dock + motion + dock time.
    pub trip_time: Seconds,
    /// Embodied bandwidth: capacity ÷ trip time (no pipelining).
    pub bandwidth: BytesPerSecond,
    /// Peak electrical power during the acceleration ramp.
    pub peak_power: Watts,
}

impl LaunchMetrics {
    /// Evaluates the analytical model at a design point.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (callers should
    /// [`DhlConfig::validate`] untrusted inputs first).
    #[must_use]
    pub fn evaluate(cfg: &DhlConfig) -> Self {
        cfg.validate().expect("invalid DhlConfig");
        let kin = TripKinematics::new(cfg.track_length, cfg.max_speed, cfg.lim.acceleration())
            .expect("validated");
        let motion = kin.motion_time(cfg.time_model);
        let trip_time = cfg.docking_overhead() + motion;

        // §V-A: acceleration and (pessimistically equal) deceleration
        // dominate; drag and stabilisation are negligible and excluded, as
        // in the paper.
        let energy = cfg.lim.accel_energy(cfg.cart_mass, cfg.max_speed)
            + cfg.lim.decel_energy(cfg.cart_mass, cfg.max_speed);

        Self {
            energy,
            efficiency: cfg.cart_capacity / energy,
            trip_time,
            bandwidth: cfg.cart_capacity / trip_time,
            peak_power: cfg.lim.peak_power(cfg.cart_mass, cfg.max_speed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhl_units::{Metres, MetresPerSecond};

    fn eval(speed: f64, length: f64, ssds: u32) -> LaunchMetrics {
        LaunchMetrics::evaluate(&DhlConfig::with_ssd_count(
            MetresPerSecond::new(speed),
            Metres::new(length),
            ssds,
        ))
    }

    /// Every row of Table VI's "Metrics for a single launch" block, checked
    /// against the paper's printed (rounded) values.
    #[test]
    fn table_vi_left_all_rows() {
        // (speed, length, ssds, energy kJ, eff GB/J, time s, bw TB/s, power kW)
        type Row = (f64, f64, u32, f64, f64, f64, f64, f64);
        let rows: [Row; 13] = [
            (100.0, 500.0, 32, 3.7, 68.0, 11.0, 23.0, 38.0),
            (200.0, 500.0, 32, 15.0, 17.0, 8.6, 30.0, 75.0),
            (300.0, 500.0, 32, 34.0, 7.6, 7.8, 33.0, 113.0),
            (200.0, 100.0, 32, 15.0, 17.0, 6.6, 39.0, 75.0),
            (200.0, 500.0, 32, 15.0, 17.0, 8.6, 30.0, 75.0),
            (200.0, 1000.0, 32, 15.0, 17.0, 11.0, 23.0, 75.0),
            (200.0, 500.0, 16, 8.6, 15.0, 8.6, 15.0, 43.0),
            (200.0, 500.0, 32, 15.0, 17.0, 8.6, 30.0, 75.0),
            (200.0, 500.0, 64, 28.0, 18.0, 8.6, 60.0, 140.0),
            (100.0, 500.0, 16, 2.1, 60.0, 11.0, 12.0, 22.0),
            (100.0, 500.0, 64, 7.0, 73.0, 11.0, 46.0, 70.0),
            (300.0, 500.0, 16, 19.0, 6.6, 7.8, 16.0, 64.0),
            (300.0, 500.0, 64, 63.0, 8.0, 7.8, 66.0, 210.0),
        ];
        for (v, l, n, kj, eff, t, bw, kw) in rows {
            let m = eval(v, l, n);
            let tol = |x: f64| (x * 0.04).max(0.06); // printed values are 2-sig-fig rounded
            assert!(
                (m.energy.kilojoules() - kj).abs() < tol(kj),
                "{v}/{l}/{n}: energy {} vs {kj}",
                m.energy.kilojoules()
            );
            assert!(
                (m.efficiency.value() - eff).abs() < tol(eff),
                "{v}/{l}/{n}: efficiency {} vs {eff}",
                m.efficiency.value()
            );
            assert!(
                (m.trip_time.seconds() - t).abs() < tol(t),
                "{v}/{l}/{n}: time {} vs {t}",
                m.trip_time.seconds()
            );
            assert!(
                (m.bandwidth.terabytes_per_second() - bw).abs() < tol(bw),
                "{v}/{l}/{n}: bandwidth {} vs {bw}",
                m.bandwidth.terabytes_per_second()
            );
            assert!(
                (m.peak_power.kilowatts() - kw).abs() < tol(kw),
                "{v}/{l}/{n}: power {} vs {kw}",
                m.peak_power.kilowatts()
            );
        }
    }

    #[test]
    fn abstract_headline_efficiency() {
        // "improved embodied data transmission power efficiency of up to
        // 73.3 GB/J" — the 100 m/s, 512 TB configuration.
        let m = eval(100.0, 500.0, 64);
        assert!((m.efficiency.value() - 73.28).abs() < 0.05);
    }

    #[test]
    fn energy_does_not_depend_on_track_length() {
        let short = eval(200.0, 100.0, 32);
        let long = eval(200.0, 1000.0, 32);
        assert_eq!(short.energy, long.energy);
        assert_eq!(short.peak_power, long.peak_power);
        assert!(short.trip_time < long.trip_time);
    }

    #[test]
    fn observation_b_doubling_data_costs_less_than_double() {
        // §V-A observation (b): 8.6 → 15 → 28 kJ for 128 → 256 → 512 TB.
        let e128 = eval(200.0, 500.0, 16).energy.kilojoules();
        let e256 = eval(200.0, 500.0, 32).energy.kilojoules();
        let e512 = eval(200.0, 500.0, 64).energy.kilojoules();
        assert!(e256 / e128 < 2.0);
        assert!(e512 / e256 < 2.0);
    }

    #[test]
    fn bandwidth_is_300_to_1200x_fibre() {
        // §V-A: 15–60 TB/s is 300×–1200× faster than a 50 GB/s fibre link.
        let fibre_gbps = 50.0e9;
        let low = eval(200.0, 500.0, 16).bandwidth.value() / fibre_gbps;
        let high = eval(200.0, 500.0, 64).bandwidth.value() / fibre_gbps;
        assert!(low >= 295.0, "low {low}");
        assert!((1150.0..=1250.0).contains(&high), "high {high}");
    }

    #[test]
    fn docking_dominates_trip_time_at_default() {
        // §V-A observation (a): docking/undocking has a huge impact — 6 s of
        // the 8.6 s trip.
        let m = eval(200.0, 500.0, 32);
        let dock_fraction = 6.0 / m.trip_time.seconds();
        assert!(dock_fraction > 0.65);
    }

    #[test]
    #[should_panic(expected = "invalid DhlConfig")]
    fn panics_on_invalid_config() {
        let mut cfg = DhlConfig::paper_default();
        cfg.track_length = Metres::new(1.0);
        let _ = LaunchMetrics::evaluate(&cfg);
    }
}
