//! Design-space exploration driver (§V-A, Table VI).

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, Metres, MetresPerSecond};

use crate::bulk::{paper_dataset, BulkComparison};
use crate::config::DhlConfig;
use crate::launch::LaunchMetrics;

/// One evaluated design point: parameters, single-launch metrics, and the
/// bulk-transfer comparison.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DsePoint {
    /// The design point's parameters.
    pub config: DhlConfig,
    /// Table VI's left half for this point.
    pub launch: LaunchMetrics,
    /// Table VI's right half for this point.
    pub comparison: BulkComparison,
}

impl DsePoint {
    /// Evaluates one design point against `dataset`.
    #[must_use]
    pub fn evaluate(config: DhlConfig, dataset: Bytes) -> Self {
        let launch = LaunchMetrics::evaluate(&config);
        let comparison = BulkComparison::evaluate(&config, dataset);
        Self {
            config,
            launch,
            comparison,
        }
    }
}

/// The exact 13 `(speed, length, ssd-count)` rows of Table VI, in paper
/// order.
pub const TABLE_VI_ROWS: [(f64, f64, u32); 13] = [
    (100.0, 500.0, 32),
    (200.0, 500.0, 32),
    (300.0, 500.0, 32),
    (200.0, 100.0, 32),
    (200.0, 500.0, 32),
    (200.0, 1000.0, 32),
    (200.0, 500.0, 16),
    (200.0, 500.0, 32),
    (200.0, 500.0, 64),
    (100.0, 500.0, 16),
    (100.0, 500.0, 64),
    (300.0, 500.0, 16),
    (300.0, 500.0, 64),
];

/// Evaluates the 13 Table VI rows against the paper's 29 PB dataset.
#[must_use]
pub fn paper_table_vi() -> Vec<DsePoint> {
    TABLE_VI_ROWS
        .iter()
        .map(|&(v, l, n)| {
            DsePoint::evaluate(
                DhlConfig::with_ssd_count(MetresPerSecond::new(v), Metres::new(l), n),
                paper_dataset(),
            )
        })
        .collect()
}

/// Evaluates the full cartesian product of the given parameter lists
/// against `dataset`, in row-major (speed-outermost) order.
#[must_use]
pub fn sweep(
    speeds: &[MetresPerSecond],
    lengths: &[Metres],
    ssd_counts: &[u32],
    dataset: Bytes,
) -> Vec<DsePoint> {
    let mut out = Vec::with_capacity(speeds.len() * lengths.len() * ssd_counts.len());
    for &v in speeds {
        for &l in lengths {
            for &n in ssd_counts {
                out.push(DsePoint::evaluate(
                    DhlConfig::with_ssd_count(v, l, n),
                    dataset,
                ));
            }
        }
    }
    out
}

/// Splits `items` into `threads` contiguous chunks and maps each chunk on
/// its own scoped thread. Output order matches input order; with
/// `threads <= 1` the map runs inline on the caller's thread.
///
/// (Same chunked-scope shape as `dhl_sim::parallel_map`; duplicated here
/// because `dhl-core` and `dhl-sim` deliberately do not depend on each
/// other.)
fn chunked_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<U>> = std::iter::repeat_with(|| None).take(slots.len()).collect();

    std::thread::scope(|scope| {
        for (out_chunk, in_chunk) in out.chunks_mut(chunk).zip(slots.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item.take().expect("item present")));
                }
            });
        }
    });

    out.into_iter()
        .map(|p| p.expect("all slots filled"))
        .collect()
}

/// The thread count [`sweep_auto`] uses: the `DHL_SIM_THREADS` environment
/// variable if set to a positive integer, otherwise the machine's available
/// parallelism.
#[must_use]
pub fn auto_threads() -> usize {
    if let Ok(v) = std::env::var("DHL_SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parallel variant of [`sweep`] for large grids: splits the cartesian
/// product across threads with `std::thread::scope`. Result order matches
/// [`sweep`] exactly for any thread count.
#[must_use]
pub fn sweep_parallel(
    speeds: &[MetresPerSecond],
    lengths: &[Metres],
    ssd_counts: &[u32],
    dataset: Bytes,
    threads: usize,
) -> Vec<DsePoint> {
    let points: Vec<(MetresPerSecond, Metres, u32)> = speeds
        .iter()
        .flat_map(|&v| {
            lengths
                .iter()
                .flat_map(move |&l| ssd_counts.iter().map(move |&n| (v, l, n)))
        })
        .collect();
    chunked_map(points, threads, |(v, l, n)| {
        DsePoint::evaluate(DhlConfig::with_ssd_count(v, l, n), dataset)
    })
}

/// [`sweep_parallel`] with the ambient thread count ([`auto_threads`]).
#[must_use]
pub fn sweep_auto(
    speeds: &[MetresPerSecond],
    lengths: &[Metres],
    ssd_counts: &[u32],
    dataset: Bytes,
) -> Vec<DsePoint> {
    sweep_parallel(speeds, lengths, ssd_counts, dataset, auto_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_13_rows() {
        let rows = paper_table_vi();
        assert_eq!(rows.len(), 13);
        // Row 2 (index 1) is the bold default.
        assert!((rows[1].launch.energy.kilojoules() - 15.04).abs() < 0.01);
        assert!((rows[1].comparison.time_speedup - 295.8).abs() < 1.0);
    }

    #[test]
    fn sweep_covers_cartesian_product_in_order() {
        let speeds = [MetresPerSecond::new(100.0), MetresPerSecond::new(200.0)];
        let lengths = [Metres::new(500.0), Metres::new(1000.0)];
        let counts = [16, 32, 64];
        let points = sweep(&speeds, &lengths, &counts, paper_dataset());
        assert_eq!(points.len(), 12);
        assert_eq!(points[0].config.max_speed.value(), 100.0);
        assert_eq!(points[0].config.cart_capacity.terabytes(), 128.0);
        assert_eq!(points[11].config.max_speed.value(), 200.0);
        assert_eq!(points[11].config.track_length.value(), 1000.0);
        assert_eq!(points[11].config.cart_capacity.terabytes(), 512.0);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let speeds: Vec<MetresPerSecond> = (10..30)
            .map(|v| MetresPerSecond::new(v as f64 * 10.0))
            .collect();
        let lengths = [Metres::new(500.0), Metres::new(1000.0)];
        let counts = [16, 32];
        let serial = sweep(&speeds, &lengths, &counts, paper_dataset());
        for threads in [1, 2, 4, 16, 1000] {
            let parallel = sweep_parallel(&speeds, &lengths, &counts, paper_dataset(), threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(sweep(&[], &[], &[], paper_dataset()).is_empty());
        assert!(sweep_parallel(&[], &[], &[], paper_dataset(), 4).is_empty());
        assert!(sweep_auto(&[], &[], &[], paper_dataset()).is_empty());
    }

    #[test]
    fn auto_sweep_matches_serial() {
        let speeds = [MetresPerSecond::new(100.0), MetresPerSecond::new(200.0)];
        let lengths = [Metres::new(500.0), Metres::new(1000.0)];
        let counts = [16, 32];
        assert_eq!(
            sweep_auto(&speeds, &lengths, &counts, paper_dataset()),
            sweep(&speeds, &lengths, &counts, paper_dataset()),
        );
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn speed_monotonically_trades_energy_for_time() {
        // Along the speed axis at fixed length/capacity: faster = more
        // energy, less time.
        let speeds: Vec<MetresPerSecond> = [100.0, 150.0, 200.0, 250.0, 300.0]
            .map(MetresPerSecond::new)
            .into();
        let points = sweep(&speeds, &[Metres::new(500.0)], &[32], paper_dataset());
        for pair in points.windows(2) {
            assert!(pair[0].launch.energy < pair[1].launch.energy);
            assert!(pair[0].launch.trip_time > pair[1].launch.trip_time);
        }
    }
}
