//! Commodity cost model (§V-D, Table VIII; May 2023 prices).

use serde::{Deserialize, Serialize};

use dhl_units::{Metres, MetresPerSecond, Usd};

/// Unit prices and per-unit masses behind Table VIII.
///
/// # Examples
///
/// ```rust
/// use dhl_core::cost::CostModel;
/// use dhl_units::{Metres, MetresPerSecond};
///
/// let model = CostModel::paper();
/// let total = model.total_cost(Metres::new(500.0), MetresPerSecond::new(200.0));
/// assert_eq!(total.display_dollars(), "$14,569"); // Table VIII (c)
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Aluminium price, USD/kg.
    pub aluminium_usd_per_kg: f64,
    /// PVC price, USD/kg.
    pub pvc_usd_per_kg: f64,
    /// Copper wire price, USD/kg.
    pub copper_usd_per_kg: f64,
    /// Mass of one levitation ring, kg (§V-D: ≈ 3.62 g each).
    pub ring_mass_kg: f64,
    /// Levitation rings per metre of rail (derived from Table VIII (a):
    /// $117 of aluminium per 100 m at $2.35/kg ⇒ 497.9 g/m ⇒ 137.5 rings/m
    /// across both rails).
    pub rings_per_metre: f64,
    /// PVC rail mass per metre, kg (Table VIII (a): $116 / 100 m ⇒
    /// 0.967 kg/m).
    pub rail_pvc_kg_per_metre: f64,
    /// PVC vacuum-tube mass per metre, kg (Table VIII (a): $500 / 100 m ⇒
    /// 4.167 kg/m).
    pub tube_pvc_kg_per_metre: f64,
    /// Variable-frequency drive price (flat, Table VIII (b)).
    pub vfd_usd: f64,
}

/// Itemised rail cost (Table VIII (a)).
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RailCost {
    /// Aluminium levitation rings.
    pub aluminium: Usd,
    /// PVC rail structure.
    pub pvc_rail: Usd,
    /// PVC vacuum tube.
    pub pvc_tube: Usd,
}

impl RailCost {
    /// Sum of all rail items.
    #[must_use]
    pub fn total(&self) -> Usd {
        self.aluminium + self.pvc_rail + self.pvc_tube
    }
}

/// Itemised accelerator/decelerator cost (Table VIII (b)).
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LimCost {
    /// Current-carrying copper coils.
    pub copper: Usd,
    /// The variable-frequency drive.
    pub vfd: Usd,
}

impl LimCost {
    /// Sum of the LIM items.
    #[must_use]
    pub fn total(&self) -> Usd {
        self.copper + self.vfd
    }
}

impl CostModel {
    /// The paper's May 2023 commodity prices.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            aluminium_usd_per_kg: 2.35,
            pvc_usd_per_kg: 1.20,
            copper_usd_per_kg: 8.58,
            ring_mass_kg: 3.62e-3,
            rings_per_metre: 117.0 / (2.35 * 3.62e-3) / 100.0, // ⇒ $117/100 m
            rail_pvc_kg_per_metre: 116.0 / 1.20 / 100.0,       // ⇒ $116/100 m
            tube_pvc_kg_per_metre: 500.0 / 1.20 / 100.0,       // ⇒ $500/100 m
            vfd_usd: 8_000.0,
        }
    }

    /// Copper coil mass for a LIM rated to a given top speed.
    ///
    /// Calibrated from Table VIII (b): $792 / $2 904 / $6 512 of copper at
    /// $8.58/kg for 100 / 200 / 300 m/s (masses 92.3 / 338.5 / 759.0 kg —
    /// roughly 17 kg per metre of LIM plus end-winding overhead). Values
    /// between the paper's anchors are linearly interpolated; outside them,
    /// extrapolated from the nearest segment.
    #[must_use]
    pub fn copper_coil_mass_kg(&self, speed: MetresPerSecond) -> f64 {
        const ANCHORS: [(f64, f64); 3] = [(100.0, 92.3077), (200.0, 338.4615), (300.0, 758.9744)];
        let v = speed.value();
        let seg = if v <= ANCHORS[1].0 {
            (ANCHORS[0], ANCHORS[1])
        } else {
            (ANCHORS[1], ANCHORS[2])
        };
        let ((v0, m0), (v1, m1)) = seg;
        let t = (v - v0) / (v1 - v0);
        (m0 + t * (m1 - m0)).max(0.0)
    }

    /// Itemised rail cost over a distance (Table VIII (a)).
    #[must_use]
    pub fn rail_cost(&self, distance: Metres) -> RailCost {
        let d = distance.value();
        let aluminium_kg = self.rings_per_metre * self.ring_mass_kg * d;
        RailCost {
            aluminium: Usd::new(aluminium_kg * self.aluminium_usd_per_kg),
            pvc_rail: Usd::new(self.rail_pvc_kg_per_metre * d * self.pvc_usd_per_kg),
            pvc_tube: Usd::new(self.tube_pvc_kg_per_metre * d * self.pvc_usd_per_kg),
        }
    }

    /// Itemised accelerator cost for a top speed (Table VIII (b)).
    #[must_use]
    pub fn lim_cost(&self, speed: MetresPerSecond) -> LimCost {
        LimCost {
            copper: Usd::new(self.copper_coil_mass_kg(speed) * self.copper_usd_per_kg),
            vfd: Usd::new(self.vfd_usd),
        }
    }

    /// Overall cost of a DHL (Table VIII (c)): rail + one LIM assembly, as
    /// the paper's total column sums.
    #[must_use]
    pub fn total_cost(&self, distance: Metres, speed: MetresPerSecond) -> Usd {
        self.rail_cost(distance).total() + self.lim_cost(speed).total()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: Usd, want: f64) -> bool {
        (got.value() - want).abs() <= want * 0.005 + 1.0
    }

    #[test]
    fn table_viii_a_rail_costs() {
        let m = CostModel::paper();
        for (d, alu, rail, tube, total) in [
            (100.0, 117.0, 116.0, 500.0, 733.0),
            (500.0, 585.0, 580.0, 2_500.0, 3_665.0),
            (1000.0, 1_170.0, 1_160.0, 5_000.0, 7_330.0),
        ] {
            let c = m.rail_cost(Metres::new(d));
            assert!(close(c.aluminium, alu), "{d} m aluminium: {}", c.aluminium);
            assert!(close(c.pvc_rail, rail), "{d} m rail: {}", c.pvc_rail);
            assert!(close(c.pvc_tube, tube), "{d} m tube: {}", c.pvc_tube);
            assert!(close(c.total(), total), "{d} m total: {}", c.total());
        }
    }

    #[test]
    fn table_viii_b_lim_costs() {
        let m = CostModel::paper();
        for (v, copper, total) in [
            (100.0, 792.0, 8_792.0),
            (200.0, 2_904.0, 10_904.0),
            (300.0, 6_512.0, 14_512.0),
        ] {
            let c = m.lim_cost(MetresPerSecond::new(v));
            assert!(close(c.copper, copper), "{v} m/s copper: {}", c.copper);
            assert!(close(c.total(), total), "{v} m/s total: {}", c.total());
        }
    }

    #[test]
    fn table_viii_c_grid() {
        let m = CostModel::paper();
        let grid = [
            (100.0, 100.0, 9_525.0),
            (100.0, 200.0, 11_637.0),
            (100.0, 300.0, 15_245.0),
            (500.0, 100.0, 12_457.0),
            (500.0, 200.0, 14_569.0),
            (500.0, 300.0, 18_177.0),
            (1000.0, 100.0, 16_122.0),
            (1000.0, 200.0, 18_234.0),
            (1000.0, 300.0, 21_842.0),
        ];
        for (d, v, want) in grid {
            let got = m.total_cost(Metres::new(d), MetresPerSecond::new(v));
            assert!(close(got, want), "{d} m / {v} m/s: {got} vs {want}");
        }
    }

    #[test]
    fn dhl_costs_about_as_much_as_a_big_switch() {
        // §V-D: "roughly twenty thousand dollars, which is a typical price
        // for a large 400gbps switch".
        let m = CostModel::paper();
        let typical = m.total_cost(Metres::new(1000.0), MetresPerSecond::new(300.0));
        assert!(typical.value() > 15_000.0 && typical.value() < 25_000.0);
    }

    #[test]
    fn interpolation_between_anchors_is_monotone() {
        let m = CostModel::paper();
        let mut prev = 0.0;
        for v in (100..=300).step_by(10) {
            let mass = m.copper_coil_mass_kg(MetresPerSecond::new(v as f64));
            assert!(mass > prev, "{v}: {mass}");
            prev = mass;
        }
    }

    #[test]
    fn display_matches_paper_formatting() {
        let m = CostModel::paper();
        assert_eq!(
            m.total_cost(Metres::new(500.0), MetresPerSecond::new(200.0))
                .display_dollars(),
            "$14,569"
        );
        assert_eq!(
            m.total_cost(Metres::new(100.0), MetresPerSecond::new(100.0))
                .display_dollars(),
            "$9,525"
        );
    }
}
