//! The paper's primary contribution as a library: the DHL analytical model.
//!
//! - [`DhlConfig`]: a Table V design point (speed, length, cart, LIM,
//!   docking times);
//! - [`LaunchMetrics`]: the §IV-D single-launch metrics — energy, time,
//!   embodied bandwidth, peak power, GB/J efficiency (Table VI left);
//! - [`BulkTransfer`] / [`BulkComparison`]: moving a whole dataset and
//!   comparing against the optical routes A0–C (Table VI right);
//! - [`dse`]: the design-space exploration driver (serial and parallel);
//! - [`cost`]: the Table VIII commodity cost model;
//! - [`crossover`](mod@crossover): the §V-E minimum-specification analysis.
//!
//! # Quickstart
//!
//! ```rust
//! use dhl_core::{BulkComparison, DhlConfig};
//! use dhl_net::route::RouteId;
//! use dhl_units::Bytes;
//!
//! let cfg = DhlConfig::paper_default();
//! let cmp = BulkComparison::evaluate(&cfg, Bytes::from_petabytes(29.0));
//! // Table VI: the default DHL moves 29 PB ~295× faster than one 400 Gb/s
//! // link and ~88× more efficiently than the cross-aisle route C.
//! assert!(cmp.time_speedup > 290.0);
//! assert!(cmp.reduction_vs(RouteId::C) > 85.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod carbon;
pub mod config;
pub mod cost;
pub mod crossover;
pub mod dse;
pub mod fleet;
pub mod launch;
pub mod sensitivity;

pub use bulk::{paper_dataset, BulkComparison, BulkTransfer};
pub use carbon::{annualise, AnnualFootprint, GridModel};
pub use config::DhlConfig;
pub use cost::CostModel;
pub use crossover::{crossover, paper_minimal_dhl, CrossoverPoint};
pub use dse::{
    auto_threads, paper_table_vi, sweep, sweep_auto, sweep_parallel, DsePoint, TABLE_VI_ROWS,
};
pub use fleet::{per_track_rate, plan_for_bandwidth, CartCostModel, FleetPlan, PipelineModel};
pub use launch::LaunchMetrics;
pub use sensitivity::{
    acceleration_for_peak_power, acceleration_sweep, density_scaling, docking_time_sweep,
};
