//! Deterministic random numbers for the DHL simulators.
//!
//! The simulators promise *bit-for-bit replayable* runs: the same seed must
//! produce the same failure injections on every platform and every release.
//! `rand`'s `StdRng` explicitly does not guarantee cross-version stream
//! stability (and is unavailable in the offline build), so the workspace
//! owns its generator: [`DeterministicRng`], an xoshiro256++ generator
//! seeded through SplitMix64, exactly as recommended by the xoshiro
//! authors. The [`check`] module layers a tiny property-test harness on top
//! so the crates' randomized tests stay dependency-free too.
//!
//! # Examples
//!
//! ```rust
//! use dhl_rng::{DeterministicRng, Rng};
//!
//! let mut a = DeterministicRng::seed_from_u64(7);
//! let mut b = DeterministicRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // identical streams
//! assert!((0.0..1.0).contains(&a.random_f64()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;

/// Sampling operations over a raw `u64` stream.
///
/// The single required method is [`Rng::next_u64`]; everything else is
/// derived from it, so any generator (or test double) can plug in.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.random_f64() < p
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn random_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift bounded sampling (Lemire); the tiny modulo bias of
        // the plain widening multiply is irrelevant for simulation use.
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo + (wide >> 64) as u64
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-finite.
    fn random_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + self.random_f64() * (hi - lo)
    }
}

/// The workspace's deterministic generator: xoshiro256++ seeded via
/// SplitMix64. Streams are stable across platforms and releases.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Expands a 64-bit seed into the full 256-bit state with SplitMix64
    /// (the xoshiro authors' recommended seeding procedure).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// A child generator whose stream is independent of (but determined by)
    /// this one — for giving each test case or subsystem its own stream.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// The generator's full 256-bit internal state, for checkpointing. A
    /// generator rebuilt with [`DeterministicRng::from_state`] continues the
    /// exact stream this one would have produced.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously exported [`state`]. This is a
    /// resume primitive, not a seeding procedure — use
    /// [`DeterministicRng::seed_from_u64`] for fresh streams (an all-zero
    /// state would be a fixed point of xoshiro256++, so it is nudged to the
    /// SplitMix64 expansion of seed 0).
    ///
    /// [`state`]: DeterministicRng::state
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s: state }
    }
}

impl Rng for DeterministicRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed_from_u64(42);
        let mut b = DeterministicRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::seed_from_u64(1);
        let mut b = DeterministicRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = DeterministicRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x), "got {x}");
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = DeterministicRng::seed_from_u64(7);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(-3.0));
        assert!(rng.random_bool(2.0));
    }

    #[test]
    fn bernoulli_rate_roughly_matches_p() {
        let mut rng = DeterministicRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "got {rate}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = DeterministicRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let n = rng.random_range_u64(10, 20);
            assert!((10..20).contains(&n));
            let x = rng.random_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent_a = DeterministicRng::seed_from_u64(5);
        let mut parent_b = DeterministicRng::seed_from_u64(5);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        assert_eq!(child_a.next_u64(), child_b.next_u64());
        assert_ne!(child_a.next_u64(), parent_a.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_integer_range_panics() {
        DeterministicRng::seed_from_u64(0).random_range_u64(5, 5);
    }

    #[test]
    fn state_export_import_resumes_the_exact_stream() {
        let mut original = DeterministicRng::seed_from_u64(0xD41);
        for _ in 0..173 {
            original.next_u64(); // advance mid-stream
        }
        let snapshot = original.state();
        let mut resumed = DeterministicRng::from_state(snapshot);
        assert_eq!(resumed, original);
        for _ in 0..1000 {
            assert_eq!(resumed.next_u64(), original.next_u64());
        }
        // Export/import round-trips at any point, including before any draw.
        let fresh = DeterministicRng::seed_from_u64(9);
        assert_eq!(DeterministicRng::from_state(fresh.state()), fresh);
    }

    #[test]
    fn all_zero_state_is_rejected_as_a_fixed_point() {
        let mut rng = DeterministicRng::from_state([0; 4]);
        assert_eq!(rng, DeterministicRng::seed_from_u64(0));
        assert_ne!(rng.next_u64(), 0); // actually produces entropy
    }
}
