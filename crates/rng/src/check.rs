//! A tiny deterministic property-test harness.
//!
//! Stands in for `proptest` in the offline build: [`forall`] runs a closure
//! over `cases` independently-seeded [`Gen`]s, and on failure reports the
//! case index and seed so the exact inputs can be replayed by re-running
//! the test (the harness is fully deterministic — no time- or
//! pointer-derived entropy). There is no shrinking; generators should keep
//! ranges tight instead.
//!
//! # Examples
//!
//! ```rust
//! use dhl_rng::check::forall;
//!
//! forall("addition commutes", 64, |g| {
//!     let (a, b) = (g.f64_in(0.0, 1e6), g.f64_in(0.0, 1e6));
//!     assert!((a + b - (b + a)).abs() == 0.0);
//! });
//! ```

use crate::{DeterministicRng, Rng};

/// Per-case input generator handed to [`forall`] closures.
#[derive(Debug)]
pub struct Gen {
    rng: DeterministicRng,
}

impl Gen {
    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range_f64(lo, hi)
    }

    /// A uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.random_range_u64(lo, hi)
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.random_range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.random_range_u64(lo as u64, hi as u64) as usize
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random_bool(0.5)
    }

    /// Direct access to the underlying generator for bespoke sampling.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        &mut self.rng
    }
}

/// Derives a stable 64-bit seed from a property name (FNV-1a), so each
/// property gets its own input stream without manual seed bookkeeping.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `property` over `cases` deterministic input generators.
///
/// # Panics
///
/// Re-panics the first failing case, prefixed with the property name, the
/// case index, and the case seed (all reproducible).
pub fn forall(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    let mut root = DeterministicRng::seed_from_u64(name_seed(name));
    for case in 0..cases {
        let rng = root.fork();
        let seed_state = rng.clone();
        let mut gen = Gen { rng };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut gen);
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (rng state {seed_state:?}): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        forall("counts cases", 32, |_| count += 1);
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_reports_name_and_case() {
        let result = std::panic::catch_unwind(|| {
            forall("always fails", 8, |_| panic!("inner message"));
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always fails"));
        assert!(msg.contains("case 0/8"));
        assert!(msg.contains("inner message"));
    }

    #[test]
    fn cases_see_distinct_inputs() {
        let mut seen = std::collections::HashSet::new();
        forall("distinct inputs", 64, |g| {
            seen.insert(g.u64_in(0, u64::MAX));
        });
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn streams_are_stable_across_runs() {
        let mut first = Vec::new();
        forall("stability", 16, |g| first.push(g.u64_in(0, 1_000_000)));
        let mut second = Vec::new();
        forall("stability", 16, |g| second.push(g.u64_in(0, 1_000_000)));
        assert_eq!(first, second);
    }
}
