//! Property-based tests for the ML-training simulator.

use dhl_core::DhlConfig;
use dhl_mlsim::{
    iso_power, iso_time, CommFabric, DhlFabric, DlrmWorkload, OpticalFabric, TrainingCampaign,
};
use dhl_net::route::{Route, RouteId};
use dhl_units::{Bytes, Metres, MetresPerSecond, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dhl_delivery_time_is_monotone_in_data(a in 0u64..1u64<<55, b in 0u64..1u64<<55) {
        let fabric = DhlFabric::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            fabric.delivery_time(Bytes::new(lo)).seconds()
                <= fabric.delivery_time(Bytes::new(hi)).seconds()
        );
    }

    #[test]
    fn more_tracks_never_slow_delivery(tracks in 1u32..64, pb in 0.1..100.0f64) {
        let one = DhlFabric::new(DhlConfig::paper_default(), 1);
        let many = DhlFabric::new(DhlConfig::paper_default(), tracks);
        let data = Bytes::from_petabytes(pb);
        prop_assert!(many.delivery_time(data).seconds() <= one.delivery_time(data).seconds() + 1e-9);
        prop_assert!((many.power().value() - f64::from(tracks) * one.power().value()).abs() < 1e-6);
    }

    #[test]
    fn iso_power_dhl_always_wins(budget_kw in 0.5..100.0f64) {
        let workload = DlrmWorkload::paper_dlrm();
        let table = iso_power(&workload, &DhlConfig::paper_default(), Watts::from_kilowatts(budget_kw));
        for row in &table.rows[1..] {
            prop_assert!(row.factor_vs_dhl > 1.0, "{}: {}", row.scheme, row.factor_vs_dhl);
        }
    }

    #[test]
    fn iso_time_matches_target_exactly(speed in prop_oneof![Just(100.0), Just(200.0), Just(300.0)]) {
        let cfg = DhlConfig::with_ssd_count(
            MetresPerSecond::new(speed),
            Metres::new(500.0),
            32,
        );
        let table = iso_time(&DlrmWorkload::paper_dlrm(), &cfg);
        for row in &table.rows {
            prop_assert!((row.time_per_iteration.seconds() - table.target_time.seconds()).abs() < 1e-6);
        }
        // Factors ordered by route cost.
        let f: Vec<f64> = table.rows[1..].iter().map(|r| r.factor_vs_dhl).collect();
        for pair in f.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn optical_energy_is_count_invariant(links in 0.5..500.0f64, pb in 0.1..50.0f64) {
        let one = OpticalFabric::with_links(Route::b(), 1.0);
        let many = OpticalFabric::with_links(Route::b(), links);
        let data = Bytes::from_petabytes(pb);
        let e1 = one.power() * one.delivery_time(data);
        let e2 = many.power() * many.delivery_time(data);
        prop_assert!((e1.value() - e2.value()).abs() < 1e-6 * e1.value());
    }

    #[test]
    fn campaign_time_is_monotone_in_both_axes(m in 1u32..20, i in 1u32..50) {
        let fabric = DhlFabric::paper_default();
        let base = TrainingCampaign::paper_default(m, i).evaluate(&fabric);
        let more_models = TrainingCampaign::paper_default(m + 1, i).evaluate(&fabric);
        let more_iters = TrainingCampaign::paper_default(m, i + 1).evaluate(&fabric);
        prop_assert!(more_models.total_time.seconds() > base.total_time.seconds());
        prop_assert!(more_iters.total_time.seconds() > base.total_time.seconds());
        // Comm energy moves with models only.
        prop_assert!(more_models.comm_energy.value() > base.comm_energy.value());
        prop_assert!((more_iters.comm_energy.value() - base.comm_energy.value()).abs() < 1e-6);
    }

    #[test]
    fn workload_iteration_time_is_affine(t1 in 0.0..1e6f64, t2 in 0.0..1e6f64) {
        let w = DlrmWorkload::paper_dlrm();
        let mid = 0.5 * (t1 + t2);
        let lhs = w.iteration_time(dhl_units::Seconds::new(mid)).seconds();
        let rhs = 0.5
            * (w.iteration_time(dhl_units::Seconds::new(t1)).seconds()
                + w.iteration_time(dhl_units::Seconds::new(t2)).seconds());
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn route_c_is_always_the_worst_scheme(budget_kw in 0.5..50.0f64) {
        let table = iso_power(
            &DlrmWorkload::paper_dlrm(),
            &DhlConfig::paper_default(),
            Watts::from_kilowatts(budget_kw),
        );
        let c = table.rows.iter().find(|r| r.scheme == RouteId::C.to_string()).unwrap();
        for row in &table.rows {
            prop_assert!(row.factor_vs_dhl <= c.factor_vs_dhl + 1e-12);
        }
    }
}
