//! Property-based tests for the ML-training simulator.

use dhl_core::DhlConfig;
use dhl_mlsim::{
    iso_power, iso_time, CommFabric, DhlFabric, DlrmWorkload, OpticalFabric, TrainingCampaign,
};
use dhl_net::route::{Route, RouteId};
use dhl_rng::check::forall;
use dhl_units::{Bytes, Metres, MetresPerSecond, Watts};

#[test]
fn dhl_delivery_time_is_monotone_in_data() {
    forall("dhl_delivery_time_is_monotone_in_data", 64, |g| {
        let (a, b) = (g.u64_in(0, 1 << 55), g.u64_in(0, 1 << 55));
        let fabric = DhlFabric::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            fabric.delivery_time(Bytes::new(lo)).seconds()
                <= fabric.delivery_time(Bytes::new(hi)).seconds()
        );
    });
}

#[test]
fn more_tracks_never_slow_delivery() {
    forall("more_tracks_never_slow_delivery", 64, |g| {
        let tracks = g.u32_in(1, 64);
        let pb = g.f64_in(0.1, 100.0);
        let one = DhlFabric::new(DhlConfig::paper_default(), 1);
        let many = DhlFabric::new(DhlConfig::paper_default(), tracks);
        let data = Bytes::from_petabytes(pb);
        assert!(many.delivery_time(data).seconds() <= one.delivery_time(data).seconds() + 1e-9);
        assert!((many.power().value() - f64::from(tracks) * one.power().value()).abs() < 1e-6);
    });
}

#[test]
fn iso_power_dhl_always_wins() {
    forall("iso_power_dhl_always_wins", 64, |g| {
        let budget_kw = g.f64_in(0.5, 100.0);
        let workload = DlrmWorkload::paper_dlrm();
        let table = iso_power(
            &workload,
            &DhlConfig::paper_default(),
            Watts::from_kilowatts(budget_kw),
        );
        for row in &table.rows[1..] {
            assert!(
                row.factor_vs_dhl > 1.0,
                "{}: {}",
                row.scheme,
                row.factor_vs_dhl
            );
        }
    });
}

#[test]
fn iso_time_matches_target_exactly() {
    forall("iso_time_matches_target_exactly", 16, |g| {
        let speed = [100.0, 200.0, 300.0][g.usize_in(0, 3)];
        let cfg = DhlConfig::with_ssd_count(MetresPerSecond::new(speed), Metres::new(500.0), 32);
        let table = iso_time(&DlrmWorkload::paper_dlrm(), &cfg);
        for row in &table.rows {
            assert!((row.time_per_iteration.seconds() - table.target_time.seconds()).abs() < 1e-6);
        }
        // Factors ordered by route cost.
        let f: Vec<f64> = table.rows[1..].iter().map(|r| r.factor_vs_dhl).collect();
        for pair in f.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    });
}

#[test]
fn optical_energy_is_count_invariant() {
    forall("optical_energy_is_count_invariant", 64, |g| {
        let links = g.f64_in(0.5, 500.0);
        let pb = g.f64_in(0.1, 50.0);
        let one = OpticalFabric::with_links(Route::b(), 1.0);
        let many = OpticalFabric::with_links(Route::b(), links);
        let data = Bytes::from_petabytes(pb);
        let e1 = one.power() * one.delivery_time(data);
        let e2 = many.power() * many.delivery_time(data);
        assert!((e1.value() - e2.value()).abs() < 1e-6 * e1.value());
    });
}

#[test]
fn campaign_time_is_monotone_in_both_axes() {
    forall("campaign_time_is_monotone_in_both_axes", 64, |g| {
        let m = g.u32_in(1, 20);
        let i = g.u32_in(1, 50);
        let fabric = DhlFabric::paper_default();
        let base = TrainingCampaign::paper_default(m, i).evaluate(&fabric);
        let more_models = TrainingCampaign::paper_default(m + 1, i).evaluate(&fabric);
        let more_iters = TrainingCampaign::paper_default(m, i + 1).evaluate(&fabric);
        assert!(more_models.total_time.seconds() > base.total_time.seconds());
        assert!(more_iters.total_time.seconds() > base.total_time.seconds());
        // Comm energy moves with models only.
        assert!(more_models.comm_energy.value() > base.comm_energy.value());
        assert!((more_iters.comm_energy.value() - base.comm_energy.value()).abs() < 1e-6);
    });
}

#[test]
fn workload_iteration_time_is_affine() {
    forall("workload_iteration_time_is_affine", 64, |g| {
        let (t1, t2) = (g.f64_in(0.0, 1e6), g.f64_in(0.0, 1e6));
        let w = DlrmWorkload::paper_dlrm();
        let mid = 0.5 * (t1 + t2);
        let lhs = w.iteration_time(dhl_units::Seconds::new(mid)).seconds();
        let rhs = 0.5
            * (w.iteration_time(dhl_units::Seconds::new(t1)).seconds()
                + w.iteration_time(dhl_units::Seconds::new(t2)).seconds());
        assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1.0));
    });
}

#[test]
fn route_c_is_always_the_worst_scheme() {
    forall("route_c_is_always_the_worst_scheme", 64, |g| {
        let budget_kw = g.f64_in(0.5, 50.0);
        let table = iso_power(
            &DlrmWorkload::paper_dlrm(),
            &DhlConfig::paper_default(),
            Watts::from_kilowatts(budget_kw),
        );
        let c = table
            .rows
            .iter()
            .find(|r| r.scheme == RouteId::C.to_string())
            .unwrap();
        for row in &table.rows {
            assert!(row.factor_vs_dhl <= c.factor_vs_dhl + 1e-12);
        }
    });
}
