//! The §V-C experiments: Fig. 6's iso-power sweep and Table VII's
//! iso-power / iso-time comparisons.

use serde::{Deserialize, Serialize};

use dhl_core::DhlConfig;
use dhl_net::route::{Route, RouteId};
use dhl_units::{Seconds, Watts};

use crate::fabric::{CommFabric, DhlFabric, OpticalFabric};
use crate::workload::DlrmWorkload;

/// One scheme's result at a fixed operating point.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SchemeResult {
    /// Scheme label ("DHL", "A0", …).
    pub scheme: String,
    /// Average communication power.
    pub power: Watts,
    /// Time per training iteration.
    pub time_per_iteration: Seconds,
    /// Factor relative to the DHL row (slowdown in iso-power, power
    /// increase in iso-time).
    pub factor_vs_dhl: f64,
}

/// Table VII(a): every scheme at a fixed power budget.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct IsoPowerTable {
    /// The shared power budget.
    pub budget: Watts,
    /// DHL first, then routes A0–C.
    pub rows: Vec<SchemeResult>,
}

/// Table VII(b): every scheme at the DHL's iteration time.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct IsoTimeTable {
    /// The shared iteration time (the DHL's).
    pub target_time: Seconds,
    /// DHL first, then routes A0–C.
    pub rows: Vec<SchemeResult>,
}

/// Runs the iso-power experiment (Table VII(a)).
///
/// The budget defaults in the paper to the single default DHL's average
/// power (≈ 1.75 kW); pass [`DhlFabric::track_power`] of your design for
/// the same construction.
#[must_use]
pub fn iso_power(workload: &DlrmWorkload, dhl: &DhlConfig, budget: Watts) -> IsoPowerTable {
    let dhl_fabric = DhlFabric::max_for_power(dhl.clone(), budget);
    let dhl_time = workload.iteration_time(dhl_fabric.delivery_time(workload.dataset));
    let mut rows = vec![SchemeResult {
        scheme: "DHL".to_owned(),
        power: dhl_fabric.power(),
        time_per_iteration: dhl_time,
        factor_vs_dhl: 1.0,
    }];
    for id in RouteId::ALL {
        let fabric = OpticalFabric::max_for_power(Route::from_id(id), budget);
        let t = workload.iteration_time(fabric.delivery_time(workload.dataset));
        rows.push(SchemeResult {
            scheme: id.to_string(),
            power: fabric.power(),
            time_per_iteration: t,
            factor_vs_dhl: t.seconds() / dhl_time.seconds(),
        });
    }
    IsoPowerTable { budget, rows }
}

/// Runs the iso-time experiment (Table VII(b)): finds, for each route, the
/// (continuous) link count whose iteration time matches the DHL's, and
/// reports the power that bundle draws.
///
/// # Panics
///
/// Panics if the DHL's iteration time does not exceed the workload's fixed
/// overhead (no finite link count can match it).
#[must_use]
pub fn iso_time(workload: &DlrmWorkload, dhl: &DhlConfig) -> IsoTimeTable {
    let dhl_fabric = DhlFabric::new(dhl.clone(), 1);
    let target = workload.iteration_time(dhl_fabric.delivery_time(workload.dataset));
    let exposed = target - workload.fixed_overhead;
    assert!(
        exposed.seconds() > 0.0,
        "target iteration time must exceed the fixed overhead"
    );
    let mut rows = vec![SchemeResult {
        scheme: "DHL".to_owned(),
        power: dhl_fabric.power(),
        time_per_iteration: target,
        factor_vs_dhl: 1.0,
    }];
    let dhl_power = dhl_fabric.power().value();
    for id in RouteId::ALL {
        let route = Route::from_id(id);
        let single_link_comm = route.transfer_time(workload.dataset);
        // overlap · T₁/n + overhead = target  ⇒  n = overlap · T₁ / exposed
        let links = workload.comm_overlap * single_link_comm.seconds() / exposed.seconds();
        let fabric = OpticalFabric::with_links(route, links);
        rows.push(SchemeResult {
            scheme: id.to_string(),
            power: fabric.power(),
            time_per_iteration: target,
            factor_vs_dhl: fabric.power().value() / dhl_power,
        });
    }
    IsoTimeTable {
        target_time: target,
        rows,
    }
}

/// One curve of Fig. 6: a scheme's iteration time across power budgets.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Fig6Series {
    /// Curve label.
    pub scheme: String,
    /// `(power, time-per-iteration)` points, increasing in power.
    pub points: Vec<(Watts, Seconds)>,
}

/// Generates Fig. 6: DHL curves are quantised (1, 2, … tracks); network
/// curves are evaluated at each budget in `power_grid` with a continuous
/// link count.
#[must_use]
pub fn fig6(
    workload: &DlrmWorkload,
    dhl_configs: &[DhlConfig],
    route_ids: &[RouteId],
    power_grid: &[Watts],
    max_tracks: u32,
) -> Vec<Fig6Series> {
    let mut series = Vec::new();
    for cfg in dhl_configs {
        let mut points = Vec::new();
        for k in 1..=max_tracks {
            let fabric = DhlFabric::new(cfg.clone(), k);
            let t = workload.iteration_time(fabric.delivery_time(workload.dataset));
            points.push((fabric.power(), t));
        }
        let label = DhlFabric::new(cfg.clone(), 1).name();
        series.push(Fig6Series {
            scheme: label.trim_end_matches("×1").to_owned(),
            points,
        });
    }
    for id in route_ids {
        let route = Route::from_id(*id);
        let mut points = Vec::new();
        for &budget in power_grid {
            if budget.value() <= 0.0 {
                continue;
            }
            let fabric = OpticalFabric::max_for_power(route.clone(), budget);
            let t = workload.iteration_time(fabric.delivery_time(workload.dataset));
            points.push((budget, t));
        }
        series.push(Fig6Series {
            scheme: format!("Network {id}"),
            points,
        });
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_a() -> IsoPowerTable {
        let workload = DlrmWorkload::paper_dlrm();
        let dhl = DhlConfig::paper_default();
        let budget = DhlFabric::new(dhl.clone(), 1).track_power();
        iso_power(&workload, &dhl, budget)
    }

    #[test]
    fn iso_power_reproduces_table_vii_a_shape() {
        // Paper: DHL 1350 s; slowdowns 5.7/9.3/19.9/69.1/118×.
        // Ours (derived, not fitted): DHL ≈ 1212 s; slowdowns
        // ≈ 6.3/10.3/22.1/76.7/131× — same ordering, within ~15 %.
        let t = table_a();
        assert_eq!(t.rows.len(), 6);
        let dhl_time = t.rows[0].time_per_iteration.seconds();
        assert!(
            (dhl_time - 1350.0).abs() / 1350.0 < 0.15,
            "DHL time {dhl_time} vs paper 1350"
        );
        let paper = [5.7, 9.3, 19.9, 69.1, 118.0];
        for (row, want) in t.rows[1..].iter().zip(paper) {
            let got = row.factor_vs_dhl;
            assert!(
                (got - want).abs() / want < 0.15,
                "{}: slowdown {got} vs paper {want}",
                row.scheme
            );
        }
    }

    #[test]
    fn iso_power_budget_is_about_1750_watts() {
        let t = table_a();
        assert!((t.budget.kilowatts() - 1.75).abs() < 0.01);
        // every optical row saturates the budget
        for row in &t.rows[1..] {
            assert!((row.power.value() - t.budget.value()).abs() < 1e-6);
        }
    }

    #[test]
    fn iso_power_slowdowns_are_ordered() {
        let t = table_a();
        let factors: Vec<f64> = t.rows.iter().map(|r| r.factor_vs_dhl).collect();
        for pair in factors.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn iso_time_reproduces_table_vii_b_shape() {
        // Paper: power increases 6.4/10.5/22.8/79.4/135×.
        // Ours: ≈ 8.1/13.3/28.9/101/173× — same ordering; our DHL point is
        // faster than the paper's (1212 vs 1350 s), which raises every
        // optical power requirement by the same ~1.3× factor.
        let t = iso_time(&DlrmWorkload::paper_dlrm(), &DhlConfig::paper_default());
        assert_eq!(t.rows.len(), 6);
        let paper = [6.4, 10.5, 22.8, 79.4, 135.0];
        for (row, want) in t.rows[1..].iter().zip(paper) {
            let got = row.factor_vs_dhl;
            assert!(
                got / want > 1.0 && got / want < 1.45,
                "{}: power increase {got} vs paper {want}",
                row.scheme
            );
            assert!((row.time_per_iteration.seconds() - t.target_time.seconds()).abs() < 1e-6);
        }
    }

    #[test]
    fn iso_time_factors_are_ordered_and_all_above_one() {
        let t = iso_time(&DlrmWorkload::paper_dlrm(), &DhlConfig::paper_default());
        let factors: Vec<f64> = t.rows[1..].iter().map(|r| r.factor_vs_dhl).collect();
        assert!(factors[0] > 1.0);
        for pair in factors.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn fig6_curves_decrease_with_power() {
        use dhl_units::{Metres, MetresPerSecond};
        let workload = DlrmWorkload::paper_dlrm();
        let configs = [
            DhlConfig::paper_default(),
            DhlConfig::with_ssd_count(MetresPerSecond::new(100.0), Metres::new(500.0), 16),
        ];
        let grid: Vec<Watts> = (1..=40).map(|i| Watts::new(i as f64 * 500.0)).collect();
        let series = fig6(
            &workload,
            &configs,
            &[RouteId::A0, RouteId::B, RouteId::C],
            &grid,
            8,
        );
        assert_eq!(series.len(), 5);
        for s in &series {
            assert!(!s.points.is_empty(), "{}", s.scheme);
            for pair in s.points.windows(2) {
                assert!(pair[0].0.value() < pair[1].0.value(), "{} power", s.scheme);
                assert!(
                    pair[0].1.seconds() >= pair[1].1.seconds() - 1e-6,
                    "{} time should fall with power",
                    s.scheme
                );
            }
        }
    }

    #[test]
    fn fig6_dhl_dominates_networks_at_equal_power() {
        // §V-C: "for a fixed power budget, DHL consistently outperforms the
        // different network scenarios."
        let workload = DlrmWorkload::paper_dlrm();
        let series = fig6(
            &workload,
            &[DhlConfig::paper_default()],
            &[RouteId::A0],
            &[
                Watts::new(1_749.3),
                Watts::new(3_498.6),
                Watts::new(5_247.9),
            ],
            3,
        );
        let dhl = &series[0];
        let a0 = &series[1];
        for ((dp, dt), (np, nt)) in dhl.points.iter().zip(&a0.points) {
            assert!((dp.value() - np.value()).abs() / np.value() < 0.01);
            assert!(dt.seconds() < nt.seconds());
        }
    }

    #[test]
    #[should_panic(expected = "target iteration time must exceed")]
    fn iso_time_rejects_degenerate_workload() {
        let mut w = DlrmWorkload::paper_dlrm();
        w.fixed_overhead = Seconds::new(1e9);
        // overhead alone exceeds any finite target derived from it — the
        // exposed communication time is zero or negative.
        w.comm_overlap = 0.0;
        let _ = iso_time(&w, &DhlConfig::paper_default());
    }
}
