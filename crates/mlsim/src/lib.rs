//! Distributed ML-training simulator — the ASTRA-sim substitute (§IV-E,
//! §V-C).
//!
//! The paper models the DHL inside ASTRA-sim as a high-bandwidth,
//! high-latency network layer and reports the time and power to train one
//! DLRM iteration over Meta's 29 PB dataset. ASTRA-sim itself is not
//! reproducible from the paper, so this crate implements the same
//! experiment with an explicit, documented model:
//!
//! - [`DlrmWorkload`]: iteration time as an affine function of dataset
//!   delivery time, calibrated **only** against the five published optical
//!   points of Table VII(a) — every DHL result is derived, never fitted;
//! - [`fabric`]: pluggable [`CommFabric`]s — parallel optical links
//!   ([`OpticalFabric`]), the paper's idealised DHL link ([`DhlFabric`]),
//!   and a DES-backed variant ([`DesDhlFabric`]) that gets delivery times
//!   from the full `dhl-sim` system simulation;
//! - [`experiment`]: [`iso_power`] (Table VII a), [`iso_time`]
//!   (Table VII b) and [`fig6`] (the power-vs-time sweep).
//!
//! # Example
//!
//! ```rust
//! use dhl_core::DhlConfig;
//! use dhl_mlsim::{iso_power, DhlFabric, DlrmWorkload};
//!
//! let workload = DlrmWorkload::paper_dlrm();
//! let dhl = DhlConfig::paper_default();
//! let budget = DhlFabric::new(dhl.clone(), 1).track_power(); // ≈ 1.75 kW
//! let table = iso_power(&workload, &dhl, budget);
//! // DHL leads every optical scheme at the same power.
//! assert!(table.rows[1..].iter().all(|r| r.factor_vs_dhl > 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fabric;
pub mod training;
pub mod workload;

pub use experiment::{
    fig6, iso_power, iso_time, Fig6Series, IsoPowerTable, IsoTimeTable, SchemeResult,
};
pub use fabric::{CommFabric, DesDhlFabric, DhlFabric, OpticalFabric};
pub use training::{CampaignCost, TrainingCampaign};
pub use workload::DlrmWorkload;
