//! Pluggable communication fabrics: parallel optical links or DHL tracks.
//!
//! The paper "simulate\[s\] the DHL as a high-bandwidth, high-latency network
//! layer" (§IV-E). [`DhlFabric`] implements exactly that: deliveries are
//! quantised into cart trips launched back-to-back at the trip cadence
//! (embodied bandwidth), while energy still pays for the return movements —
//! the source of its 1.75 kW average power anchor. [`DesDhlFabric`] is the
//! ablation variant that gets the delivery time from the discrete-event
//! simulator (track contention, direction switches and all) instead of the
//! closed form.

use dhl_core::{DhlConfig, LaunchMetrics};
use dhl_net::route::Route;
use dhl_net::transfer::ParallelLinks;
use dhl_sim::{DhlSystem, SimConfig};
use dhl_units::{Bytes, Seconds, Watts};

/// A communication substrate that can deliver a dataset to the compute
/// nodes and has a steady power draw.
pub trait CommFabric {
    /// Human-readable scheme name ("A0", "DHL-200-500-256", …).
    fn name(&self) -> String;
    /// Time to deliver `data` to the training nodes.
    fn delivery_time(&self, data: Bytes) -> Seconds;
    /// Average power attributable to the fabric while delivering.
    fn power(&self) -> Watts;
}

/// A bundle of parallel optical links of one route.
#[derive(Clone, Debug)]
pub struct OpticalFabric {
    links: ParallelLinks,
}

impl OpticalFabric {
    /// The largest (continuous) bundle of `route` affordable at `budget`
    /// (§V-C's iso-power construction).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not positive.
    #[must_use]
    pub fn max_for_power(route: Route, budget: Watts) -> Self {
        Self {
            links: ParallelLinks::max_for_power(route, budget).expect("budget must be positive"),
        }
    }

    /// An exact link count.
    ///
    /// # Panics
    ///
    /// Panics if `count` is not positive and finite.
    #[must_use]
    pub fn with_links(route: Route, count: f64) -> Self {
        Self {
            links: ParallelLinks::new(route, count).expect("count must be positive"),
        }
    }

    /// The underlying bundle.
    #[must_use]
    pub fn links(&self) -> &ParallelLinks {
        &self.links
    }
}

impl CommFabric for OpticalFabric {
    fn name(&self) -> String {
        format!(
            "{}×{:.1}",
            self.links.route().name(),
            self.links.link_count()
        )
    }

    fn delivery_time(&self, data: Bytes) -> Seconds {
        self.links.transfer_time(data)
    }

    fn power(&self) -> Watts {
        self.links.power()
    }
}

/// One or more parallel DHL tracks, modelled as the paper's
/// high-bandwidth, high-latency link.
///
/// - **Delivery**: `ceil(trips / tracks) × trip_time` — carts stream
///   one-way at the trip cadence (returns are hidden behind the endpoint's
///   cart processing, §V-B's pipelining argument).
/// - **Power**: each track averages `round-trip energy / round-trip time
///   = launch_energy / trip_time` ≈ 1.75 kW for the default configuration —
///   the returns are paid for in energy even though they are off the
///   delivery critical path.
#[derive(Clone, Debug)]
pub struct DhlFabric {
    config: DhlConfig,
    launch: LaunchMetrics,
    tracks: u32,
}

impl DhlFabric {
    /// A single default (200 m/s, 500 m, 256 TB) DHL.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(DhlConfig::paper_default(), 1)
    }

    /// `tracks` parallel DHLs of the given design.
    ///
    /// # Panics
    ///
    /// Panics if `tracks` is zero or the configuration is invalid.
    #[must_use]
    pub fn new(config: DhlConfig, tracks: u32) -> Self {
        assert!(tracks > 0, "at least one track");
        let launch = LaunchMetrics::evaluate(&config);
        Self {
            config,
            launch,
            tracks,
        }
    }

    /// Number of parallel tracks.
    #[must_use]
    pub fn tracks(&self) -> u32 {
        self.tracks
    }

    /// Average power of one track (≈ 1.75 kW for the paper default).
    #[must_use]
    pub fn track_power(&self) -> Watts {
        self.launch.energy / self.launch.trip_time
    }

    /// The largest number of tracks affordable at `budget` (at least 1 —
    /// the paper's leftmost Fig. 6 point is always a single DHL).
    #[must_use]
    pub fn max_for_power(config: DhlConfig, budget: Watts) -> Self {
        let single = Self::new(config.clone(), 1);
        let affordable = (budget.value() / single.track_power().value()).floor() as u32;
        Self::new(config, affordable.max(1))
    }
}

impl CommFabric for DhlFabric {
    fn name(&self) -> String {
        format!(
            "DHL-{:.0}-{:.0}-{:.0}×{}",
            self.config.max_speed.value(),
            self.config.track_length.value(),
            self.config.cart_capacity.terabytes(),
            self.tracks
        )
    }

    fn delivery_time(&self, data: Bytes) -> Seconds {
        if data.is_zero() {
            return Seconds::ZERO;
        }
        let trips = data.div_ceil(self.config.cart_capacity);
        let per_track = trips.div_ceil(u64::from(self.tracks));
        self.launch.trip_time * per_track as f64
    }

    fn power(&self) -> Watts {
        self.track_power() * f64::from(self.tracks)
    }
}

/// The DES-backed DHL fabric: delivery time measured by running the full
/// system simulation (single bidirectional track with contention, forced
/// returns and direction switches). Strictly slower than [`DhlFabric`]'s
/// idealised pipeline — the ablation quantifies by how much.
#[derive(Clone, Debug)]
pub struct DesDhlFabric {
    sim_config: SimConfig,
}

impl DesDhlFabric {
    /// Wraps a validated simulator configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    #[must_use]
    pub fn new(sim_config: SimConfig) -> Self {
        sim_config.validate().expect("invalid SimConfig");
        Self { sim_config }
    }

    /// The paper-default simulator configuration (8 carts, 4 rack docks).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(SimConfig::paper_default())
    }
}

impl CommFabric for DesDhlFabric {
    fn name(&self) -> String {
        format!(
            "DHL-DES-{:.0}m-{}carts",
            self.sim_config.track_length().value(),
            self.sim_config.num_carts
        )
    }

    fn delivery_time(&self, data: Bytes) -> Seconds {
        DhlSystem::new(self.sim_config.clone())
            .expect("validated at construction")
            .run_bulk_transfer(data)
            .expect("bulk transfer converges")
            .completion_time
    }

    fn power(&self) -> Watts {
        // Average over a representative bulk run.
        let report = DhlSystem::new(self.sim_config.clone())
            .expect("validated at construction")
            .run_bulk_transfer(Bytes::from_petabytes(29.0))
            .expect("bulk transfer converges");
        report.average_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dhl_track_power_is_paper_anchor() {
        // 15.04 kJ / 8.6 s = 1.749 kW — §V-C's fixed budget.
        let fabric = DhlFabric::paper_default();
        assert!((fabric.track_power().kilowatts() - 1.749).abs() < 0.005);
    }

    #[test]
    fn dhl_delivery_streams_one_way_trips() {
        let fabric = DhlFabric::paper_default();
        let t = fabric.delivery_time(Bytes::from_petabytes(29.0));
        // 114 trips × 8.6 s = 980.4 s.
        assert!((t.seconds() - 980.4).abs() < 0.1);
    }

    #[test]
    fn parallel_tracks_divide_delivery_and_multiply_power() {
        let one = DhlFabric::new(DhlConfig::paper_default(), 1);
        let four = DhlFabric::new(DhlConfig::paper_default(), 4);
        let data = Bytes::from_petabytes(29.0);
        // 114 trips over 4 tracks = 29 per track (ceil).
        let expected = one.launch.trip_time * 29.0;
        assert!((four.delivery_time(data).seconds() - expected.seconds()).abs() < 1e-9);
        assert!((four.power().value() - 4.0 * one.power().value()).abs() < 1e-9);
    }

    #[test]
    fn max_for_power_floors_but_keeps_one() {
        let cfg = DhlConfig::paper_default;
        assert_eq!(
            DhlFabric::max_for_power(cfg(), Watts::new(1_750.0)).tracks(),
            1
        );
        assert_eq!(
            DhlFabric::max_for_power(cfg(), Watts::new(3_600.0)).tracks(),
            2
        );
        assert_eq!(
            DhlFabric::max_for_power(cfg(), Watts::new(100.0)).tracks(),
            1
        );
    }

    #[test]
    fn optical_fabric_fills_budget() {
        let fabric = OpticalFabric::max_for_power(Route::a0(), Watts::new(1_750.0));
        assert!((fabric.power().value() - 1_750.0).abs() < 1e-9);
        let t = fabric.delivery_time(Bytes::from_petabytes(29.0));
        assert!((t.seconds() - 7_954.3).abs() < 1.0);
    }

    #[test]
    fn des_fabric_is_slower_than_idealised_pipeline() {
        let ideal = DhlFabric::paper_default();
        let des = DesDhlFabric::paper_default();
        let data = Bytes::from_petabytes(2.0);
        assert!(des.delivery_time(data) > ideal.delivery_time(data));
    }

    #[test]
    fn zero_data_is_instant() {
        assert_eq!(
            DhlFabric::paper_default().delivery_time(Bytes::ZERO),
            Seconds::ZERO
        );
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(DhlFabric::paper_default().name(), "DHL-200-500-256×1");
        let optical = OpticalFabric::with_links(Route::c(), 2.0);
        assert!(optical.name().starts_with("C×2.0"));
        assert!(DesDhlFabric::paper_default().name().contains("DES"));
    }
}
