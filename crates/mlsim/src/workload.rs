//! The DLRM training-iteration model (§IV-E).
//!
//! The paper trains "a DLRM ML model as used by Meta with their 29 PB data
//! set" and reports the time per gradient-descent iteration as a function of
//! communication power. One iteration ingests the full training shard set
//! and performs the model computations; ASTRA-sim overlaps computation with
//! communication and adds per-iteration collective/compute overhead.
//!
//! ASTRA-sim itself is not reproducible from the paper, so we model the
//! iteration as an affine function of the communication (ingest) time:
//!
//! ```text
//! T_iter = overlap · T_comm + overhead
//! ```
//!
//! with `overlap = 0.9272` and `overhead = 303 s`, calibrated by a
//! least-squares fit to the five published optical points of Table VII(a)
//! (A0 7680 s … C 159 000 s at 1.75 kW). The fit reproduces those five
//! points within 0.5 %; every DHL number is then *derived*, not fitted.

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, Seconds};

/// A distributed-training workload whose iteration time is dominated by
/// ingesting a fixed dataset plus fixed per-iteration work.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DlrmWorkload {
    /// Training data ingested per iteration.
    pub dataset: Bytes,
    /// Fraction of communication time exposed after compute overlap.
    pub comm_overlap: f64,
    /// Fixed per-iteration overhead (collectives + compute tail).
    pub fixed_overhead: Seconds,
}

impl DlrmWorkload {
    /// Communication-overlap factor fitted to Table VII(a)'s optical points.
    pub const PAPER_COMM_OVERLAP: f64 = 0.9272;
    /// Fixed overhead fitted to Table VII(a)'s optical points.
    pub const PAPER_FIXED_OVERHEAD: Seconds = Seconds::new(303.0);

    /// The paper's workload: Meta's 29 PB DLRM dataset with the calibrated
    /// overlap model.
    #[must_use]
    pub fn paper_dlrm() -> Self {
        Self {
            dataset: Bytes::from_petabytes(29.0),
            comm_overlap: Self::PAPER_COMM_OVERLAP,
            fixed_overhead: Self::PAPER_FIXED_OVERHEAD,
        }
    }

    /// Iteration time given the fabric's dataset delivery time.
    #[must_use]
    pub fn iteration_time(&self, comm_time: Seconds) -> Seconds {
        comm_time * self.comm_overlap + self.fixed_overhead
    }
}

impl Default for DlrmWorkload {
    fn default() -> Self {
        Self::paper_dlrm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_parameters() {
        let w = DlrmWorkload::paper_dlrm();
        assert_eq!(w.dataset.petabytes(), 29.0);
        assert!((w.comm_overlap - 0.9272).abs() < 1e-12);
        assert_eq!(w.fixed_overhead.seconds(), 303.0);
    }

    #[test]
    fn iteration_time_is_affine() {
        let w = DlrmWorkload::paper_dlrm();
        let t0 = w.iteration_time(Seconds::ZERO).seconds();
        let t1 = w.iteration_time(Seconds::new(1000.0)).seconds();
        let t2 = w.iteration_time(Seconds::new(2000.0)).seconds();
        assert_eq!(t0, 303.0);
        assert!(((t2 - t1) - (t1 - t0)).abs() < 1e-9);
    }

    #[test]
    fn calibration_reproduces_published_optical_points() {
        // Table VII(a): at 1.75 kW, route X affords 1750/P_X links and the
        // paper reports these iteration times.
        let w = DlrmWorkload::paper_dlrm();
        let cases: [(f64, f64); 5] = [
            (24.0, 7_680.0),       // A0
            (39.6, 12_500.0),      // A1
            (86.2875, 26_900.0),   // A2
            (301.2875, 93_300.0),  // B
            (516.2875, 159_000.0), // C
        ];
        for (route_power, paper_time) in cases {
            let links = 1750.0 / route_power;
            let comm = 580_000.0 / links;
            let t = w.iteration_time(Seconds::new(comm)).seconds();
            assert!(
                (t - paper_time).abs() / paper_time < 0.005,
                "route at {route_power} W: {t} vs paper {paper_time}"
            );
        }
    }
}
