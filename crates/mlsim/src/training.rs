//! Multi-model training campaigns (§II-D.3).
//!
//! "New models with their own independent architectures are regularly being
//! trained on the same, large datasets … we see potential for ongoing
//! savings repeatedly and over the long term as these same datasets must be
//! used again and again to train a variety of different models."
//!
//! A campaign trains `models` independent models, each for `iterations`
//! gradient steps, on one shared dataset. For every model the dataset must
//! first be collected onto that model's compute nodes (one fabric delivery);
//! subsequent iterations stream it from local storage at the docked PCIe /
//! local-disk rate. The communication fabric therefore pays `models`
//! deliveries, not `models × iterations`.

use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, BytesPerSecond, Joules, Seconds, Watts};

use crate::fabric::CommFabric;
use crate::workload::DlrmWorkload;

/// A campaign of independent model trainings over one shared dataset.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TrainingCampaign {
    /// Number of independent models trained on the dataset.
    pub models: u32,
    /// Gradient iterations per model.
    pub iterations_per_model: u32,
    /// The iteration model (dataset + overlap constants).
    pub workload: DlrmWorkload,
    /// Local re-read bandwidth once the data is resident (docked cart PCIe
    /// or node-local NVMe).
    pub local_read_bandwidth: BytesPerSecond,
}

/// Cost of running a campaign over one fabric.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CampaignCost {
    /// Fabric used, by name.
    pub fabric: String,
    /// Wall-clock time for the whole campaign.
    pub total_time: Seconds,
    /// Communication energy (fabric deliveries only).
    pub comm_energy: Joules,
    /// Average communication power over the campaign.
    pub avg_comm_power: Watts,
    /// Time spent on first-iteration dataset collection.
    pub delivery_time: Seconds,
    /// Time spent on the remaining (locally fed) iterations.
    pub local_time: Seconds,
}

impl TrainingCampaign {
    /// The paper-scale campaign: 29 PB DLRM data, local re-reads at the
    /// PCIe-6 ×64 docked rate (≈ 480 GB/s).
    #[must_use]
    pub fn paper_default(models: u32, iterations_per_model: u32) -> Self {
        Self {
            models,
            iterations_per_model,
            workload: DlrmWorkload::paper_dlrm(),
            local_read_bandwidth: BytesPerSecond::from_gigabytes_per_second(480.0),
        }
    }

    /// Iteration time once the dataset is resident locally.
    #[must_use]
    pub fn local_iteration_time(&self) -> Seconds {
        self.workload.iteration_time(
            self.local_read_bandwidth
                .transfer_time(self.workload.dataset),
        )
    }

    /// Evaluates the campaign over a fabric.
    ///
    /// The first iteration of each model overlaps its compute with the
    /// fabric delivery (`DlrmWorkload::iteration_time`); the remaining
    /// `iterations_per_model − 1` run at the local rate.
    #[must_use]
    pub fn evaluate<F: CommFabric>(&self, fabric: &F) -> CampaignCost {
        let dataset: Bytes = self.workload.dataset;
        let delivery = fabric.delivery_time(dataset);
        let first_iter = self.workload.iteration_time(delivery);
        let local_iter = self.local_iteration_time();

        let per_model_local = local_iter * f64::from(self.iterations_per_model.saturating_sub(1));
        let per_model = first_iter + per_model_local;
        let total_time = per_model * f64::from(self.models);

        // The fabric draws power only while delivering.
        let comm_energy = fabric.power() * delivery * f64::from(self.models);
        let avg_comm_power = if total_time.seconds() > 0.0 {
            comm_energy / total_time
        } else {
            Watts::ZERO
        };
        CampaignCost {
            fabric: fabric.name(),
            total_time,
            comm_energy,
            avg_comm_power,
            delivery_time: delivery * f64::from(self.models),
            local_time: per_model_local * f64::from(self.models),
        }
    }

    /// Communication-energy saving of `a` over `b` for this campaign.
    #[must_use]
    pub fn energy_saving<A: CommFabric, B: CommFabric>(&self, a: &A, b: &B) -> f64 {
        self.evaluate(b).comm_energy.value() / self.evaluate(a).comm_energy.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{DhlFabric, OpticalFabric};
    use dhl_net::route::Route;
    use dhl_units::Watts;

    fn dhl() -> DhlFabric {
        DhlFabric::paper_default()
    }

    fn optical() -> OpticalFabric {
        OpticalFabric::max_for_power(Route::b(), Watts::new(1_750.0))
    }

    #[test]
    fn single_model_single_iteration_is_one_delivery() {
        let campaign = TrainingCampaign::paper_default(1, 1);
        let cost = campaign.evaluate(&dhl());
        // One delivery at the DHL's 980 s + overlapped compute.
        assert!((cost.delivery_time.seconds() - 980.4).abs() < 0.1);
        assert_eq!(cost.local_time.seconds(), 0.0);
        assert!((cost.total_time.seconds() - 1212.0).abs() < 2.0);
    }

    #[test]
    fn comm_energy_scales_with_models_not_iterations() {
        let campaign_1 = TrainingCampaign::paper_default(1, 1);
        let campaign_many_iters = TrainingCampaign::paper_default(1, 100);
        let campaign_many_models = TrainingCampaign::paper_default(10, 1);
        let f = dhl();
        let e1 = campaign_1.evaluate(&f).comm_energy.value();
        let e_iters = campaign_many_iters.evaluate(&f).comm_energy.value();
        let e_models = campaign_many_models.evaluate(&f).comm_energy.value();
        assert!(
            (e_iters - e1).abs() < 1e-6,
            "iterations reuse resident data"
        );
        assert!(
            (e_models - 10.0 * e1).abs() < 1e-3,
            "each model re-collects"
        );
    }

    #[test]
    fn dhl_saves_energy_over_optical_for_every_campaign_shape() {
        for (models, iters) in [(1, 1), (5, 10), (20, 100)] {
            let campaign = TrainingCampaign::paper_default(models, iters);
            let saving = campaign.energy_saving(&dhl(), &optical());
            assert!(saving > 5.0, "{models}x{iters}: saving {saving}");
        }
    }

    #[test]
    fn local_iterations_dominate_long_campaigns() {
        let campaign = TrainingCampaign::paper_default(1, 1000);
        let cost = campaign.evaluate(&dhl());
        assert!(cost.local_time > cost.delivery_time * 10.0);
        // Average comm power falls as iterations amortise the delivery.
        let short = TrainingCampaign::paper_default(1, 1).evaluate(&dhl());
        assert!(cost.avg_comm_power.value() < short.avg_comm_power.value() / 10.0);
    }

    #[test]
    fn local_iteration_time_uses_local_bandwidth() {
        let campaign = TrainingCampaign::paper_default(1, 2);
        // 29 PB at 480 GB/s ≈ 60 417 s of local streaming, plus overheads.
        let t = campaign.local_iteration_time().seconds();
        let raw = 29e15 / 480e9;
        assert!(t > raw * 0.9 && t < raw * 1.1, "{t} vs {raw}");
    }

    #[test]
    fn zero_models_cost_nothing() {
        let campaign = TrainingCampaign::paper_default(0, 10);
        let cost = campaign.evaluate(&dhl());
        assert_eq!(cost.total_time.seconds(), 0.0);
        assert_eq!(cost.comm_energy.value(), 0.0);
        assert_eq!(cost.avg_comm_power, Watts::ZERO);
    }
}
