//! Property-based tests for the DHL system simulator.

use dhl_sim::{DhlSystem, ProcessingModel, SimConfig};
use dhl_units::{Bytes, Metres, MetresPerSecond, Seconds};
use proptest::prelude::*;

fn run(cfg: SimConfig, tb: f64) -> dhl_sim::BulkTransferReport {
    DhlSystem::new(cfg)
        .unwrap()
        .run_bulk_transfer(Bytes::from_terabytes(tb))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delivered_always_equals_dataset(tb in 0.0..5_000.0f64) {
        let report = run(SimConfig::paper_default(), tb);
        prop_assert_eq!(report.delivered, Bytes::from_terabytes(tb));
        prop_assert_eq!(report.deliveries, Bytes::from_terabytes(tb).div_ceil(Bytes::from_terabytes(256.0)).max(0));
    }

    #[test]
    fn movements_are_exactly_doubled_deliveries(tb in 1.0..5_000.0f64) {
        // Every delivered cart must also return home.
        let report = run(SimConfig::paper_default(), tb);
        prop_assert_eq!(report.movements, 2 * report.deliveries);
    }

    #[test]
    fn serial_time_matches_closed_form(tb in 1.0..20_000.0f64) {
        let report = run(SimConfig::paper_serial(), tb);
        let trips = 2.0 * report.deliveries as f64;
        prop_assert!((report.completion_time.seconds() - trips * 8.6).abs() < 1e-6);
    }

    #[test]
    fn pipelining_never_hurts(tb in 256.0..10_000.0f64, docks in 1u32..8, carts in 1u32..8) {
        let serial = run(SimConfig::paper_serial(), tb);
        let mut cfg = SimConfig::paper_default();
        cfg.num_carts = carts;
        cfg.endpoints[0].docks = carts;
        cfg.endpoints[1].docks = docks;
        let pipelined = run(cfg, tb);
        prop_assert!(pipelined.completion_time.seconds() <= serial.completion_time.seconds() + 1e-6);
        // Same total physical work regardless of schedule.
        prop_assert_eq!(pipelined.movements, serial.movements);
        prop_assert!((pipelined.total_energy.value() - serial.total_energy.value()).abs() < 1.0);
    }

    #[test]
    fn dual_track_never_slower_than_single(tb in 256.0..10_000.0f64) {
        let single = run(SimConfig::paper_default(), tb);
        let mut cfg = SimConfig::paper_default();
        cfg.dual_track = true;
        let dual = run(cfg, tb);
        prop_assert!(dual.completion_time.seconds() <= single.completion_time.seconds() + 1e-6);
    }

    #[test]
    fn energy_is_linear_in_deliveries(n in 1u64..40) {
        let tb = 256.0 * n as f64;
        let report = run(SimConfig::paper_default(), tb);
        let per_delivery = report.total_energy.value() / n as f64;
        // 2 movements per delivery at ~15.19 kJ each.
        prop_assert!((per_delivery - 2.0 * 15_191.0).abs() < 100.0, "per delivery {per_delivery}");
    }

    #[test]
    fn faster_carts_finish_sooner(tb in 256.0..5_000.0f64) {
        let mut slow = SimConfig::paper_default();
        slow.max_speed = MetresPerSecond::new(100.0);
        let mut fast = SimConfig::paper_default();
        fast.max_speed = MetresPerSecond::new(300.0);
        prop_assert!(run(fast, tb).completion_time.seconds() <= run(slow, tb).completion_time.seconds());
    }

    #[test]
    fn longer_track_takes_longer(tb in 256.0..5_000.0f64) {
        let mut short = SimConfig::paper_default();
        short.endpoints[1].position = Metres::new(100.0);
        let mut long = SimConfig::paper_default();
        long.endpoints[1].position = Metres::new(1000.0);
        prop_assert!(run(short, tb).completion_time.seconds() <= run(long, tb).completion_time.seconds());
    }

    #[test]
    fn processing_dwell_never_speeds_things_up(tb in 256.0..2_000.0f64, dwell in 0.0..200.0f64) {
        let base = run(SimConfig::paper_default(), tb);
        let mut cfg = SimConfig::paper_default();
        cfg.processing = ProcessingModel::Fixed(Seconds::new(dwell));
        let slowed = run(cfg, tb);
        prop_assert!(slowed.completion_time.seconds() >= base.completion_time.seconds() - 1e-6);
    }

    #[test]
    fn track_utilisation_is_a_fraction(tb in 1.0..5_000.0f64) {
        let report = run(SimConfig::paper_default(), tb);
        let u = report.peak_track_utilisation();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilisation {u}");
    }
}
