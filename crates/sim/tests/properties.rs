//! Property-based tests for the DHL system simulator.

use dhl_rng::check::forall;
use dhl_sim::{DhlSystem, ProcessingModel, SimConfig};
use dhl_units::{Bytes, Metres, MetresPerSecond, Seconds};

fn run(cfg: SimConfig, tb: f64) -> dhl_sim::BulkTransferReport {
    DhlSystem::new(cfg)
        .unwrap()
        .run_bulk_transfer(Bytes::from_terabytes(tb))
        .unwrap()
}

#[test]
fn delivered_always_equals_dataset() {
    forall("delivered_always_equals_dataset", 64, |g| {
        let tb = g.f64_in(0.0, 5_000.0);
        let report = run(SimConfig::paper_default(), tb);
        assert_eq!(report.delivered, Bytes::from_terabytes(tb));
        assert_eq!(
            report.deliveries,
            Bytes::from_terabytes(tb).div_ceil(Bytes::from_terabytes(256.0))
        );
    });
}

#[test]
fn movements_are_exactly_doubled_deliveries() {
    forall("movements_are_exactly_doubled_deliveries", 64, |g| {
        // Every delivered cart must also return home.
        let tb = g.f64_in(1.0, 5_000.0);
        let report = run(SimConfig::paper_default(), tb);
        assert_eq!(report.movements, 2 * report.deliveries);
    });
}

#[test]
fn serial_time_matches_closed_form() {
    forall("serial_time_matches_closed_form", 64, |g| {
        let tb = g.f64_in(1.0, 20_000.0);
        let report = run(SimConfig::paper_serial(), tb);
        let trips = 2.0 * report.deliveries as f64;
        assert!((report.completion_time.seconds() - trips * 8.6).abs() < 1e-6);
    });
}

#[test]
fn pipelining_never_hurts() {
    forall("pipelining_never_hurts", 32, |g| {
        let tb = g.f64_in(256.0, 10_000.0);
        let docks = g.u32_in(1, 8);
        let carts = g.u32_in(1, 8);
        let serial = run(SimConfig::paper_serial(), tb);
        let mut cfg = SimConfig::paper_default();
        cfg.num_carts = carts;
        cfg.endpoints[0].docks = carts;
        cfg.endpoints[1].docks = docks;
        let pipelined = run(cfg, tb);
        assert!(pipelined.completion_time.seconds() <= serial.completion_time.seconds() + 1e-6);
        // Same total physical work regardless of schedule.
        assert_eq!(pipelined.movements, serial.movements);
        assert!((pipelined.total_energy.value() - serial.total_energy.value()).abs() < 1.0);
    });
}

#[test]
fn dual_track_never_slower_than_single() {
    forall("dual_track_never_slower_than_single", 32, |g| {
        let tb = g.f64_in(256.0, 10_000.0);
        let single = run(SimConfig::paper_default(), tb);
        let mut cfg = SimConfig::paper_default();
        cfg.dual_track = true;
        let dual = run(cfg, tb);
        assert!(dual.completion_time.seconds() <= single.completion_time.seconds() + 1e-6);
    });
}

#[test]
fn energy_is_linear_in_deliveries() {
    forall("energy_is_linear_in_deliveries", 64, |g| {
        let n = g.u64_in(1, 40);
        let tb = 256.0 * n as f64;
        let report = run(SimConfig::paper_default(), tb);
        let per_delivery = report.total_energy.value() / n as f64;
        // 2 movements per delivery at ~15.19 kJ each.
        assert!(
            (per_delivery - 2.0 * 15_191.0).abs() < 100.0,
            "per delivery {per_delivery}"
        );
    });
}

#[test]
fn faster_carts_finish_sooner() {
    forall("faster_carts_finish_sooner", 32, |g| {
        let tb = g.f64_in(256.0, 5_000.0);
        let mut slow = SimConfig::paper_default();
        slow.max_speed = MetresPerSecond::new(100.0);
        let mut fast = SimConfig::paper_default();
        fast.max_speed = MetresPerSecond::new(300.0);
        assert!(run(fast, tb).completion_time.seconds() <= run(slow, tb).completion_time.seconds());
    });
}

#[test]
fn longer_track_takes_longer() {
    forall("longer_track_takes_longer", 32, |g| {
        let tb = g.f64_in(256.0, 5_000.0);
        let mut short = SimConfig::paper_default();
        short.endpoints[1].position = Metres::new(100.0);
        let mut long = SimConfig::paper_default();
        long.endpoints[1].position = Metres::new(1000.0);
        assert!(
            run(short, tb).completion_time.seconds() <= run(long, tb).completion_time.seconds()
        );
    });
}

#[test]
fn processing_dwell_never_speeds_things_up() {
    forall("processing_dwell_never_speeds_things_up", 32, |g| {
        let tb = g.f64_in(256.0, 2_000.0);
        let dwell = g.f64_in(0.0, 200.0);
        let base = run(SimConfig::paper_default(), tb);
        let mut cfg = SimConfig::paper_default();
        cfg.processing = ProcessingModel::Fixed(Seconds::new(dwell));
        let slowed = run(cfg, tb);
        assert!(slowed.completion_time.seconds() >= base.completion_time.seconds() - 1e-6);
    });
}

#[test]
fn track_utilisation_is_a_fraction() {
    forall("track_utilisation_is_a_fraction", 64, |g| {
        let tb = g.f64_in(1.0, 5_000.0);
        let report = run(SimConfig::paper_default(), tb);
        let u = report.peak_track_utilisation();
        assert!((0.0..=1.0 + 1e-9).contains(&u), "utilisation {u}");
    });
}
