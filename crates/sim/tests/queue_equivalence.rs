//! Differential property tests: the calendar-bucketed [`EventQueue`] must
//! pop in exactly the order the reference `BinaryHeap` implementation pops
//! — identical `(time, seq)` keys, identical payloads, identical clock and
//! lifetime counters — across every workload shape that has historically
//! broken calendar queues: uniform churn, bursty delays, far-future spikes
//! that exercise the overflow tier, dense ties, and mid-stream
//! checkpoint round-trips that rebuild the bucket layout from scratch.
//!
//! The randomized driver is seeded (`DeterministicRng`), so a failure here
//! reproduces exactly; CI runs this suite as its own queue-equivalence job.

use dhl_rng::{DeterministicRng, Rng};
use dhl_sim::engine::{EventQueue, ReferenceQueue};
use dhl_units::Seconds;

/// Interleaves random pushes and pops on both queues, asserting lock-step
/// equivalence, then drains both to empty. `roundtrip_every` additionally
/// serializes and rebuilds the calendar queue mid-stream every N rounds —
/// the rebuilt bucket geometry must not change a single pop.
fn drive(
    seed: u64,
    rounds: u32,
    delay: impl Fn(&mut DeterministicRng) -> f64,
    roundtrip_every: Option<u32>,
) {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut r: ReferenceQueue<u32> = ReferenceQueue::new();
    let mut next_id: u32 = 0;
    for round in 0..rounds {
        for _ in 0..rng.next_u64() % 8 {
            let d = delay(&mut rng);
            q.schedule(Seconds::new(d), next_id);
            r.schedule(Seconds::new(d), next_id);
            next_id += 1;
        }
        for _ in 0..rng.next_u64() % 8 {
            assert_eq!(q.next_time(), r.next_time(), "peek diverged (seed {seed})");
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b, "pop diverged (seed {seed}, round {round})");
            if a.is_none() {
                break;
            }
        }
        if roundtrip_every.is_some_and(|n| round % n == n - 1) {
            let entries: Vec<(Seconds, u64, u32)> = q
                .pending_entries()
                .into_iter()
                .map(|(t, s, e)| (t, s, *e))
                .collect();
            q = EventQueue::from_entries(q.now(), q.next_seq(), q.events_processed(), entries);
        }
    }
    loop {
        assert_eq!(
            q.next_time(),
            r.next_time(),
            "drain peek diverged (seed {seed})"
        );
        let (a, b) = (q.pop(), r.pop());
        assert_eq!(a, b, "drain pop diverged (seed {seed})");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(q.now(), r.now());
    assert_eq!(q.events_processed(), r.events_processed());
    assert_eq!(u64::from(next_id), q.events_processed());
}

#[test]
fn uniform_churn_matches_reference() {
    for seed in 0..8 {
        drive(seed, 400, |rng| rng.random_f64() * 100.0, None);
    }
}

#[test]
fn bursty_delays_match_reference() {
    // Mostly sub-second gaps with occasional thousand-second bursts: the
    // width calibration sees a bimodal distribution and must still order
    // correctly whichever mode it tunes for.
    for seed in 100..108 {
        drive(
            seed,
            400,
            |rng| {
                if rng.next_u64() % 4 == 0 {
                    rng.random_f64() * 1000.0
                } else {
                    rng.random_f64()
                }
            },
            None,
        );
    }
}

#[test]
fn far_future_spikes_exercise_the_overflow_tier() {
    // One in sixteen events lands ~1e6 s out — far beyond any bucket
    // window, so it must route through the unsorted overflow tier and
    // migrate back when the window eventually reaches it.
    for seed in 200..208 {
        drive(
            seed,
            400,
            |rng| {
                if rng.next_u64() % 16 == 0 {
                    1e6 + rng.random_f64() * 1e6
                } else {
                    rng.random_f64() * 10.0
                }
            },
            None,
        );
    }
}

#[test]
fn dense_ties_pop_in_insertion_order() {
    // Delays quantized to four values (including zero) produce long runs
    // of identical times; both queues must break ties by sequence number,
    // i.e. insertion order.
    for seed in 300..308 {
        drive(seed, 400, |rng| (rng.next_u64() % 4) as f64, None);
    }
}

#[test]
fn mid_stream_rebuilds_change_nothing() {
    // Serializing the calendar queue and rebuilding it from entries every
    // 16 rounds rebucketizes everything (fresh width, fresh window); the
    // pop order must be bit-identical to the never-rebuilt reference.
    for seed in 400..404 {
        drive(seed, 400, |rng| rng.random_f64() * 50.0, Some(16));
    }
    for seed in 404..408 {
        drive(
            seed,
            400,
            |rng| {
                if rng.next_u64() % 16 == 0 {
                    1e7 + rng.random_f64() * 1e7
                } else {
                    rng.random_f64() * 5.0
                }
            },
            Some(16),
        );
    }
}
