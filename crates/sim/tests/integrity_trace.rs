//! Trace-replay invariants for the delivery state machine.
//!
//! These tests replay recorded traces and check ordering properties that the
//! in-simulator accounting cannot see: every scrub gets exactly one verdict,
//! reconstructions only follow corrupted verdicts, and the integrity events
//! never interleave with the cart's transit lifecycle.

use dhl_rng::check::forall;
use dhl_sim::config::FaultSpec;
use dhl_sim::{BulkTransferReport, DhlSystem, IntegritySpec, SimConfig, Trace, TraceEventKind};
use dhl_storage::failure::RaidConfig;
use dhl_storage::integrity::CorruptionModel;
use dhl_units::Bytes;

/// Runs a traced bulk transfer and returns the report plus its trace.
fn run_traced(cfg: SimConfig, tb: f64) -> (BulkTransferReport, Trace) {
    let mut sys = DhlSystem::new(cfg).unwrap();
    sys.enable_trace(1 << 16);
    let report = sys.run_bulk_transfer(Bytes::from_terabytes(tb)).unwrap();
    let trace = sys.take_trace().unwrap();
    (report, trace)
}

/// A config that corrupts intermittently: most deliveries reconstruct from
/// parity, some exceed it and re-ship through the fault machinery.
fn corrupting_config(seed: u64, mating_error: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.integrity = Some(IntegritySpec {
        corruption: CorruptionModel {
            mating_error_per_cycle: mating_error,
            ..CorruptionModel::paper_default()
        },
        seed,
        ..IntegritySpec::typical()
    });
    cfg.faults = Some(FaultSpec {
        max_delivery_attempts: 64,
        ..FaultSpec::recovery_only()
    });
    cfg
}

/// Replays a trace and asserts the integrity-event ordering invariants hold
/// for every cart, plus global verdict conservation against the report.
fn assert_integrity_invariants(report: &BulkTransferReport, trace: &Trace) {
    let mut verify_started = 0u64;
    let mut verified = 0u64;
    let mut corrupted_verdicts = 0u64;
    let mut reconstructed_shards = 0u64;
    let mut last_ts = f64::NEG_INFINITY;
    for e in trace.events() {
        assert!(
            e.time.seconds() >= last_ts,
            "trace timestamps must be non-decreasing"
        );
        last_ts = e.time.seconds();
        match e.kind {
            TraceEventKind::VerifyStarted { .. } => verify_started += 1,
            TraceEventKind::PayloadVerified { .. } => verified += 1,
            TraceEventKind::PayloadCorrupted { .. } => corrupted_verdicts += 1,
            TraceEventKind::ShardsReconstructed { shards, .. } => reconstructed_shards += shards,
            _ => {}
        }
    }
    // Every scrub reaches exactly one verdict.
    assert_eq!(verify_started, verified + corrupted_verdicts);
    // Verdicts reconcile with the report's accounting.
    assert_eq!(
        verify_started,
        report.integrity.deliveries_verified + report.integrity.deliveries_reshipped
    );
    assert_eq!(reconstructed_shards, report.integrity.shards_reconstructed);
    for cart in 0..report.max_carts_in_flight as usize {
        assert!(
            trace.lifecycle_is_well_formed(cart),
            "cart {cart} transit lifecycle malformed"
        );
        assert!(
            trace.integrity_lifecycle_is_well_formed(cart),
            "cart {cart} integrity lifecycle malformed"
        );
    }
}

#[test]
fn clean_verification_traces_are_well_formed() {
    let mut cfg = SimConfig::paper_default();
    cfg.integrity = Some(IntegritySpec::verification_only());
    let (report, trace) = run_traced(cfg, 2_048.0);
    assert_integrity_invariants(&report, &trace);
    // No corruption model → no corrupted verdicts at all.
    assert!(!trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::PayloadCorrupted { .. })));
}

#[test]
fn corrupting_runs_preserve_integrity_event_ordering() {
    forall(
        "corrupting_runs_preserve_integrity_event_ordering",
        24,
        |g| {
            let seed = g.u64_in(0, 1 << 20);
            let mating_error = g.f64_in(0.0, 0.2);
            let tb = g.f64_in(256.0, 4_096.0);
            let (report, trace) = run_traced(corrupting_config(seed, mating_error), tb);
            assert_integrity_invariants(&report, &trace);
        },
    );
}

#[test]
fn fully_tolerated_corruption_reconstructs_in_trace() {
    let mut cfg = SimConfig::paper_default();
    cfg.integrity = Some(IntegritySpec {
        corruption: CorruptionModel {
            mating_error_per_cycle: 1.0,
            ..CorruptionModel::paper_default()
        },
        shards_per_cart: 4,
        raid: RaidConfig::new(28, 4).unwrap(),
        ..IntegritySpec::typical()
    });
    let (report, trace) = run_traced(cfg, 1_024.0);
    assert_integrity_invariants(&report, &trace);
    // Every corrupted verdict is followed by a reconstruction, never a
    // delivery failure.
    let corrupted = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::PayloadCorrupted { .. }))
        .count();
    let reconstructions = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::ShardsReconstructed { .. }))
        .count();
    assert!(corrupted > 0);
    assert_eq!(corrupted, reconstructions);
    assert!(!trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::DeliveryFailed { .. })));
}

#[test]
fn same_seed_replays_identical_integrity_traces() {
    let go = |seed| run_traced(corrupting_config(seed, 0.12), 2_048.0);
    let (ra, ta) = go(13);
    let (rb, tb) = go(13);
    assert_eq!(ra, rb);
    assert_eq!(ra.integrity, rb.integrity);
    assert_eq!(ta.events().len(), tb.events().len());
    for (a, b) in ta.events().iter().zip(tb.events().iter()) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.kind, b.kind);
    }
}
