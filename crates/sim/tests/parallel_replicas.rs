//! Determinism properties of the parallel replica driver: any thread count
//! must be bit-identical to the serial loop, mirroring the
//! `parallel_sweep_matches_serial` test in `dhl-core::dse`.

use dhl_rng::check::forall;
use dhl_sim::parallel::{replica_config, run_replicas, ReplicaReport};
use dhl_sim::{DhlSystem, FaultSpec, IntegritySpec, ReliabilitySpec, SimConfig};
use dhl_units::Bytes;

/// A configuration exercising every stochastic stream: SSD failures,
/// physical faults, and silent corruption.
fn stochastic_config() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.reliability = Some(ReliabilitySpec::typical());
    cfg.integrity = Some(IntegritySpec::typical());
    cfg.faults = Some(FaultSpec::recovery_only());
    cfg
}

/// The reference: run each seeded replica serially, merge in index order.
fn serial_reference(cfg: &SimConfig, dataset: Bytes, replicas: usize) -> ReplicaReport {
    let reports = (0..replicas)
        .map(|i| {
            DhlSystem::new(replica_config(cfg.clone(), i as u64))
                .unwrap()
                .run_bulk_transfer(dataset)
                .unwrap()
        })
        .collect();
    ReplicaReport::from_reports(reports)
}

#[test]
fn any_thread_count_is_bit_identical_to_the_serial_loop() {
    let cfg = stochastic_config();
    let dataset = Bytes::from_petabytes(2.0);
    let replicas = 9; // deliberately not a multiple of any thread count
    let serial = serial_reference(&cfg, dataset, replicas);
    assert_eq!(serial.replica_count(), replicas);
    for threads in [1, 2, 4, 16, 1000] {
        let parallel = run_replicas(&cfg, dataset, replicas, threads).unwrap();
        // Simulation outcomes, per replica and in order.
        assert_eq!(parallel.reports, serial.reports, "threads = {threads}");
        // The merged snapshot — counters, wall-free gauges, histograms —
        // down to the exact JSON bytes.
        assert_eq!(
            parallel.metrics.to_json(),
            serial.metrics.to_json(),
            "threads = {threads}"
        );
        // And the full merged report, aggregates included.
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

#[test]
fn randomised_workloads_stay_thread_count_independent() {
    forall(
        "randomised_workloads_stay_thread_count_independent",
        12,
        |g| {
            let dataset = Bytes::from_terabytes(g.f64_in(1.0, 4_000.0));
            let replicas = 1 + (g.u64_in(0, 6) as usize);
            let threads = 1 + (g.u64_in(0, 31) as usize);
            let cfg = stochastic_config();
            let serial = serial_reference(&cfg, dataset, replicas);
            let parallel = run_replicas(&cfg, dataset, replicas, threads).unwrap();
            assert_eq!(
                parallel, serial,
                "replicas = {replicas}, threads = {threads}"
            );
            assert_eq!(parallel.metrics.to_json(), serial.metrics.to_json());
        },
    );
}

#[test]
fn merged_aggregates_summarise_the_replica_outcomes() {
    let cfg = stochastic_config();
    let dataset = Bytes::from_petabytes(1.0);
    let merged = run_replicas(&cfg, dataset, 5, 4).unwrap();
    let times: Vec<f64> = merged
        .reports
        .iter()
        .map(|r| r.completion_time.seconds())
        .collect();
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    assert!((merged.completion_time.mean - mean).abs() < 1e-9);
    assert!(merged.completion_time.min <= merged.completion_time.p50);
    assert!(merged.completion_time.p50 <= merged.completion_time.p95);
    assert!(merged.completion_time.p95 <= merged.completion_time.max);
    assert!(merged.completion_time.ci95 >= 0.0);
    // Counters merged across replicas: deliveries sum exactly.
    let total_deliveries: u64 = merged.reports.iter().map(|r| r.deliveries).sum();
    assert_eq!(
        merged.metrics.counter("sim.deliveries"),
        Some(total_deliveries)
    );
}
