//! Pre-interned metric handles for the simulator's hot paths.
//!
//! Every metric [`crate::system::DhlSystem`] records is registered once,
//! up front, into a [`SimMetrics`] bundle of `Copy` ids; hot-path recording
//! is then a dense-slot write through [`MetricsRegistry::add`] /
//! [`MetricsRegistry::record`] instead of a name lookup per event. The
//! bundle must be re-registered whenever the registry itself is replaced
//! (`set_metrics_enabled`, checkpoint resume) — registration is idempotent,
//! so ids stay stable across re-registration against the same registry.

use dhl_obs::{CounterId, GaugeId, HistogramId, MetricsRegistry};

/// Handles for every metric the simulator records.
#[derive(Copy, Clone, Debug)]
pub(crate) struct SimMetrics {
    // Counters bumped inside the event loop.
    pub repressurisations: CounterId,
    pub cart_stalls: CounterId,
    pub carts_launched: CounterId,
    pub connector_replacements: CounterId,
    pub deliveries: CounterId,
    pub dock_controller_crashes: CounterId,
    pub ssd_failures: CounterId,
    pub data_loss_events: CounterId,
    pub delivery_failures: CounterId,
    pub redeliveries: CounterId,
    pub shards_scanned: CounterId,
    pub deliveries_verified: CounterId,
    pub shards_corrupted: CounterId,
    pub shards_reconstructed: CounterId,
    pub deliveries_reshipped: CounterId,
    // End-of-run accounting counters.
    pub events: CounterId,
    pub events_processed: CounterId,
    pub events_clamped: CounterId,
    // Histograms observed inside the event loop.
    pub transit_s: HistogramId,
    pub queue_depth: HistogramId,
    pub dock_recovery_s: HistogramId,
    pub verify_s: HistogramId,
    pub reconstruction_s: HistogramId,
    // End-of-run pacing gauges.
    pub completion_s: GaugeId,
    pub wall_time_s: GaugeId,
    pub sim_seconds_per_wall_second: GaugeId,
    pub events_per_wall_second: GaugeId,
}

impl SimMetrics {
    /// Interns every simulator metric in `registry` and returns the handle
    /// bundle. Call again after swapping the registry out — handles are
    /// only valid for the registry (or clones of it) that issued them.
    pub fn register(registry: &mut MetricsRegistry) -> Self {
        Self {
            repressurisations: registry.register_counter("sim.repressurisations"),
            cart_stalls: registry.register_counter("sim.cart_stalls"),
            carts_launched: registry.register_counter("sim.carts_launched"),
            connector_replacements: registry.register_counter("sim.connector_replacements"),
            deliveries: registry.register_counter("sim.deliveries"),
            dock_controller_crashes: registry.register_counter("sim.dock_controller_crashes"),
            ssd_failures: registry.register_counter("sim.ssd_failures"),
            data_loss_events: registry.register_counter("sim.data_loss_events"),
            delivery_failures: registry.register_counter("sim.delivery_failures"),
            redeliveries: registry.register_counter("sim.redeliveries"),
            shards_scanned: registry.register_counter("sim.shards_scanned"),
            deliveries_verified: registry.register_counter("sim.deliveries_verified"),
            shards_corrupted: registry.register_counter("sim.shards_corrupted"),
            shards_reconstructed: registry.register_counter("sim.shards_reconstructed"),
            deliveries_reshipped: registry.register_counter("sim.deliveries_reshipped"),
            events: registry.register_counter("sim.events"),
            events_processed: registry.register_counter("engine.events_processed"),
            events_clamped: registry.register_counter("sim.events_clamped"),
            transit_s: registry.register_histogram("sim.transit_s"),
            queue_depth: registry.register_histogram("sim.queue_depth"),
            dock_recovery_s: registry.register_histogram("sim.dock_recovery_s"),
            verify_s: registry.register_histogram("sim.verify_s"),
            reconstruction_s: registry.register_histogram("sim.reconstruction_s"),
            completion_s: registry.register_gauge("sim.completion_s"),
            wall_time_s: registry.register_gauge("sim.wall_time_s"),
            sim_seconds_per_wall_second: registry.register_gauge("sim.sim_seconds_per_wall_second"),
            events_per_wall_second: registry.register_gauge("sim.events_per_wall_second"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_invisible() {
        let mut reg = MetricsRegistry::enabled();
        let a = SimMetrics::register(&mut reg);
        let b = SimMetrics::register(&mut reg);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.transit_s, b.transit_s);
        assert_eq!(a.wall_time_s, b.wall_time_s);
        assert!(
            reg.snapshot().is_empty(),
            "registering handles must not create visible metrics"
        );
        reg.add(a.deliveries, 2);
        reg.add(b.deliveries, 1);
        assert_eq!(reg.snapshot().counter("sim.deliveries"), Some(3));
    }
}
