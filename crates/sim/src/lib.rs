//! Discrete-event simulation of the full DHL system (§III).
//!
//! Four layers:
//!
//! - [`engine`]: a minimal deterministic event queue with a simulated clock;
//! - [`DhlSystem`]: the event-driven system simulator — cart fleet, library,
//!   docking stations, track contention (no-passing headway, bidirectional
//!   track draining, §VI dual-track option), movement energy from
//!   `dhl-physics`, and the §V-B bulk-transfer mission;
//! - [`parallel`]: seeded Monte-Carlo replica fan-out across scoped threads
//!   with deterministic, order-independent merging — any thread count
//!   produces bit-identical merged reports;
//! - [`api::DhlApi`]: the paper's four-command software API (§III-D —
//!   **Open/Close/Read/Write**) as a synchronous facade, with optional SSD
//!   failure injection and connector-wear tracking.
//!
//! The DES exists to validate (and stress) the analytical model in
//! `dhl-core`: in the strictly serial configuration its results coincide
//! with the paper's closed-form doubled-trip accounting, and with pipelining
//! enabled it quantifies how much the paper's conservative accounting leaves
//! on the table.
//!
//! # Example
//!
//! ```rust
//! use dhl_sim::{DhlSystem, SimConfig};
//! use dhl_units::Bytes;
//!
//! let mut sim = DhlSystem::new(SimConfig::paper_default()).unwrap();
//! let report = sim.run_bulk_transfer(Bytes::from_petabytes(29.0)).unwrap();
//! assert_eq!(report.deliveries, 114);
//! assert_eq!(report.delivered, Bytes::from_petabytes(29.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod arena;
pub mod arrivals;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub(crate) mod metrics;
pub mod movement;
pub mod parallel;
pub mod report;
pub mod system;
pub mod trace;

pub use arena::CartHandle;
pub use arrivals::{Arrival, ArrivalGenerator, ArrivalProcess, ArrivalSpec, ArrivalState};
pub use checkpoint::{config_fingerprint, Checkpoint, CheckpointError};
pub use config::{
    CartStallSpec, ConfigError, ConnectorFaultSpec, DockControllerFaultSpec, DockRecoveryPolicy,
    EndpointKind, EndpointSpec, FaultSpec, IntegritySpec, ProcessingModel, ReliabilitySpec,
    RepressurisationSpec, SimConfig,
};
pub use movement::MovementCost;
pub use parallel::{
    default_threads, parallel_map, run_replicas, run_replicas_with_recovery, CrashInjection,
    RecoveryOptions, ReplicaReport, ReplicaSet, ReplicaStats,
};
pub use report::{BulkTransferReport, IntegrityReport, ReliabilityReport};
pub use system::{CartId, CartLocation, DhlSystem, Direction, EndpointId, SimError};
pub use trace::{Trace, TraceEvent, TraceEventKind, TraceSink};
