//! Simulation configuration (Table V parameters + system layout).

use serde::{Deserialize, Serialize};

use dhl_physics::{
    ActiveStabilisation, BrakingSystem, CartMassModel, LevitationModel, LinearInductionMotor,
    PhysicsError, TimeModel,
};
use dhl_storage::failure::{FailureModel, RaidConfig};
use dhl_units::{Bytes, Kilograms, Metres, Seconds};

/// Stochastic SSD-failure injection for the system simulator (§III-D:
/// "if an SSD fails in-flight, the endpoint's DHL API will report the
/// error, and RAID and backups can ameliorate the issue").
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ReliabilitySpec {
    /// Per-SSD failure model.
    pub failure: FailureModel,
    /// RAID layout across each cart's SSDs.
    pub raid: RaidConfig,
    /// SSDs per cart.
    pub ssds_per_cart: u32,
    /// RNG seed (simulations stay deterministic).
    pub seed: u64,
}

impl ReliabilitySpec {
    /// Typical enterprise drives (1 % AFR) under 28+4 RAID on a 32-SSD cart.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            failure: FailureModel::typical_enterprise_ssd(),
            raid: RaidConfig::new(28, 4).expect("valid layout"),
            ssds_per_cart: 32,
            seed: 0xD41,
        }
    }
}

/// What an endpoint is for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EndpointKind {
    /// The cart library: cold storage at one end of the track (§III-B.6).
    Library,
    /// A rack endpoint with server-connected docking stations (§III-B.5).
    Rack,
}

/// One endpoint along the track.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct EndpointSpec {
    /// Position along the track, measured from the library.
    pub position: Metres,
    /// Number of docking stations (concurrent carts it can hold).
    pub docks: u32,
    /// Role of the endpoint.
    pub kind: EndpointKind,
}

/// Error validating a [`SimConfig`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// Fewer than two endpoints, or the first is not a library.
    BadEndpoints(String),
    /// Endpoint positions must be strictly increasing from the library at 0.
    NonMonotonicPositions,
    /// No carts configured, or the library cannot hold the fleet.
    BadFleet(String),
    /// An embedded physics parameter was invalid.
    Physics(PhysicsError),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadEndpoints(msg) | Self::BadFleet(msg) => f.write_str(msg),
            Self::NonMonotonicPositions => {
                f.write_str("endpoint positions must be strictly increasing")
            }
            Self::Physics(e) => write!(f, "invalid physics parameter: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Physics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysicsError> for ConfigError {
    fn from(e: PhysicsError) -> Self {
        Self::Physics(e)
    }
}

/// How long a cart spends docked at a rack before it may return.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProcessingModel {
    /// Released immediately after docking — the pure-transfer accounting of
    /// Table VI.
    Instant,
    /// The rack reads the full cart through its PCIe docking link first;
    /// duration = capacity ÷ bandwidth (bytes/s).
    PcieRead {
        /// Effective docked read bandwidth in bytes per second.
        bandwidth_bytes_per_second: f64,
    },
    /// A fixed dwell time.
    Fixed(Seconds),
}

/// Full configuration of a DHL system simulation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Endpoints in track order; `endpoints[0]` must be the library at 0 m.
    pub endpoints: Vec<EndpointSpec>,
    /// Maximum cruise speed (Table V: 100/**200**/300 m/s).
    pub max_speed: dhl_units::MetresPerSecond,
    /// The LIM (efficiency + acceleration, Table V: 75 %, 1000 m/s²).
    pub lim: LinearInductionMotor,
    /// Trip-time accounting (default: paper-matching single ramp).
    pub time_model: TimeModel,
    /// Time to dock (Table V pessimistic: 3 s).
    pub dock_time: Seconds,
    /// Time to undock (Table V pessimistic: 3 s).
    pub undock_time: Seconds,
    /// Data capacity of each cart (Table V: 128/**256**/512 TB).
    pub cart_capacity: Bytes,
    /// Mass of each loaded cart (Table V: 161/**282**/524 g).
    pub cart_mass: Kilograms,
    /// Fleet size (carts stored in the library).
    pub num_carts: u32,
    /// Dual unidirectional tracks instead of one bidirectional track (§VI).
    pub dual_track: bool,
    /// Braking system at the receiving end (§VI alternatives).
    pub braking: BrakingSystem,
    /// Levitation/drag model.
    pub levitation: LevitationModel,
    /// Active-stabilisation power model.
    pub stabilisation: ActiveStabilisation,
    /// Rack-side dwell model.
    pub processing: ProcessingModel,
    /// Optional in-flight SSD failure injection.
    pub reliability: Option<ReliabilitySpec>,
}

impl SimConfig {
    /// The paper's default system: library at 0 m (fleet-sized docks), one
    /// rack at 500 m with 4 docking stations, 200 m/s, 256 TB / 282 g carts,
    /// 8-cart fleet, single track, LIM braking, instant processing.
    #[must_use]
    pub fn paper_default() -> Self {
        let num_carts = 8;
        Self {
            endpoints: vec![
                EndpointSpec {
                    position: Metres::ZERO,
                    docks: num_carts,
                    kind: EndpointKind::Library,
                },
                EndpointSpec {
                    position: Metres::new(500.0),
                    docks: 4,
                    kind: EndpointKind::Rack,
                },
            ],
            max_speed: dhl_units::MetresPerSecond::new(200.0),
            lim: LinearInductionMotor::paper_default(),
            time_model: TimeModel::PaperSingleRamp,
            dock_time: Seconds::new(3.0),
            undock_time: Seconds::new(3.0),
            cart_capacity: Bytes::from_terabytes(256.0),
            cart_mass: CartMassModel::paper_default().budget(32).total,
            num_carts,
            dual_track: false,
            braking: BrakingSystem::paper_default(),
            levitation: LevitationModel::paper_default(),
            stabilisation: ActiveStabilisation::paper_default(),
            processing: ProcessingModel::Instant,
            reliability: None,
        }
    }

    /// A strictly serial configuration — one cart, one rack dock — whose
    /// bulk-transfer behaviour matches the paper's analytical "doubled
    /// trips" accounting exactly.
    #[must_use]
    pub fn paper_serial() -> Self {
        let mut cfg = Self::paper_default();
        cfg.num_carts = 1;
        cfg.endpoints[0].docks = 1;
        cfg.endpoints[1].docks = 1;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the first violated constraint: endpoint
    /// layout, fleet sizing, or embedded physics parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.endpoints.len() < 2 {
            return Err(ConfigError::BadEndpoints(
                "a DHL needs at least a library and one rack endpoint".into(),
            ));
        }
        if self.endpoints[0].kind != EndpointKind::Library
            || self.endpoints[0].position.value() != 0.0
        {
            return Err(ConfigError::BadEndpoints(
                "endpoint 0 must be the library at position 0".into(),
            ));
        }
        for pair in self.endpoints.windows(2) {
            if pair[1].position.value() <= pair[0].position.value() {
                return Err(ConfigError::NonMonotonicPositions);
            }
        }
        if self.num_carts == 0 {
            return Err(ConfigError::BadFleet("fleet must contain at least one cart".into()));
        }
        if self.endpoints[0].docks < self.num_carts {
            return Err(ConfigError::BadFleet(format!(
                "library has {} docks but the fleet holds {} carts",
                self.endpoints[0].docks, self.num_carts
            )));
        }
        for ep in &self.endpoints {
            if ep.docks == 0 {
                return Err(ConfigError::BadEndpoints(
                    "every endpoint needs at least one docking station".into(),
                ));
            }
        }
        if !(self.max_speed.value() > 0.0) {
            return Err(ConfigError::Physics(PhysicsError::NonPositive {
                what: "max speed",
                value: self.max_speed.value(),
            }));
        }
        if self.dock_time.seconds() < 0.0 || self.undock_time.seconds() < 0.0 {
            return Err(ConfigError::BadEndpoints(
                "dock/undock times must be non-negative".into(),
            ));
        }
        if !(self.cart_mass.value() > 0.0) {
            return Err(ConfigError::Physics(PhysicsError::NonPositive {
                what: "cart mass",
                value: self.cart_mass.value(),
            }));
        }
        Ok(())
    }

    /// Track length: the position of the farthest endpoint.
    #[must_use]
    pub fn track_length(&self) -> Metres {
        self.endpoints
            .last()
            .map(|e| e.position)
            .unwrap_or(Metres::ZERO)
    }

    /// The minimum launch headway between same-direction carts: successive
    /// arrivals must be spaced by at least the docking time so the previous
    /// cart has been lifted clear (§III-B.5).
    #[must_use]
    pub fn launch_headway(&self) -> Seconds {
        self.dock_time.max(self.undock_time)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        SimConfig::paper_default().validate().unwrap();
        SimConfig::paper_serial().validate().unwrap();
    }

    #[test]
    fn paper_default_matches_table_v() {
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.max_speed.value(), 200.0);
        assert_eq!(cfg.track_length().value(), 500.0);
        assert_eq!(cfg.cart_capacity.terabytes(), 256.0);
        assert!((cfg.cart_mass.grams() - 281.92).abs() < 0.01);
        assert_eq!(cfg.dock_time.seconds(), 3.0);
        assert_eq!(cfg.undock_time.seconds(), 3.0);
        assert_eq!(cfg.lim.efficiency(), 0.75);
    }

    #[test]
    fn rejects_missing_rack() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints.truncate(1);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadEndpoints(_))));
    }

    #[test]
    fn rejects_non_library_first_endpoint() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[0].kind = EndpointKind::Rack;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_unordered_positions() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints.push(EndpointSpec {
            position: Metres::new(300.0),
            docks: 1,
            kind: EndpointKind::Rack,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::NonMonotonicPositions));
    }

    #[test]
    fn rejects_undersized_library() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[0].docks = 2; // fleet is 8
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFleet(_))));
    }

    #[test]
    fn rejects_zero_carts_and_zero_docks() {
        let mut cfg = SimConfig::paper_default();
        cfg.num_carts = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[1].docks = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn headway_is_dock_time() {
        assert_eq!(SimConfig::paper_default().launch_headway().seconds(), 3.0);
    }

    #[test]
    fn error_display() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[0].docks = 2;
        let msg = format!("{}", cfg.validate().unwrap_err());
        assert!(msg.contains("library has 2 docks"));
    }
}
