//! Simulation configuration (Table V parameters + system layout).

use serde::{Deserialize, Serialize};

use dhl_physics::{
    ActiveStabilisation, BrakingSystem, CartMassModel, LevitationModel, LinearInductionMotor,
    PhysicsError, TimeModel, VacuumTube,
};
use dhl_storage::connectors::ConnectorKind;
use dhl_storage::failure::{FailureModel, RaidConfig};
use dhl_storage::integrity::CorruptionModel;
use dhl_storage::wear::EnduranceModel;
use dhl_units::{Bytes, Kilograms, Metres, MetresPerSecond, Seconds, Watts};

/// Stochastic SSD-failure injection for the system simulator (§III-D:
/// "if an SSD fails in-flight, the endpoint's DHL API will report the
/// error, and RAID and backups can ameliorate the issue").
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ReliabilitySpec {
    /// Per-SSD failure model.
    pub failure: FailureModel,
    /// RAID layout across each cart's SSDs.
    pub raid: RaidConfig,
    /// SSDs per cart.
    pub ssds_per_cart: u32,
    /// RNG seed (simulations stay deterministic).
    pub seed: u64,
}

impl ReliabilitySpec {
    /// Typical enterprise drives (1 % AFR) under 28+4 RAID on a 32-SSD cart.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            failure: FailureModel::typical_enterprise_ssd(),
            raid: RaidConfig::new(28, 4).expect("valid layout"),
            ssds_per_cart: 32,
            seed: 0xD41,
        }
    }
}

/// End-to-end payload integrity: verify-on-dock, RAID reconstruction, and
/// bounded re-shipment.
///
/// Setting `SimConfig::integrity` to `Some` replaces arrival==delivery with
/// the full delivery state machine: every rack arrival is checksummed
/// against its staged [`dhl_storage::integrity::ShardManifest`] (consuming
/// dock read time and energy), corrupted shards are rebuilt from `raid`
/// parity when [`RaidConfig::tolerates`] holds, and over-tolerance
/// corruption triggers a re-shipment through the PR-1 retry machinery
/// (bounded by `FaultSpec::max_delivery_attempts` when faults are on, one
/// attempt otherwise).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct IntegritySpec {
    /// Silent-corruption hazard model (wear, connector, and thermal terms).
    pub corruption: CorruptionModel,
    /// Shards per fully loaded cart; checksum granularity. The default maps
    /// one shard per SSD so RAID tolerance arithmetic lines up 1:1.
    pub shards_per_cart: u32,
    /// Dock-side scrub bandwidth for verify-on-dock, bytes per second.
    pub verify_bandwidth_bytes_per_second: f64,
    /// Dock-side power drawn while scrubbing (charged to transfer energy).
    pub verify_power: Watts,
    /// Parity-rebuild read bandwidth, bytes per second (reconstruction
    /// reads the surviving stripe, so it is slower than a sequential scrub).
    pub reconstruct_bandwidth_bytes_per_second: f64,
    /// RAID layout used to reconstruct corrupted shards.
    pub raid: RaidConfig,
    /// NAND endurance rating: restaging wear scales the bit-rot hazard.
    pub endurance: EnduranceModel,
    /// Connector family assumed for mating-error wear when connector fault
    /// injection is off (when it is on, the fault-tracked connector's actual
    /// cycle count is used instead).
    pub connector: ConnectorKind,
    /// RNG seed for corruption sampling (independent of the reliability and
    /// fault streams, so enabling integrity never perturbs them).
    pub seed: u64,
}

impl IntegritySpec {
    /// Verify-on-dock over a PCIe-class dock scrub (64 GB/s) at 320 W, one
    /// shard per SSD on the default 32-drive cart, 28+4 RAID rebuilds at a
    /// quarter of scrub speed, and the nominal corruption hazard.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            corruption: CorruptionModel::paper_default(),
            shards_per_cart: 32,
            verify_bandwidth_bytes_per_second: 64e9,
            verify_power: Watts::new(320.0),
            reconstruct_bandwidth_bytes_per_second: 16e9,
            raid: RaidConfig::new(28, 4).expect("valid layout"),
            endurance: EnduranceModel::rocket_4_plus_8tb(),
            connector: ConnectorKind::UsbC,
            seed: 0x1D7,
        }
    }

    /// Verification with corruption injection switched off: scrubs still
    /// cost time and energy, but every payload verifies clean.
    #[must_use]
    pub fn verification_only() -> Self {
        Self {
            corruption: CorruptionModel::disabled(),
            ..Self::typical()
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let bad = |msg: String| Err(ConfigError::BadIntegrity(msg));
        if self.shards_per_cart == 0 {
            return bad("shards_per_cart must be at least 1".into());
        }
        for (name, bw) in [
            ("verify bandwidth", self.verify_bandwidth_bytes_per_second),
            (
                "reconstruction bandwidth",
                self.reconstruct_bandwidth_bytes_per_second,
            ),
        ] {
            if !bw.is_finite() || bw <= 0.0 {
                return bad(format!("{name} must be positive and finite, got {bw}"));
            }
        }
        if !self.verify_power.value().is_finite() || self.verify_power.value() < 0.0 {
            return bad(format!(
                "verify power must be non-negative and finite, got {}",
                self.verify_power.value()
            ));
        }
        if let Err(msg) = self.corruption.validate() {
            return bad(format!("corruption model: {msg}"));
        }
        Ok(())
    }
}

/// A cart mechanical fault: the cart stalls in-tube and blocks its track
/// direction until a repair crew frees it.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CartStallSpec {
    /// Probability that any single movement stalls mid-tube.
    pub probability_per_movement: f64,
    /// How long the cart blocks the track before it can continue.
    pub repair_time: Seconds,
}

/// A docking-connector fault, driven by the `dhl-storage::connectors` wear
/// model: every dock mates the cart's connector; once its rated cycles are
/// spent, docking takes an extra replacement window.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ConnectorFaultSpec {
    /// Connector family fitted to every cart.
    pub kind: ConnectorKind,
    /// Time to swap a worn connector at the docking station.
    pub replacement_time: Seconds,
}

/// A tube-section repressurisation event: the track stays usable, but air
/// density (and therefore drag) rises, so carts are speed-limited until the
/// pumps recover the rough vacuum.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RepressurisationSpec {
    /// Probability that any single movement triggers a leak event.
    pub probability_per_movement: f64,
    /// How long the section stays at degraded pressure.
    pub duration: Seconds,
    /// Pressure during the event, in millibar (nominal is 1 mbar).
    pub degraded_pressure_millibar: f64,
}

impl RepressurisationSpec {
    /// The speed limit while degraded: the fastest cruise whose aerodynamic
    /// drag at the degraded pressure does not exceed the drag budget at
    /// nominal pressure and full speed (`F = ½ρv²C_dA` via
    /// [`VacuumTube::aero_drag`], so `v_deg = v_max·√(ρ_nom/ρ_deg)`).
    #[must_use]
    pub fn degraded_speed(
        &self,
        max_speed: MetresPerSecond,
        track_length: Metres,
    ) -> MetresPerSecond {
        let Ok(nominal) = VacuumTube::paper_default(track_length) else {
            return max_speed;
        };
        let Ok(degraded) = VacuumTube::new(
            self.degraded_pressure_millibar,
            VacuumTube::PAPER_FRONTAL_AREA,
            VacuumTube::PAPER_DRAG_COEFFICIENT,
            track_length,
            VacuumTube::PAPER_PUMP_POWER_PER_METRE,
        ) else {
            return max_speed;
        };
        let budget = nominal.aero_drag(max_speed).value();
        let at_max = degraded.aero_drag(max_speed).value();
        if at_max <= budget {
            return max_speed;
        }
        max_speed * (budget / at_max).sqrt()
    }
}

/// How a crashed dock-station controller gets back into service. Each
/// policy charges a different recovery latency (and dock-side energy) to
/// the docking that triggered the crash.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DockRecoveryPolicy {
    /// Replay the controller's write-ahead journal: a fixed, payload-size
    /// independent latency ([`DockControllerFaultSpec::journal_replay_time`]).
    JournalReplay,
    /// Rebuild controller state by re-scanning the docked cart's payload:
    /// latency = payload ÷
    /// [`DockControllerFaultSpec::rebuild_scan_bandwidth_bytes_per_second`].
    RebuildFromScan,
}

/// A crash-prone dock-station controller (the rack-side embedded system
/// that sequences docking, §III-B.5). A crash strikes while a loaded cart
/// is docking at a rack; the docking stalls for the policy's recovery
/// latency, the recovery draws [`DockControllerFaultSpec::recovery_power`],
/// and the downtime is charged against the rack's availability.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DockControllerFaultSpec {
    /// Probability that any single loaded rack docking crashes the
    /// controller.
    pub crash_probability_per_docking: f64,
    /// How the controller recovers.
    pub recovery: DockRecoveryPolicy,
    /// Fixed journal-replay latency ([`DockRecoveryPolicy::JournalReplay`]).
    pub journal_replay_time: Seconds,
    /// Payload re-scan bandwidth in bytes per second
    /// ([`DockRecoveryPolicy::RebuildFromScan`]).
    pub rebuild_scan_bandwidth_bytes_per_second: f64,
    /// Dock-side power drawn for the duration of the recovery.
    pub recovery_power: Watts,
}

impl DockControllerFaultSpec {
    /// A controller that crashes on 0.1 % of loaded dockings and recovers
    /// by replaying its journal in 30 s at 150 W.
    #[must_use]
    pub fn journal_replay() -> Self {
        Self {
            crash_probability_per_docking: 1e-3,
            recovery: DockRecoveryPolicy::JournalReplay,
            journal_replay_time: Seconds::new(30.0),
            rebuild_scan_bandwidth_bytes_per_second: 8e9,
            recovery_power: Watts::new(150.0),
        }
    }

    /// The same crash hazard recovered by re-scanning the docked payload at
    /// 8 GB/s — cheap for small payloads, far slower than journal replay for
    /// a full 256 TB cart.
    #[must_use]
    pub fn rebuild_from_scan() -> Self {
        Self {
            recovery: DockRecoveryPolicy::RebuildFromScan,
            ..Self::journal_replay()
        }
    }
}

/// Fault injection and recovery policy for the system simulator.
///
/// Setting `SimConfig::faults` to `Some` switches the simulator from the
/// legacy "count losses and carry on" accounting to the full recovery state
/// machine: RAID-uncovered deliveries are re-dispatched from the library
/// (bounded by [`FaultSpec::max_delivery_attempts`]), stalled carts block
/// and later release their track, worn connectors cost replacement time,
/// and repressurised sections speed-limit traffic.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Cart mechanical stalls (None disables the fault class).
    pub cart_stall: Option<CartStallSpec>,
    /// Docking-connector wear faults (None disables the fault class).
    pub docking_connector: Option<ConnectorFaultSpec>,
    /// Tube repressurisation events (None disables the fault class).
    pub repressurisation: Option<RepressurisationSpec>,
    /// Crash-prone rack dock-station controllers (None disables the fault
    /// class).
    pub dock_controller: Option<DockControllerFaultSpec>,
    /// Delivery attempts per shard before the run aborts with
    /// [`crate::SimError::DeliveryAbandoned`]. Must be at least 1.
    pub max_delivery_attempts: u32,
}

impl FaultSpec {
    /// Recovery machinery only: redeliver RAID-uncovered shards (up to 3
    /// attempts) with every physical fault class disabled.
    #[must_use]
    pub fn recovery_only() -> Self {
        Self {
            cart_stall: None,
            docking_connector: None,
            repressurisation: None,
            dock_controller: None,
            max_delivery_attempts: 3,
        }
    }

    /// A pessimistic all-faults-on profile for stress runs: 0.1 % stall and
    /// leak rates, USB-C connectors, 60 s repairs.
    #[must_use]
    pub fn stress() -> Self {
        Self {
            cart_stall: Some(CartStallSpec {
                probability_per_movement: 1e-3,
                repair_time: Seconds::new(60.0),
            }),
            docking_connector: Some(ConnectorFaultSpec {
                kind: ConnectorKind::UsbC,
                replacement_time: Seconds::new(60.0),
            }),
            repressurisation: Some(RepressurisationSpec {
                probability_per_movement: 1e-3,
                duration: Seconds::new(120.0),
                degraded_pressure_millibar: 100.0,
            }),
            dock_controller: Some(DockControllerFaultSpec::journal_replay()),
            max_delivery_attempts: 3,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let bad = |msg: String| Err(ConfigError::BadFaults(msg));
        if self.max_delivery_attempts == 0 {
            return bad("max_delivery_attempts must be at least 1".into());
        }
        if let Some(stall) = &self.cart_stall {
            if !(0.0..=1.0).contains(&stall.probability_per_movement) {
                return bad(format!(
                    "cart stall probability {} outside [0, 1]",
                    stall.probability_per_movement
                ));
            }
            if stall.repair_time.seconds() < 0.0 || !stall.repair_time.is_finite() {
                return bad("cart stall repair time must be non-negative and finite".into());
            }
        }
        if let Some(conn) = &self.docking_connector {
            if conn.replacement_time.seconds() < 0.0 || !conn.replacement_time.is_finite() {
                return bad("connector replacement time must be non-negative and finite".into());
            }
        }
        if let Some(dock) = &self.dock_controller {
            if !(0.0..=1.0).contains(&dock.crash_probability_per_docking) {
                return bad(format!(
                    "dock controller crash probability {} outside [0, 1]",
                    dock.crash_probability_per_docking
                ));
            }
            if dock.journal_replay_time.seconds() < 0.0 || !dock.journal_replay_time.is_finite() {
                return bad("journal replay time must be non-negative and finite".into());
            }
            let bw = dock.rebuild_scan_bandwidth_bytes_per_second;
            if !bw.is_finite() || bw <= 0.0 {
                return bad(format!(
                    "rebuild scan bandwidth must be positive and finite, got {bw}"
                ));
            }
            let p = dock.recovery_power.value();
            if !p.is_finite() || p < 0.0 {
                return bad(format!(
                    "dock recovery power must be non-negative and finite, got {p}"
                ));
            }
        }
        if let Some(rep) = &self.repressurisation {
            if !(0.0..=1.0).contains(&rep.probability_per_movement) {
                return bad(format!(
                    "repressurisation probability {} outside [0, 1]",
                    rep.probability_per_movement
                ));
            }
            if rep.duration.seconds() < 0.0 || !rep.duration.is_finite() {
                return bad("repressurisation duration must be non-negative and finite".into());
            }
            if rep.degraded_pressure_millibar <= 0.0 || rep.degraded_pressure_millibar.is_nan() {
                return bad(format!(
                    "degraded pressure {} mbar must be positive",
                    rep.degraded_pressure_millibar
                ));
            }
        }
        Ok(())
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::recovery_only()
    }
}

/// What an endpoint is for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EndpointKind {
    /// The cart library: cold storage at one end of the track (§III-B.6).
    Library,
    /// A rack endpoint with server-connected docking stations (§III-B.5).
    Rack,
}

/// One endpoint along the track.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct EndpointSpec {
    /// Position along the track, measured from the library.
    pub position: Metres,
    /// Number of docking stations (concurrent carts it can hold).
    pub docks: u32,
    /// Role of the endpoint.
    pub kind: EndpointKind,
}

/// Error validating a [`SimConfig`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// Fewer than two endpoints, or the first is not a library.
    BadEndpoints(String),
    /// Endpoint positions must be strictly increasing from the library at 0.
    NonMonotonicPositions,
    /// No carts configured, or the library cannot hold the fleet.
    BadFleet(String),
    /// An embedded physics parameter was invalid.
    Physics(PhysicsError),
    /// An invalid fault-injection parameter.
    BadFaults(String),
    /// An invalid integrity-pipeline parameter.
    BadIntegrity(String),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadEndpoints(msg)
            | Self::BadFleet(msg)
            | Self::BadFaults(msg)
            | Self::BadIntegrity(msg) => f.write_str(msg),
            Self::NonMonotonicPositions => {
                f.write_str("endpoint positions must be strictly increasing")
            }
            Self::Physics(e) => write!(f, "invalid physics parameter: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Physics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysicsError> for ConfigError {
    fn from(e: PhysicsError) -> Self {
        Self::Physics(e)
    }
}

/// How long a cart spends docked at a rack before it may return.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProcessingModel {
    /// Released immediately after docking — the pure-transfer accounting of
    /// Table VI.
    Instant,
    /// The rack reads the full cart through its PCIe docking link first;
    /// duration = capacity ÷ bandwidth (bytes/s).
    PcieRead {
        /// Effective docked read bandwidth in bytes per second.
        bandwidth_bytes_per_second: f64,
    },
    /// A fixed dwell time.
    Fixed(Seconds),
}

/// Full configuration of a DHL system simulation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Endpoints in track order; `endpoints[0]` must be the library at 0 m.
    pub endpoints: Vec<EndpointSpec>,
    /// Maximum cruise speed (Table V: 100/**200**/300 m/s).
    pub max_speed: dhl_units::MetresPerSecond,
    /// The LIM (efficiency + acceleration, Table V: 75 %, 1000 m/s²).
    pub lim: LinearInductionMotor,
    /// Trip-time accounting (default: paper-matching single ramp).
    pub time_model: TimeModel,
    /// Time to dock (Table V pessimistic: 3 s).
    pub dock_time: Seconds,
    /// Time to undock (Table V pessimistic: 3 s).
    pub undock_time: Seconds,
    /// Data capacity of each cart (Table V: 128/**256**/512 TB).
    pub cart_capacity: Bytes,
    /// Mass of each loaded cart (Table V: 161/**282**/524 g).
    pub cart_mass: Kilograms,
    /// Fleet size (carts stored in the library).
    pub num_carts: u32,
    /// Dual unidirectional tracks instead of one bidirectional track (§VI).
    pub dual_track: bool,
    /// Braking system at the receiving end (§VI alternatives).
    pub braking: BrakingSystem,
    /// Levitation/drag model.
    pub levitation: LevitationModel,
    /// Active-stabilisation power model.
    pub stabilisation: ActiveStabilisation,
    /// Rack-side dwell model.
    pub processing: ProcessingModel,
    /// Optional in-flight SSD failure injection.
    pub reliability: Option<ReliabilitySpec>,
    /// Optional fault injection + recovery policy. `None` keeps the legacy
    /// behaviour: losses are counted but shards are never redelivered.
    pub faults: Option<FaultSpec>,
    /// Optional end-to-end integrity pipeline. `None` keeps the legacy
    /// behaviour: arrival counts as delivery with no verification.
    pub integrity: Option<IntegritySpec>,
}

impl SimConfig {
    /// The paper's default system: library at 0 m (fleet-sized docks), one
    /// rack at 500 m with 4 docking stations, 200 m/s, 256 TB / 282 g carts,
    /// 8-cart fleet, single track, LIM braking, instant processing.
    #[must_use]
    pub fn paper_default() -> Self {
        let num_carts = 8;
        Self {
            endpoints: vec![
                EndpointSpec {
                    position: Metres::ZERO,
                    docks: num_carts,
                    kind: EndpointKind::Library,
                },
                EndpointSpec {
                    position: Metres::new(500.0),
                    docks: 4,
                    kind: EndpointKind::Rack,
                },
            ],
            max_speed: dhl_units::MetresPerSecond::new(200.0),
            lim: LinearInductionMotor::paper_default(),
            time_model: TimeModel::PaperSingleRamp,
            dock_time: Seconds::new(3.0),
            undock_time: Seconds::new(3.0),
            cart_capacity: Bytes::from_terabytes(256.0),
            cart_mass: CartMassModel::paper_default().budget(32).total,
            num_carts,
            dual_track: false,
            braking: BrakingSystem::paper_default(),
            levitation: LevitationModel::paper_default(),
            stabilisation: ActiveStabilisation::paper_default(),
            processing: ProcessingModel::Instant,
            reliability: None,
            faults: None,
            integrity: None,
        }
    }

    /// A strictly serial configuration — one cart, one rack dock — whose
    /// bulk-transfer behaviour matches the paper's analytical "doubled
    /// trips" accounting exactly.
    #[must_use]
    pub fn paper_serial() -> Self {
        let mut cfg = Self::paper_default();
        cfg.num_carts = 1;
        cfg.endpoints[0].docks = 1;
        cfg.endpoints[1].docks = 1;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the first violated constraint: endpoint
    /// layout, fleet sizing, or embedded physics parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.endpoints.len() < 2 {
            return Err(ConfigError::BadEndpoints(
                "a DHL needs at least a library and one rack endpoint".into(),
            ));
        }
        if self.endpoints[0].kind != EndpointKind::Library
            || self.endpoints[0].position.value() != 0.0
        {
            return Err(ConfigError::BadEndpoints(
                "endpoint 0 must be the library at position 0".into(),
            ));
        }
        for pair in self.endpoints.windows(2) {
            if pair[1].position.value() <= pair[0].position.value() {
                return Err(ConfigError::NonMonotonicPositions);
            }
        }
        if self.num_carts == 0 {
            return Err(ConfigError::BadFleet(
                "fleet must contain at least one cart".into(),
            ));
        }
        if self.endpoints[0].docks < self.num_carts {
            return Err(ConfigError::BadFleet(format!(
                "library has {} docks but the fleet holds {} carts",
                self.endpoints[0].docks, self.num_carts
            )));
        }
        for ep in &self.endpoints {
            if ep.docks == 0 {
                return Err(ConfigError::BadEndpoints(
                    "every endpoint needs at least one docking station".into(),
                ));
            }
        }
        if self.max_speed.value().is_nan() || self.max_speed.value() <= 0.0 {
            return Err(ConfigError::Physics(PhysicsError::NonPositive {
                what: "max speed",
                value: self.max_speed.value(),
            }));
        }
        if self.dock_time.seconds() < 0.0 || self.undock_time.seconds() < 0.0 {
            return Err(ConfigError::BadEndpoints(
                "dock/undock times must be non-negative".into(),
            ));
        }
        if self.cart_mass.value().is_nan() || self.cart_mass.value() <= 0.0 {
            return Err(ConfigError::Physics(PhysicsError::NonPositive {
                what: "cart mass",
                value: self.cart_mass.value(),
            }));
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        if let Some(integrity) = &self.integrity {
            integrity.validate()?;
        }
        Ok(())
    }

    /// Track length: the position of the farthest endpoint.
    #[must_use]
    pub fn track_length(&self) -> Metres {
        self.endpoints
            .last()
            .map(|e| e.position)
            .unwrap_or(Metres::ZERO)
    }

    /// The minimum launch headway between same-direction carts: successive
    /// arrivals must be spaced by at least the docking time so the previous
    /// cart has been lifted clear (§III-B.5).
    #[must_use]
    pub fn launch_headway(&self) -> Seconds {
        self.dock_time.max(self.undock_time)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        SimConfig::paper_default().validate().unwrap();
        SimConfig::paper_serial().validate().unwrap();
    }

    #[test]
    fn paper_default_matches_table_v() {
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.max_speed.value(), 200.0);
        assert_eq!(cfg.track_length().value(), 500.0);
        assert_eq!(cfg.cart_capacity.terabytes(), 256.0);
        assert!((cfg.cart_mass.grams() - 281.92).abs() < 0.01);
        assert_eq!(cfg.dock_time.seconds(), 3.0);
        assert_eq!(cfg.undock_time.seconds(), 3.0);
        assert_eq!(cfg.lim.efficiency(), 0.75);
    }

    #[test]
    fn rejects_missing_rack() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints.truncate(1);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadEndpoints(_))));
    }

    #[test]
    fn rejects_non_library_first_endpoint() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[0].kind = EndpointKind::Rack;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_unordered_positions() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints.push(EndpointSpec {
            position: Metres::new(300.0),
            docks: 1,
            kind: EndpointKind::Rack,
        });
        assert_eq!(cfg.validate(), Err(ConfigError::NonMonotonicPositions));
    }

    #[test]
    fn rejects_undersized_library() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[0].docks = 2; // fleet is 8
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFleet(_))));
    }

    #[test]
    fn rejects_zero_carts_and_zero_docks() {
        let mut cfg = SimConfig::paper_default();
        cfg.num_carts = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[1].docks = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn headway_is_dock_time() {
        assert_eq!(SimConfig::paper_default().launch_headway().seconds(), 3.0);
    }

    #[test]
    fn error_display() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints[0].docks = 2;
        let msg = format!("{}", cfg.validate().unwrap_err());
        assert!(msg.contains("library has 2 docks"));
    }

    #[test]
    fn fault_spec_defaults_validate() {
        let mut cfg = SimConfig::paper_default();
        cfg.faults = Some(FaultSpec::recovery_only());
        cfg.validate().unwrap();
        cfg.faults = Some(FaultSpec::stress());
        cfg.validate().unwrap();
    }

    #[test]
    fn fault_spec_rejects_bad_parameters() {
        let set = |f: FaultSpec| {
            let mut cfg = SimConfig::paper_default();
            cfg.faults = Some(f);
            cfg.validate()
        };
        let mut f = FaultSpec::recovery_only();
        f.max_delivery_attempts = 0;
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.cart_stall.as_mut().unwrap().probability_per_movement = 1.5;
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.cart_stall.as_mut().unwrap().repair_time = Seconds::new(-1.0);
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.docking_connector.as_mut().unwrap().replacement_time = Seconds::new(f64::NAN);
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.repressurisation
            .as_mut()
            .unwrap()
            .probability_per_movement = -0.1;
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.repressurisation
            .as_mut()
            .unwrap()
            .degraded_pressure_millibar = 0.0;
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.dock_controller
            .as_mut()
            .unwrap()
            .crash_probability_per_docking = 1.5;
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.dock_controller.as_mut().unwrap().journal_replay_time = Seconds::new(-1.0);
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.dock_controller
            .as_mut()
            .unwrap()
            .rebuild_scan_bandwidth_bytes_per_second = 0.0;
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));

        let mut f = FaultSpec::stress();
        f.dock_controller.as_mut().unwrap().recovery_power = Watts::new(f64::NAN);
        assert!(matches!(set(f), Err(ConfigError::BadFaults(_))));
    }

    #[test]
    fn dock_controller_presets_differ_only_in_policy() {
        let j = DockControllerFaultSpec::journal_replay();
        let r = DockControllerFaultSpec::rebuild_from_scan();
        assert_eq!(j.recovery, DockRecoveryPolicy::JournalReplay);
        assert_eq!(r.recovery, DockRecoveryPolicy::RebuildFromScan);
        assert_eq!(
            j.crash_probability_per_docking,
            r.crash_probability_per_docking
        );
        assert_eq!(j.recovery_power, r.recovery_power);
    }

    #[test]
    fn integrity_spec_presets_validate() {
        let mut cfg = SimConfig::paper_default();
        cfg.integrity = Some(IntegritySpec::typical());
        cfg.validate().unwrap();
        cfg.integrity = Some(IntegritySpec::verification_only());
        cfg.validate().unwrap();
    }

    #[test]
    fn integrity_spec_rejects_bad_parameters() {
        let set = |i: IntegritySpec| {
            let mut cfg = SimConfig::paper_default();
            cfg.integrity = Some(i);
            cfg.validate()
        };
        let mut i = IntegritySpec::typical();
        i.shards_per_cart = 0;
        assert!(matches!(set(i), Err(ConfigError::BadIntegrity(_))));

        let mut i = IntegritySpec::typical();
        i.verify_bandwidth_bytes_per_second = 0.0;
        assert!(matches!(set(i), Err(ConfigError::BadIntegrity(_))));

        let mut i = IntegritySpec::typical();
        i.reconstruct_bandwidth_bytes_per_second = f64::NAN;
        assert!(matches!(set(i), Err(ConfigError::BadIntegrity(_))));

        let mut i = IntegritySpec::typical();
        i.verify_power = Watts::new(-1.0);
        assert!(matches!(set(i), Err(ConfigError::BadIntegrity(_))));

        let mut i = IntegritySpec::typical();
        i.corruption.mating_error_per_cycle = 2.0;
        let err = set(i).unwrap_err();
        assert!(format!("{err}").contains("corruption model"));
    }

    #[test]
    fn degraded_speed_caps_drag_at_nominal_budget() {
        let rep = RepressurisationSpec {
            probability_per_movement: 0.0,
            duration: Seconds::new(120.0),
            // 100× nominal pressure → 100× drag at equal speed → speed
            // limited to v_max/10.
            degraded_pressure_millibar: 100.0,
        };
        let v_max = MetresPerSecond::new(200.0);
        let v = rep.degraded_speed(v_max, Metres::new(500.0));
        assert!((v.value() - 20.0).abs() < 1e-9, "got {}", v.value());

        // Pressure below nominal never *raises* the limit above v_max.
        let better = RepressurisationSpec {
            degraded_pressure_millibar: 0.5,
            ..rep
        };
        assert_eq!(better.degraded_speed(v_max, Metres::new(500.0)), v_max);
    }
}
