//! Open-loop request arrival generation (ROADMAP item 1).
//!
//! The closed-loop scheduler drains a fixed queue, so the system can never
//! be *overloaded* — offered load always equals served load. This module
//! supplies the missing half of an overload experiment: deterministic
//! open-loop arrival processes that keep offering work whether or not the
//! track can absorb it.
//!
//! Two processes are modelled:
//!
//! - [`ArrivalProcess::Poisson`]: memoryless arrivals at a constant rate
//!   (inverse-CDF exponential inter-arrival times);
//! - [`ArrivalProcess::OnOffBurst`]: an MMPP-style two-state modulated
//!   process — an *on* phase at a burst rate and an *off* phase at a
//!   (possibly zero) background rate, with exponentially distributed phase
//!   durations. This is the workload shape ingest pipelines actually
//!   produce: long quiet stretches punctuated by correlated bursts that
//!   saturate the docking stations.
//!
//! Every draw comes from one dedicated [`DeterministicRng`] stream seeded
//! by [`ArrivalSpec::seed`], so a given spec always yields the same
//! arrival trace, independent of thread count or host. The generator is
//! checkpointable in the PR-6 style: [`ArrivalGenerator::state`] captures
//! the RNG words, clock, and phase; [`ArrivalGenerator::restore`] resumes
//! to a bit-identical suffix, and [`ArrivalState::to_json`] /
//! [`ArrivalState::from_json`] round-trip the state losslessly through the
//! `dhl-obs` JSON codec.
//!
//! Numeric inputs follow the same clamp discipline `FailureModel` got in
//! PR 3: non-finite or negative rates clamp to zero, degenerate phase
//! durations clamp to one second, fractions clamp into `[0, 1]`, and a
//! zero tenant count clamps to one — a malformed spec degrades to a quiet
//! generator instead of panicking or spinning.

use dhl_obs::json::{self, JsonValue};
use dhl_rng::{DeterministicRng, Rng};
use dhl_units::Seconds;
use serde::{Deserialize, Serialize};

/// The stochastic process driving inter-arrival times.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_second`.
    Poisson {
        /// Mean arrivals per second.
        rate_per_second: f64,
    },
    /// MMPP-style two-state burst process: exponential-duration *on*
    /// phases at `on_rate_per_second` alternating with *off* phases at
    /// `off_rate_per_second` (zero for silent gaps).
    OnOffBurst {
        /// Arrival rate while the source is bursting.
        on_rate_per_second: f64,
        /// Background arrival rate between bursts (may be zero).
        off_rate_per_second: f64,
        /// Mean duration of an *on* phase.
        mean_on_duration: Seconds,
        /// Mean duration of an *off* phase.
        mean_off_duration: Seconds,
    },
}

/// Configuration for one open-loop arrival stream.
///
/// Off-by-default in the sense of the PR-3/PR-6 convention: nothing in the
/// simulator consumes arrivals unless a caller explicitly builds a
/// generator and feeds the emitted requests into a scheduler.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// The inter-arrival process.
    pub process: ArrivalProcess,
    /// Number of tenants arrivals are attributed to (round-robin-free:
    /// each arrival draws its tenant uniformly). Clamped to ≥ 1.
    pub tenants: u32,
    /// Generation horizon: no arrivals at or beyond this time.
    pub horizon: Seconds,
    /// Base deadline slack granted to every request, measured from its
    /// arrival. Zero disables deadlines (emitted `deadline` is `None`).
    pub deadline_slack: Seconds,
    /// Extra uniform jitter on the slack as a fraction of
    /// `deadline_slack` (clamped into `[0, 1]`): the effective slack is
    /// `slack × (1 + jitter × U[0,1))`.
    pub deadline_jitter_fraction: f64,
    /// Seed for the dedicated arrival RNG stream.
    pub seed: u64,
}

impl ArrivalSpec {
    /// A Poisson stream at `rate_per_second` over `horizon` for one tenant,
    /// without deadlines.
    #[must_use]
    pub fn poisson(rate_per_second: f64, horizon: Seconds, seed: u64) -> Self {
        Self {
            process: ArrivalProcess::Poisson { rate_per_second },
            tenants: 1,
            horizon,
            deadline_slack: Seconds::ZERO,
            deadline_jitter_fraction: 0.0,
            seed,
        }
    }

    /// Spreads arrivals over `tenants` tenants.
    #[must_use]
    pub fn with_tenants(mut self, tenants: u32) -> Self {
        self.tenants = tenants;
        self
    }

    /// Grants every request `slack` of deadline headroom with `jitter`
    /// fractional spread.
    #[must_use]
    pub fn with_deadlines(mut self, slack: Seconds, jitter: f64) -> Self {
        self.deadline_slack = slack;
        self.deadline_jitter_fraction = jitter;
        self
    }

    /// The spec with every numeric field clamped into its sane range
    /// (the PR-3 `FailureModel` discipline): non-finite or negative rates
    /// and durations become `0`, degenerate phase means become one second,
    /// fractions clamp into `[0, 1]`, and `tenants == 0` becomes `1`.
    #[must_use]
    pub fn sanitised(mut self) -> Self {
        fn rate(r: f64) -> f64 {
            if r.is_finite() {
                r.max(0.0)
            } else {
                0.0
            }
        }
        fn nonneg(s: Seconds) -> Seconds {
            let v = s.seconds();
            if v.is_finite() {
                Seconds::new(v.max(0.0))
            } else {
                Seconds::ZERO
            }
        }
        self.process = match self.process {
            ArrivalProcess::Poisson { rate_per_second } => ArrivalProcess::Poisson {
                rate_per_second: rate(rate_per_second),
            },
            ArrivalProcess::OnOffBurst {
                on_rate_per_second,
                off_rate_per_second,
                mean_on_duration,
                mean_off_duration,
            } => {
                // Phase means below a microsecond (or malformed) would make
                // the generator spin through phases; clamp to one second.
                let phase = |s: Seconds| {
                    let v = s.seconds();
                    if v.is_finite() && v >= 1e-6 {
                        s
                    } else {
                        Seconds::new(1.0)
                    }
                };
                ArrivalProcess::OnOffBurst {
                    on_rate_per_second: rate(on_rate_per_second),
                    off_rate_per_second: rate(off_rate_per_second),
                    mean_on_duration: phase(mean_on_duration),
                    mean_off_duration: phase(mean_off_duration),
                }
            }
        };
        self.tenants = self.tenants.max(1);
        self.horizon = nonneg(self.horizon);
        self.deadline_slack = nonneg(self.deadline_slack);
        self.deadline_jitter_fraction = if self.deadline_jitter_fraction.is_finite() {
            self.deadline_jitter_fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }
}

/// One emitted request arrival.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Arrival {
    /// Tenant the request belongs to, in `0..spec.tenants`.
    pub tenant: u32,
    /// Arrival time.
    pub at: Seconds,
    /// Absolute delivery deadline, when the spec grants slack.
    pub deadline: Option<Seconds>,
}

/// Checkpointable generator state (PR-6 machinery): everything needed to
/// resume a generator to a bit-identical suffix.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ArrivalState {
    /// The RNG stream's word state.
    pub rng: [u64; 4],
    /// Simulated clock of the last emitted arrival (or 0 initially).
    pub clock: f64,
    /// Whether an `OnOffBurst` process is currently in its *on* phase.
    pub in_on_phase: bool,
    /// When the current phase ends (`OnOffBurst` only; `+∞` for Poisson).
    pub phase_ends_at: f64,
    /// Arrivals emitted so far.
    pub emitted: u64,
}

impl ArrivalState {
    /// Serialises the state to compact JSON (lossless: RNG words ride the
    /// codec's exact `UInt` path, times use Rust's round-trip `f64`
    /// formatting, and the non-finite Poisson phase end maps to `null`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert(
            "rng".to_string(),
            JsonValue::Array(self.rng.iter().map(|&w| JsonValue::UInt(w)).collect()),
        );
        obj.insert("clock".to_string(), JsonValue::Number(self.clock));
        obj.insert("in_on_phase".to_string(), JsonValue::Bool(self.in_on_phase));
        obj.insert(
            "phase_ends_at".to_string(),
            if self.phase_ends_at.is_finite() {
                JsonValue::Number(self.phase_ends_at)
            } else {
                JsonValue::Null
            },
        );
        obj.insert("emitted".to_string(), JsonValue::UInt(self.emitted));
        JsonValue::Object(obj).to_json_string()
    }

    /// Parses a state serialised by [`ArrivalState::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text).map_err(|e| format!("arrival state: {e:?}"))?;
        let rng_vals = root
            .get("rng")
            .and_then(JsonValue::as_array)
            .ok_or("arrival state: missing rng array")?;
        if rng_vals.len() != 4 {
            return Err(format!(
                "arrival state: rng has {} words, expected 4",
                rng_vals.len()
            ));
        }
        let mut rng = [0u64; 4];
        for (slot, v) in rng.iter_mut().zip(rng_vals) {
            *slot = v.as_u64().ok_or("arrival state: rng word not a u64")?;
        }
        let clock = root
            .get("clock")
            .and_then(JsonValue::as_f64)
            .ok_or("arrival state: missing clock")?;
        let in_on_phase = match root.get("in_on_phase") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err("arrival state: missing in_on_phase".to_string()),
        };
        let phase_ends_at = match root.get("phase_ends_at") {
            Some(JsonValue::Null) => f64::INFINITY,
            Some(v) => v
                .as_f64()
                .ok_or("arrival state: phase_ends_at not a number")?,
            None => return Err("arrival state: missing phase_ends_at".to_string()),
        };
        let emitted = root
            .get("emitted")
            .and_then(JsonValue::as_u64)
            .ok_or("arrival state: missing emitted")?;
        Ok(Self {
            rng,
            clock,
            in_on_phase,
            phase_ends_at,
            emitted,
        })
    }
}

/// Deterministic open-loop arrival generator over one [`ArrivalSpec`].
///
/// Implements [`Iterator`]; the stream ends at the spec's horizon.
#[derive(Clone, Debug)]
pub struct ArrivalGenerator {
    spec: ArrivalSpec,
    rng: DeterministicRng,
    clock: f64,
    in_on_phase: bool,
    phase_ends_at: f64,
    emitted: u64,
}

impl ArrivalGenerator {
    /// Builds a generator over the sanitised spec.
    #[must_use]
    pub fn new(spec: &ArrivalSpec) -> Self {
        let spec = spec.sanitised();
        let mut rng = DeterministicRng::seed_from_u64(spec.seed);
        let (in_on_phase, phase_ends_at) = match spec.process {
            ArrivalProcess::Poisson { .. } => (true, f64::INFINITY),
            ArrivalProcess::OnOffBurst {
                mean_on_duration, ..
            } => {
                // The stream opens in an *on* phase whose duration is the
                // generator's very first draw.
                let d = exponential(&mut rng, mean_on_duration.seconds());
                (true, d)
            }
        };
        Self {
            spec,
            rng,
            clock: 0.0,
            in_on_phase,
            phase_ends_at,
            emitted: 0,
        }
    }

    /// The (sanitised) spec in effect.
    #[must_use]
    pub fn spec(&self) -> &ArrivalSpec {
        &self.spec
    }

    /// Arrivals emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Captures the generator's resumable state.
    #[must_use]
    pub fn state(&self) -> ArrivalState {
        ArrivalState {
            rng: self.rng.state(),
            clock: self.clock,
            in_on_phase: self.in_on_phase,
            phase_ends_at: self.phase_ends_at,
            emitted: self.emitted,
        }
    }

    /// Rebuilds a generator from a captured state; the resumed stream is
    /// bit-identical to the stream the original would have produced.
    #[must_use]
    pub fn restore(spec: &ArrivalSpec, state: &ArrivalState) -> Self {
        Self {
            spec: spec.sanitised(),
            rng: DeterministicRng::from_state(state.rng),
            clock: state.clock,
            in_on_phase: state.in_on_phase,
            phase_ends_at: state.phase_ends_at,
            emitted: state.emitted,
        }
    }

    fn current_rate(&self) -> f64 {
        match self.spec.process {
            ArrivalProcess::Poisson { rate_per_second } => rate_per_second,
            ArrivalProcess::OnOffBurst {
                on_rate_per_second,
                off_rate_per_second,
                ..
            } => {
                if self.in_on_phase {
                    on_rate_per_second
                } else {
                    off_rate_per_second
                }
            }
        }
    }

    fn advance_phase(&mut self) {
        let ArrivalProcess::OnOffBurst {
            mean_on_duration,
            mean_off_duration,
            ..
        } = self.spec.process
        else {
            return;
        };
        self.clock = self.phase_ends_at;
        self.in_on_phase = !self.in_on_phase;
        let mean = if self.in_on_phase {
            mean_on_duration.seconds()
        } else {
            mean_off_duration.seconds()
        };
        self.phase_ends_at = self.clock + exponential(&mut self.rng, mean);
    }

    /// The next arrival, or `None` once the horizon is reached.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        let horizon = self.spec.horizon.seconds();
        loop {
            if self.clock >= horizon {
                return None;
            }
            let rate = self.current_rate();
            if rate <= 0.0 {
                // Silent phase: nothing arrives until it ends (a silent
                // Poisson stream never produces anything).
                if self.phase_ends_at.is_finite() {
                    self.advance_phase();
                    continue;
                }
                return None;
            }
            let gap = exponential(&mut self.rng, 1.0 / rate);
            let candidate = self.clock + gap;
            if candidate >= self.phase_ends_at {
                // The draw fell past the phase boundary: discard it and
                // re-draw in the next phase (memorylessness makes the
                // discarded tail exchangeable for a fresh draw).
                self.advance_phase();
                continue;
            }
            if candidate >= horizon {
                self.clock = horizon;
                return None;
            }
            self.clock = candidate;
            self.emitted += 1;
            let tenant = if self.spec.tenants > 1 {
                self.rng.random_range_u64(0, u64::from(self.spec.tenants)) as u32
            } else {
                0
            };
            let deadline = if self.spec.deadline_slack > Seconds::ZERO {
                let jitter = self.spec.deadline_jitter_fraction * self.rng.random_f64();
                Some(Seconds::new(
                    candidate + self.spec.deadline_slack.seconds() * (1.0 + jitter),
                ))
            } else {
                None
            };
            return Some(Arrival {
                tenant,
                at: Seconds::new(candidate),
                deadline,
            });
        }
    }
}

impl Iterator for ArrivalGenerator {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        self.next_arrival()
    }
}

/// Inverse-CDF exponential draw with the given mean (0 for degenerate
/// means): `-mean · ln(1 - u)` with `u ∈ [0, 1)`.
fn exponential(rng: &mut DeterministicRng, mean: f64) -> f64 {
    if !mean.is_finite() || mean <= 0.0 {
        return 0.0;
    }
    let u = rng.random_f64();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(rate: f64, horizon: f64, seed: u64) -> ArrivalSpec {
        ArrivalSpec::poisson(rate, Seconds::new(horizon), seed)
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let n = ArrivalGenerator::new(&poisson(2.0, 10_000.0, 7)).count();
        // 20 000 expected; a 5 % band is ~7σ.
        assert!((19_000..21_000).contains(&n), "{n}");
    }

    #[test]
    fn arrivals_are_strictly_ordered_and_inside_the_horizon() {
        let spec = poisson(5.0, 500.0, 3).with_tenants(8);
        let mut last = 0.0;
        for a in ArrivalGenerator::new(&spec) {
            assert!(a.at.seconds() > last);
            assert!(a.at.seconds() < 500.0);
            assert!(a.tenant < 8);
            last = a.at.seconds();
        }
    }

    #[test]
    fn same_seed_same_trace_different_seed_different_trace() {
        let spec = poisson(1.0, 1_000.0, 42).with_tenants(4);
        let a: Vec<_> = ArrivalGenerator::new(&spec).collect();
        let b: Vec<_> = ArrivalGenerator::new(&spec).collect();
        assert_eq!(a, b);
        let mut other = spec;
        other.seed = 43;
        let c: Vec<_> = ArrivalGenerator::new(&other).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn deadlines_carry_slack_and_bounded_jitter() {
        let spec = poisson(1.0, 1_000.0, 9).with_deadlines(Seconds::new(60.0), 0.5);
        for a in ArrivalGenerator::new(&spec) {
            let d = a.deadline.expect("slack configured").seconds();
            let slack = d - a.at.seconds();
            assert!((60.0..90.0).contains(&slack), "{slack}");
        }
        let bare = poisson(1.0, 1_000.0, 9);
        assert!(ArrivalGenerator::new(&bare).all(|a| a.deadline.is_none()));
    }

    #[test]
    fn bursts_cluster_arrivals() {
        let spec = ArrivalSpec {
            process: ArrivalProcess::OnOffBurst {
                on_rate_per_second: 10.0,
                off_rate_per_second: 0.0,
                mean_on_duration: Seconds::new(10.0),
                mean_off_duration: Seconds::new(100.0),
            },
            ..poisson(0.0, 20_000.0, 11)
        };
        let arrivals: Vec<_> = ArrivalGenerator::new(&spec).collect();
        assert!(arrivals.len() > 100, "{}", arrivals.len());
        // Mean rate ≈ 10 × 10/110 ≈ 0.9/s, far below the on-rate: the
        // same count under plain Poisson at the on-rate would be 200 000.
        assert!(arrivals.len() < 40_000);
        // Bursty: the median gap is much smaller than the mean gap.
        let mut gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| w[1].at.seconds() - w[0].at.seconds())
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = gaps[gaps.len() / 2];
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(median * 3.0 < mean, "median {median} mean {mean}");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let spec = ArrivalSpec {
            process: ArrivalProcess::OnOffBurst {
                on_rate_per_second: 4.0,
                off_rate_per_second: 0.5,
                mean_on_duration: Seconds::new(20.0),
                mean_off_duration: Seconds::new(50.0),
            },
            ..poisson(0.0, 5_000.0, 21)
        }
        .with_tenants(16)
        .with_deadlines(Seconds::new(120.0), 0.25);
        let mut full = ArrivalGenerator::new(&spec);
        let head: Vec<_> = (0..500).filter_map(|_| full.next_arrival()).collect();
        assert_eq!(head.len(), 500);
        let state = full.state();
        // Round-trip the state through JSON, as a crash-recovery would.
        let restored_state = ArrivalState::from_json(&state.to_json()).unwrap();
        assert_eq!(state, restored_state);
        let resumed = ArrivalGenerator::restore(&spec, &restored_state);
        let tail_full: Vec<_> = full.collect();
        let tail_resumed: Vec<_> = resumed.collect();
        assert_eq!(tail_full, tail_resumed);
    }

    #[test]
    fn state_json_rejects_malformed_input() {
        assert!(ArrivalState::from_json("{}").is_err());
        assert!(ArrivalState::from_json("not json").is_err());
        let state = ArrivalGenerator::new(&poisson(1.0, 10.0, 1)).state();
        let mut mangled = state;
        mangled.phase_ends_at = f64::INFINITY;
        // ∞ maps to null and back.
        let back = ArrivalState::from_json(&mangled.to_json()).unwrap();
        assert_eq!(back, mangled);
    }

    #[test]
    fn malformed_specs_clamp_instead_of_panicking() {
        let nasty = ArrivalSpec {
            process: ArrivalProcess::OnOffBurst {
                on_rate_per_second: f64::NAN,
                off_rate_per_second: -3.0,
                mean_on_duration: Seconds::new(f64::INFINITY),
                mean_off_duration: Seconds::new(-1.0),
            },
            tenants: 0,
            horizon: Seconds::new(f64::NAN),
            deadline_slack: Seconds::new(-5.0),
            deadline_jitter_fraction: f64::NAN,
            seed: 0,
        };
        let clean = nasty.sanitised();
        match clean.process {
            ArrivalProcess::OnOffBurst {
                on_rate_per_second,
                off_rate_per_second,
                mean_on_duration,
                mean_off_duration,
            } => {
                assert_eq!(on_rate_per_second, 0.0);
                assert_eq!(off_rate_per_second, 0.0);
                assert_eq!(mean_on_duration, Seconds::new(1.0));
                assert_eq!(mean_off_duration, Seconds::new(1.0));
            }
            ArrivalProcess::Poisson { .. } => panic!("process kind must survive"),
        }
        assert_eq!(clean.tenants, 1);
        assert_eq!(clean.horizon, Seconds::ZERO);
        assert_eq!(clean.deadline_slack, Seconds::ZERO);
        assert_eq!(clean.deadline_jitter_fraction, 0.0);
        // Both rates zero: the generator terminates immediately.
        assert_eq!(ArrivalGenerator::new(&clean).count(), 0);
        // A silent plain-Poisson stream also terminates.
        assert_eq!(
            ArrivalGenerator::new(&poisson(-1.0, 100.0, 5)).count(),
            0,
            "negative rate clamps to silence"
        );
    }
}
