//! Struct-of-arrays arena storage for the cart fleet.
//!
//! The simulator's hot loop touches one or two fields of one cart per
//! event (`location` on a dock, `movement` on an arrival, …). Storing the
//! fleet as an array-of-structs dragged every cold field — connector,
//! wear, verify state — through the cache on each access; [`CartArena`]
//! transposes the fleet into one contiguous column per field so an event
//! handler reads exactly the columns it needs. Cart identity is a plain
//! dense index on the hot path (no boxing, no hashing); the generational
//! [`CartHandle`] exists for *external* references, which survive across
//! checkpoint/resume boundaries only if the fleet they point into does.
//!
//! Columns are plain `Vec`s with `pub(crate)` visibility: the simulator
//! and the checkpoint codec index them directly, and the arena's only job
//! is to keep them the same length.

use dhl_storage::connectors::DockingConnector;
use dhl_storage::wear::CartWear;

use crate::system::{ActiveMovement, CartLocation, PendingVerify};

/// A generational reference to a cart: the dense index plus the generation
/// of the fleet it was issued against. Resolving a handle after the fleet
/// was rebuilt (a checkpoint resume) yields `None` instead of silently
/// reading a different cart's state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CartHandle {
    index: u32,
    generation: u32,
}

impl CartHandle {
    /// The dense fleet index this handle refers to (unvalidated; use
    /// [`CartArena::resolve`] via `DhlSystem` for the checked path).
    #[must_use]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

/// The cart fleet in struct-of-arrays layout. Every column has one entry
/// per cart; index `i` across columns is cart `i`.
#[derive(Clone, PartialEq, Debug, Default)]
pub(crate) struct CartArena {
    /// Per-slot generation, bumped when the slot's state is replaced
    /// wholesale (fleet rebuild on resume) rather than evolved by events.
    pub(crate) generations: Vec<u32>,
    pub(crate) locations: Vec<CartLocation>,
    /// In-flight movement (valid while moving).
    pub(crate) movements: Vec<Option<ActiveMovement>>,
    pub(crate) trips: Vec<u64>,
    /// The cart's docking connector, tracked when connector faults are on.
    pub(crate) connectors: Vec<Option<DockingConnector>>,
    /// NAND wear from restaging writes, tracked when integrity is on.
    pub(crate) wear: Vec<Option<CartWear>>,
    /// Connector matings over the cart's life (integrity wear input when no
    /// fault-tracked connector exists).
    pub(crate) matings: Vec<u32>,
    /// Delivery awaiting its verify-on-dock verdict.
    pub(crate) verify: Vec<Option<PendingVerify>>,
}

impl CartArena {
    /// A fleet of `count` identical carts docked at the library, each with
    /// a clone of the template connector/wear trackers.
    #[must_use]
    pub(crate) fn with_fleet(
        count: usize,
        connector: Option<DockingConnector>,
        wear: Option<CartWear>,
    ) -> Self {
        Self {
            generations: vec![0; count],
            locations: vec![CartLocation::Docked(0); count],
            movements: vec![None; count],
            trips: vec![0; count],
            connectors: vec![connector; count],
            wear: vec![wear; count],
            matings: vec![0; count],
            verify: vec![None; count],
        }
    }

    /// Number of carts in the fleet.
    #[must_use]
    pub(crate) fn len(&self) -> usize {
        self.locations.len()
    }

    /// Empties the arena and bumps every outstanding generation, so
    /// handles issued against the old fleet stop resolving. Follow with
    /// [`CartArena::push_cart`] per restored cart.
    pub(crate) fn begin_rebuild(&mut self) -> u32 {
        let next_gen = self
            .generations
            .iter()
            .copied()
            .max()
            .map_or(0, |g| g.wrapping_add(1));
        *self = Self::default();
        next_gen
    }

    /// Appends one cart's state (checkpoint restore path).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_cart(
        &mut self,
        generation: u32,
        location: CartLocation,
        movement: Option<ActiveMovement>,
        trips: u64,
        connector: Option<DockingConnector>,
        wear: Option<CartWear>,
        matings: u32,
        verify: Option<PendingVerify>,
    ) {
        self.generations.push(generation);
        self.locations.push(location);
        self.movements.push(movement);
        self.trips.push(trips);
        self.connectors.push(connector);
        self.wear.push(wear);
        self.matings.push(matings);
        self.verify.push(verify);
    }

    /// A generational handle to cart `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (or beyond `u32`, which no
    /// realistic fleet reaches).
    #[must_use]
    pub(crate) fn handle(&self, index: usize) -> CartHandle {
        CartHandle {
            index: u32::try_from(index).expect("fleet index fits in u32"),
            generation: self.generations[index],
        }
    }

    /// Resolves a handle back to a dense index, or `None` if the slot has
    /// been rebuilt since the handle was issued (stale generation) or the
    /// index is out of range.
    #[must_use]
    pub(crate) fn resolve(&self, handle: CartHandle) -> Option<usize> {
        let index = handle.index();
        (self.generations.get(index) == Some(&handle.generation)).then_some(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_starts_docked_at_library() {
        let arena = CartArena::with_fleet(3, None, None);
        assert_eq!(arena.len(), 3);
        assert!(arena
            .locations
            .iter()
            .all(|l| *l == CartLocation::Docked(0)));
        assert!(arena.movements.iter().all(Option::is_none));
        assert_eq!(arena.trips, vec![0, 0, 0]);
    }

    #[test]
    fn handles_resolve_until_the_fleet_is_rebuilt() {
        let mut arena = CartArena::with_fleet(2, None, None);
        let h = arena.handle(1);
        assert_eq!(arena.resolve(h), Some(1));

        let generation = arena.begin_rebuild();
        for _ in 0..2 {
            arena.push_cart(
                generation,
                CartLocation::Docked(0),
                None,
                0,
                None,
                None,
                0,
                None,
            );
        }
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.resolve(h), None, "stale generation must not resolve");
        let fresh = arena.handle(1);
        assert_eq!(arena.resolve(fresh), Some(1));
        assert_ne!(h, fresh);
    }

    #[test]
    fn out_of_range_handles_do_not_resolve() {
        let small = CartArena::with_fleet(1, None, None);
        let big = CartArena::with_fleet(5, None, None);
        let h = big.handle(4);
        assert_eq!(small.resolve(h), None);
    }
}
