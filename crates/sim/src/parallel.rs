//! Zero-dependency parallel replica execution (§V, §VI evaluation scale).
//!
//! The paper's figures are built from many seeded simulator replicas; this
//! module fans those replicas across `std::thread::scope` workers and merges
//! their results deterministically:
//!
//! - [`parallel_map`] — the generic chunked fan-out (the
//!   `dhl_core::dse::sweep_parallel` pattern, generalised to any
//!   `Send` work items). Output order always matches input order, and with
//!   `threads <= 1` the closure runs inline with zero spawn overhead.
//! - [`ReplicaSet`] / [`run_replicas`] — N seeded [`DhlSystem`] runs of the
//!   same configuration. Replica 0 keeps the configured seeds (a 1-replica
//!   set is exactly a single run); replica `i` derives per-stream seeds via
//!   a splitmix64 mix of the base seed and `i`.
//! - [`ReplicaReport`] — per-replica reports in replica order, a merged
//!   [`MetricsSnapshot`] (counter sums, log₂-histogram bucket merges, gauges
//!   last-write-wins by replica index, wall-clock gauges dropped), and
//!   [`ReplicaStats`] aggregates (mean/p50/p95/95 % CI) over the headline
//!   reliability and integrity outcomes.
//!
//! Because replicas are seeded by index and merged in index order, the
//! result is **bit-identical for any thread count** — the property test in
//! `tests/parallel_replicas.rs` pins this for `threads ∈ {1, 2, 4, 16,
//! 1000}`.
//!
//! With [`RecoveryOptions`], replicas additionally checkpoint themselves
//! periodically (see [`crate::checkpoint`]) and restart from the last
//! checkpoint when they crash, up to a bounded restart budget. Because
//! checkpoint resume is bit-identical, a replica that crashed and recovered
//! produces exactly the report it would have produced uninterrupted — so
//! the merged [`ReplicaReport`] is unchanged by crashes, for any thread
//! count.

use dhl_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, Seconds};

use crate::config::SimConfig;
use crate::report::BulkTransferReport;
use crate::system::{DhlSystem, SimError};

/// Environment variable overriding [`default_threads`].
pub const THREADS_ENV: &str = "DHL_SIM_THREADS";

/// Worker count used when the caller does not pick one: the
/// `DHL_SIM_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items`, fanning the work across at most `threads` scoped
/// workers. The output preserves input order exactly; with `threads <= 1`
/// (or one item) the closure runs inline on the caller's stack, so a serial
/// invocation costs nothing over a plain loop.
///
/// Items are split into `ceil(len / threads)`-sized contiguous chunks, one
/// worker per chunk — the same deterministic partitioning as
/// `dhl_core::dse::sweep_parallel`.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let chunk = len.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<U>> = (0..len).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (out_chunk, in_chunk) in out.chunks_mut(chunk).zip(slots.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk.iter_mut()) {
                    let item = item.take().expect("each item is consumed once");
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every worker fills its slots"))
        .collect()
}

/// The splitmix64 finaliser — a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives replica `index`'s seed from a base seed: independent,
/// deterministic streams per replica.
fn mix_seed(base: u64, index: u64) -> u64 {
    splitmix64(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The configuration replica `index` runs: identical physics, with the
/// stochastic stream seeds re-derived per replica. Replica 0 keeps the base
/// seeds untouched, so a 1-replica set reproduces a single run exactly.
/// (The fault stream needs no rewrite: [`DhlSystem::new`] derives it from
/// the reliability seed.)
#[must_use]
pub fn replica_config(mut cfg: SimConfig, index: u64) -> SimConfig {
    if index == 0 {
        return cfg;
    }
    if let Some(r) = cfg.reliability.as_mut() {
        r.seed = mix_seed(r.seed, index);
    }
    if let Some(i) = cfg.integrity.as_mut() {
        i.seed = mix_seed(i.seed, index);
    }
    cfg
}

/// Summary statistics over one per-replica outcome.
///
/// Percentiles are nearest-rank over the sorted replica samples; `ci95` is
/// the half-width of the normal-approximation 95 % confidence interval on
/// the mean (`1.96 · s / √n`, sample standard deviation; 0 when `n < 2`).
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Sample mean.
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Half-width of the 95 % confidence interval on the mean.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl ReplicaStats {
    /// Statistics over raw samples (all zeros when empty).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let nearest_rank = |q: f64| {
            let rank = ((q * n as f64).ceil() as usize).max(1);
            sorted[rank - 1]
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            1.96 * var.sqrt() / (n as f64).sqrt()
        };
        Self {
            mean,
            p50: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            ci95,
            min: sorted[0],
            max: sorted[n - 1],
        }
    }
}

/// Merged outcome of a replica set.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Per-replica reports, in replica (seed) order.
    pub reports: Vec<BulkTransferReport>,
    /// Replica metrics merged in replica order: counters summed, histograms
    /// merged bucket-wise, gauges last-write-wins. Wall-clock pacing gauges
    /// (names containing `"wall"`) are dropped — they legitimately differ
    /// between runs and would break cross-run comparability.
    pub metrics: MetricsSnapshot,
    /// Completion time (s) across replicas.
    pub completion_time: ReplicaStats,
    /// Net energy (J) across replicas.
    pub total_energy: ReplicaStats,
    /// In-flight SSD failures across replicas.
    pub ssd_failures: ReplicaStats,
    /// RAID-uncovered data-loss events across replicas.
    pub data_loss_events: ReplicaStats,
    /// Recovery redeliveries across replicas ([`ReliabilityReport`]).
    ///
    /// [`ReliabilityReport`]: crate::report::ReliabilityReport
    pub redeliveries: ReplicaStats,
    /// Wasted retry time (s) across replicas ([`ReliabilityReport`]).
    ///
    /// [`ReliabilityReport`]: crate::report::ReliabilityReport
    pub retry_time: ReplicaStats,
    /// Silently corrupted shards across replicas ([`IntegrityReport`]).
    ///
    /// [`IntegrityReport`]: crate::report::IntegrityReport
    pub shards_corrupted: ReplicaStats,
    /// Deliveries re-shipped after over-tolerance corruption
    /// ([`IntegrityReport`]).
    ///
    /// [`IntegrityReport`]: crate::report::IntegrityReport
    pub deliveries_reshipped: ReplicaStats,
}

impl ReplicaReport {
    /// Builds the merged view from per-replica reports (in replica order).
    #[must_use]
    pub fn from_reports(reports: Vec<BulkTransferReport>) -> Self {
        let mut metrics = MetricsSnapshot::default();
        for r in &reports {
            metrics.merge(&r.metrics);
        }
        metrics.gauges.retain(|(name, _)| !name.contains("wall"));
        let stat = |f: fn(&BulkTransferReport) -> f64| {
            ReplicaStats::from_samples(&reports.iter().map(f).collect::<Vec<_>>())
        };
        Self {
            metrics,
            completion_time: stat(|r| r.completion_time.seconds()),
            total_energy: stat(|r| r.total_energy.value()),
            ssd_failures: stat(|r| r.ssd_failures as f64),
            data_loss_events: stat(|r| r.data_loss_events as f64),
            redeliveries: stat(|r| r.reliability.redeliveries as f64),
            retry_time: stat(|r| r.reliability.retry_time.seconds()),
            shards_corrupted: stat(|r| r.integrity.shards_corrupted as f64),
            deliveries_reshipped: stat(|r| r.integrity.deliveries_reshipped as f64),
            reports,
        }
    }

    /// Number of replicas that ran.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.reports.len()
    }
}

/// Deterministic crash injection for exercising replica recovery: replica
/// `replica` "crashes" (its in-memory simulator is dropped) the first
/// `crashes` times its clock reaches `at_time`, and must restart from its
/// last periodic checkpoint.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CrashInjection {
    /// Index of the replica that crashes.
    pub replica: u64,
    /// Simulation time at which the crash fires.
    pub at_time: Seconds,
    /// How many times the replica crashes before staying up.
    pub crashes: u32,
}

/// Crash-recovery policy for replica runs.
#[derive(Clone, PartialEq, Debug)]
pub struct RecoveryOptions {
    /// Simulation-time spacing between periodic checkpoints. A crash loses
    /// at most this much simulated progress.
    pub checkpoint_interval: Seconds,
    /// Restarts allowed per replica before the run fails with
    /// [`SimError::RestartBudgetExhausted`].
    pub max_restarts: u32,
    /// Deterministic crash injection (tests and audits; `None` in
    /// production use, where crashes come from the host).
    pub crash_hook: Option<CrashInjection>,
}

impl Default for RecoveryOptions {
    /// Checkpoint every 300 simulated seconds, allow 3 restarts, no
    /// injected crashes.
    fn default() -> Self {
        Self {
            checkpoint_interval: Seconds::new(300.0),
            max_restarts: 3,
            crash_hook: None,
        }
    }
}

/// Runs one replica to completion under a recovery policy: periodic
/// checkpoints, and restart-from-last-checkpoint when the crash hook fires.
fn run_recoverable(
    cfg: SimConfig,
    dataset: Bytes,
    replica: u64,
    recovery: &RecoveryOptions,
) -> Result<BulkTransferReport, SimError> {
    let interval = recovery.checkpoint_interval.seconds().max(0.0);
    let mut crashes_remaining = recovery
        .crash_hook
        .filter(|h| h.replica == replica)
        .map_or(0, |h| h.crashes);
    let mut restarts: u32 = 0;
    let mut sys = DhlSystem::new(cfg.clone())?;
    sys.begin_bulk_transfer(dataset)?;
    let mut last_checkpoint = sys.checkpoint();
    loop {
        // Advance at least one event per step even when the interval is
        // shorter than the event spacing, so the loop always progresses.
        let horizon = match sys.queue.next_time() {
            None => Seconds::new(f64::INFINITY),
            Some(t) => Seconds::new(t.seconds().max(sys.now().seconds() + interval)),
        };
        let drained = sys.run_until(horizon)?;
        let crash_due = crashes_remaining > 0
            && recovery
                .crash_hook
                .is_some_and(|h| sys.now().seconds() >= h.at_time.seconds());
        if crash_due {
            crashes_remaining -= 1;
            if restarts == recovery.max_restarts {
                return Err(SimError::RestartBudgetExhausted { replica, restarts });
            }
            restarts += 1;
            // The crash: the live simulator is gone; only the checkpoint
            // survives. Resume replays the lost window bit-identically.
            drop(sys);
            sys = DhlSystem::resume(cfg.clone(), &last_checkpoint)?;
            continue;
        }
        if drained {
            return Ok(sys.finish());
        }
        last_checkpoint = sys.checkpoint();
    }
}

/// Runs `replicas` seeded bulk-transfer simulations of `cfg` across at most
/// `threads` workers and merges the outcomes. Replica `i` runs
/// [`replica_config`]`(cfg, i)`; results are collected and merged in
/// replica order, so the returned report is bit-identical for every thread
/// count. On failure the error of the lowest-indexed failing replica is
/// returned, again independent of thread count.
///
/// # Errors
///
/// The first (by replica index) [`SimError`] any replica produced.
pub fn run_replicas(
    cfg: &SimConfig,
    dataset: Bytes,
    replicas: usize,
    threads: usize,
) -> Result<ReplicaReport, SimError> {
    let configs: Vec<SimConfig> = (0..replicas)
        .map(|i| replica_config(cfg.clone(), i as u64))
        .collect();
    let results = parallel_map(configs, threads, move |c| {
        DhlSystem::new(c)?.run_bulk_transfer(dataset)
    });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r?);
    }
    Ok(ReplicaReport::from_reports(reports))
}

/// [`run_replicas`] under a crash-recovery policy: every replica
/// checkpoints itself each `recovery.checkpoint_interval` of simulated
/// time, and a replica that crashes (via `recovery.crash_hook`) restarts
/// from its last checkpoint, up to `recovery.max_restarts` times.
///
/// Checkpoint resume is bit-identical, so the merged report equals the
/// crash-free [`run_replicas`] outcome for any thread count — the property
/// pinned by `tests/parallel_replicas.rs`.
///
/// # Errors
///
/// The first (by replica index) [`SimError`] any replica produced,
/// including [`SimError::RestartBudgetExhausted`] when a replica crashes
/// more than `recovery.max_restarts` times.
pub fn run_replicas_with_recovery(
    cfg: &SimConfig,
    dataset: Bytes,
    replicas: usize,
    threads: usize,
    recovery: &RecoveryOptions,
) -> Result<ReplicaReport, SimError> {
    let configs: Vec<(u64, SimConfig)> = (0..replicas)
        .map(|i| (i as u64, replica_config(cfg.clone(), i as u64)))
        .collect();
    let results = parallel_map(configs, threads, move |(index, c)| {
        run_recoverable(c, dataset, index, recovery)
    });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r?);
    }
    Ok(ReplicaReport::from_reports(reports))
}

/// Builder for a set of seeded replicas of one simulation.
///
/// # Examples
///
/// ```rust
/// use dhl_sim::parallel::ReplicaSet;
/// use dhl_sim::SimConfig;
/// use dhl_units::Bytes;
///
/// let mut cfg = SimConfig::paper_default();
/// cfg.reliability = Some(dhl_sim::ReliabilitySpec::typical());
/// let merged = ReplicaSet::new(cfg, Bytes::from_petabytes(1.0))
///     .replicas(4)
///     .threads(2)
///     .run()
///     .unwrap();
/// assert_eq!(merged.replica_count(), 4);
/// assert!(merged.completion_time.mean > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct ReplicaSet {
    cfg: SimConfig,
    dataset: Bytes,
    replicas: usize,
    threads: usize,
    recovery: Option<RecoveryOptions>,
}

impl ReplicaSet {
    /// A set of one replica over `cfg`, using [`default_threads`] workers.
    #[must_use]
    pub fn new(cfg: SimConfig, dataset: Bytes) -> Self {
        Self {
            cfg,
            dataset,
            replicas: 1,
            threads: default_threads(),
            recovery: None,
        }
    }

    /// Sets the number of seeded replicas (minimum 1).
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Caps the worker thread count (minimum 1). The thread count never
    /// changes the result, only the wall-clock time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables crash recovery: replicas checkpoint periodically and restart
    /// from the last checkpoint on crash. The merged result is unchanged
    /// (resume is bit-identical); only wall-clock time and the restart
    /// budget are affected.
    #[must_use]
    pub fn recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Runs the set and merges the outcomes.
    ///
    /// # Errors
    ///
    /// The first (by replica index) [`SimError`] any replica produced.
    pub fn run(&self) -> Result<ReplicaReport, SimError> {
        match &self.recovery {
            None => run_replicas(&self.cfg, self.dataset, self.replicas, self.threads),
            Some(recovery) => run_replicas_with_recovery(
                &self.cfg,
                self.dataset,
                self.replicas,
                self.threads,
                recovery,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IntegritySpec, ReliabilitySpec};

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..23).collect();
        let serial: Vec<u64> = items.iter().map(|i| i * i).collect();
        for threads in [0, 1, 2, 4, 16, 1000] {
            let got = parallel_map(items.clone(), threads, |i| i * i);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_on_empty_input_is_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn replica_zero_keeps_base_seeds() {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec::typical());
        cfg.integrity = Some(IntegritySpec::typical());
        let base = cfg.clone();
        let zero = replica_config(cfg, 0);
        assert_eq!(
            zero.reliability.as_ref().unwrap().seed,
            base.reliability.as_ref().unwrap().seed
        );
        assert_eq!(
            zero.integrity.as_ref().unwrap().seed,
            base.integrity.as_ref().unwrap().seed
        );
    }

    #[test]
    fn replica_seeds_are_distinct_and_deterministic() {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec::typical());
        let seed_of = |i| {
            replica_config(cfg.clone(), i)
                .reliability
                .as_ref()
                .unwrap()
                .seed
        };
        let seeds: Vec<u64> = (0..32).map(seed_of).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-replica seeds collide");
        assert_eq!(seed_of(7), seed_of(7), "seed derivation is deterministic");
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = ReplicaStats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.0); // nearest rank: ceil(0.5·4) = 2nd of sorted
        assert_eq!(s.p95, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // s² = (2.25+0.25+0.25+2.25)/3 = 5/3; ci = 1.96·√(5/3)/2.
        assert!((s.ci95 - 1.96 * (5.0f64 / 3.0).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_one_sample_have_zero_ci() {
        let s = ReplicaStats::from_samples(&[8.6]);
        assert_eq!(s.mean, 8.6);
        assert_eq!(s.p50, 8.6);
        assert_eq!(s.p95, 8.6);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn stats_of_empty_are_zero() {
        assert_eq!(ReplicaStats::from_samples(&[]), ReplicaStats::default());
    }

    #[test]
    fn one_replica_set_equals_a_single_run() {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec::typical());
        let dataset = dhl_units::Bytes::from_terabytes(512.0);
        let single = DhlSystem::new(cfg.clone())
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();
        let set = run_replicas(&cfg, dataset, 1, 1).unwrap();
        assert_eq!(set.reports.len(), 1);
        assert_eq!(set.reports[0], single);
        assert_eq!(set.completion_time.mean, single.completion_time.seconds());
        assert_eq!(set.completion_time.ci95, 0.0);
    }

    #[test]
    fn merged_metrics_drop_wall_clock_gauges_and_sum_counters() {
        let cfg = SimConfig::paper_default();
        let dataset = dhl_units::Bytes::from_terabytes(512.0);
        let single = DhlSystem::new(cfg.clone())
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();
        let set = run_replicas(&cfg, dataset, 3, 2).unwrap();
        assert!(set
            .metrics
            .gauges
            .iter()
            .all(|(name, _)| !name.contains("wall")));
        assert_eq!(
            set.metrics.counter("sim.events"),
            single.metrics.counter("sim.events").map(|e| e * 3),
            "identical seeds without stochastic specs: counters sum"
        );
    }

    #[test]
    fn crashed_replicas_recover_to_the_same_merged_result() {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec::typical());
        let dataset = Bytes::from_petabytes(1.0);
        let clean = run_replicas(&cfg, dataset, 4, 2).unwrap();
        let recovery = RecoveryOptions {
            checkpoint_interval: Seconds::new(15.0),
            max_restarts: 3,
            crash_hook: Some(CrashInjection {
                replica: 2,
                at_time: Seconds::new(20.0),
                crashes: 2,
            }),
        };
        // The hook really fires mid-run: with no restart budget it is fatal.
        let strict = RecoveryOptions {
            max_restarts: 0,
            ..recovery.clone()
        };
        assert!(matches!(
            run_replicas_with_recovery(&cfg, dataset, 4, 1, &strict),
            Err(SimError::RestartBudgetExhausted { replica: 2, .. })
        ));
        for threads in [1, 2, 8] {
            let recovered =
                run_replicas_with_recovery(&cfg, dataset, 4, threads, &recovery).unwrap();
            assert_eq!(
                recovered.reports, clean.reports,
                "threads = {threads}: recovery must not change any replica's report"
            );
            assert_eq!(recovered.metrics, clean.metrics);
            assert_eq!(recovered.completion_time, clean.completion_time);
        }
    }

    #[test]
    fn recovery_without_crashes_matches_the_plain_path() {
        let mut cfg = SimConfig::paper_default();
        cfg.integrity = Some(IntegritySpec::typical());
        let dataset = Bytes::from_terabytes(512.0);
        let clean = run_replicas(&cfg, dataset, 2, 1).unwrap();
        let recovered = ReplicaSet::new(cfg, dataset)
            .replicas(2)
            .threads(2)
            .recovery(RecoveryOptions::default())
            .run()
            .unwrap();
        assert_eq!(recovered.reports, clean.reports);
        assert_eq!(recovered.metrics, clean.metrics);
    }

    #[test]
    fn restart_budget_exhaustion_is_an_error() {
        let cfg = SimConfig::paper_default();
        let recovery = RecoveryOptions {
            checkpoint_interval: Seconds::new(50.0),
            max_restarts: 1,
            // at_time 0 fires at the very first checkpoint horizon, so the
            // budget is exhausted regardless of how long the run would take.
            crash_hook: Some(CrashInjection {
                replica: 0,
                at_time: Seconds::ZERO,
                crashes: 10,
            }),
        };
        let err = run_replicas_with_recovery(&cfg, Bytes::from_petabytes(1.0), 2, 2, &recovery)
            .unwrap_err();
        match err {
            SimError::RestartBudgetExhausted { replica, restarts } => {
                assert_eq!(replica, 0);
                assert_eq!(restarts, 1);
            }
            other => panic!("expected RestartBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_error_is_deterministic() {
        let mut cfg = SimConfig::paper_default();
        cfg.num_carts = 0;
        let err_serial = run_replicas(&cfg, Bytes::from_terabytes(1.0), 4, 1).unwrap_err();
        let err_parallel = run_replicas(&cfg, Bytes::from_terabytes(1.0), 4, 4).unwrap_err();
        assert_eq!(format!("{err_serial:?}"), format!("{err_parallel:?}"));
    }
}
