//! Simulation result reports.

use dhl_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use dhl_units::{Bytes, BytesPerSecond, Joules, Seconds, Watts};

/// Outcome of a bulk-transfer simulation (§V-B, via DES rather than the
/// closed-form model).
///
/// Equality compares the *simulation* outcome only: the [`metrics`] snapshot
/// carries wall-clock observability data (span timers, events/second) that
/// legitimately differs between two otherwise identical runs, so it is
/// excluded from `PartialEq`.
///
/// [`metrics`]: BulkTransferReport::metrics
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BulkTransferReport {
    /// Time until every shard was delivered and every cart was home.
    pub completion_time: Seconds,
    /// Bytes delivered to the rack.
    pub delivered: Bytes,
    /// Number of cart deliveries (one per shard).
    pub deliveries: u64,
    /// Deliveries broken down by destination rack (endpoint index, count).
    pub deliveries_by_endpoint: Vec<(usize, u64)>,
    /// Total cart movements, including returns.
    pub movements: u64,
    /// Net electrical energy across all movements.
    pub total_energy: Joules,
    /// `total_energy / completion_time`.
    pub average_power: Watts,
    /// `delivered / completion_time` — the DES analogue of Table VI's
    /// embodied bandwidth.
    pub embodied_bandwidth: BytesPerSecond,
    /// Cumulative busy time per track (1 entry for single, 2 for dual).
    pub track_busy_time: Vec<Seconds>,
    /// Peak number of carts simultaneously in motion.
    pub max_carts_in_flight: u32,
    /// Events the engine processed.
    pub events_processed: u64,
    /// SSDs that failed in flight (0 unless failure injection is enabled).
    pub ssd_failures: u64,
    /// Deliveries whose failures exceeded the RAID tolerance.
    pub data_loss_events: u64,
    /// Fault-injection and recovery accounting (all zeros when
    /// `SimConfig::faults` is `None`).
    pub reliability: ReliabilityReport,
    /// Verify-on-dock and reconstruction accounting (all zeros when
    /// `SimConfig::integrity` is `None`). Excluded from `PartialEq`, same
    /// pattern as [`metrics`]: the simulation outcome fields above already
    /// capture everything integrity changes about the run.
    ///
    /// [`metrics`]: BulkTransferReport::metrics
    pub integrity: IntegrityReport,
    /// Observability snapshot from the simulator's [`dhl_obs`] registry:
    /// deterministic event/launch/retry counters plus wall-clock pacing
    /// gauges. Excluded from equality (see the type-level docs).
    pub metrics: MetricsSnapshot,
}

impl PartialEq for BulkTransferReport {
    fn eq(&self, other: &Self) -> bool {
        self.completion_time == other.completion_time
            && self.delivered == other.delivered
            && self.deliveries == other.deliveries
            && self.deliveries_by_endpoint == other.deliveries_by_endpoint
            && self.movements == other.movements
            && self.total_energy == other.total_energy
            && self.average_power == other.average_power
            && self.embodied_bandwidth == other.embodied_bandwidth
            && self.track_busy_time == other.track_busy_time
            && self.max_carts_in_flight == other.max_carts_in_flight
            && self.events_processed == other.events_processed
            && self.ssd_failures == other.ssd_failures
            && self.data_loss_events == other.data_loss_events
            && self.reliability == other.reliability
    }
}

/// End-to-end integrity accounting for a bulk transfer with verify-on-dock
/// enabled.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct IntegrityReport {
    /// Shards checksummed at rack docks.
    pub shards_scanned: u64,
    /// Shards whose checksum no longer matched the staged manifest.
    pub shards_corrupted: u64,
    /// Corrupted shards rebuilt in place from RAID parity.
    pub shards_reconstructed: u64,
    /// Deliveries that completed verification intact (clean, or after
    /// parity reconstruction).
    pub deliveries_verified: u64,
    /// Deliveries re-shipped because corruption exceeded the RAID tolerance.
    pub deliveries_reshipped: u64,
    /// Total dock time spent scrubbing payloads.
    pub verification_time: Seconds,
    /// Total dock time spent rebuilding shards from parity.
    pub reconstruction_time: Seconds,
    /// Energy drawn by the dock-side scrubs (also included in the run's
    /// `total_energy`).
    pub verification_energy: Joules,
}

/// Recovery-path accounting for a bulk transfer under fault injection.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Shards re-dispatched after a RAID-uncovered in-flight loss.
    pub redeliveries: u64,
    /// Extra cart time spent on failed attempts (round trips whose payload
    /// did not survive).
    pub retry_time: Seconds,
    /// `requested bytes / completion_time` — useful bytes per second, which
    /// excludes redelivered duplicates.
    pub goodput: BytesPerSecond,
    /// `gross delivered bytes / completion_time` — includes every attempt's
    /// payload, failed or not.
    pub throughput: BytesPerSecond,
    /// Cumulative blocked time per track caused by stalled carts.
    pub track_downtime: Vec<Seconds>,
    /// Cart mechanical stalls injected.
    pub cart_stalls: u64,
    /// Docking-connector replacements performed.
    pub connector_replacements: u64,
    /// Tube repressurisation events injected.
    pub repressurisations: u64,
    /// Dock-station controller crashes injected.
    pub dock_controller_crashes: u64,
    /// Total docking time lost to controller recoveries (journal replay or
    /// payload re-scan, per the configured policy).
    pub dock_recovery_time: Seconds,
    /// Controller downtime per endpoint (indexed like
    /// `SimConfig::endpoints`; the library never crashes, so entry 0 is 0).
    pub dock_downtime: Vec<Seconds>,
}

impl BulkTransferReport {
    /// Transmission efficiency in GB/J, comparable to Table VI.
    #[must_use]
    pub fn efficiency(&self) -> dhl_units::GigabytesPerJoule {
        self.delivered / self.total_energy
    }

    /// Mean utilisation of the busiest track over the run.
    #[must_use]
    pub fn peak_track_utilisation(&self) -> f64 {
        if self.completion_time.seconds() <= 0.0 {
            return 0.0;
        }
        self.track_busy_time
            .iter()
            .map(|b| b.seconds() / self.completion_time.seconds())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BulkTransferReport {
        BulkTransferReport {
            completion_time: Seconds::new(100.0),
            delivered: Bytes::from_terabytes(512.0),
            deliveries: 2,
            deliveries_by_endpoint: vec![(1, 2)],
            movements: 4,
            total_energy: Joules::from_kilojoules(60.0),
            average_power: Watts::new(600.0),
            embodied_bandwidth: BytesPerSecond::from_terabytes_per_second(5.12),
            track_busy_time: vec![Seconds::new(40.0), Seconds::new(80.0)],
            max_carts_in_flight: 2,
            events_processed: 42,
            ssd_failures: 0,
            data_loss_events: 0,
            reliability: ReliabilityReport::default(),
            integrity: IntegrityReport::default(),
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn efficiency_in_gb_per_joule() {
        // 512 000 GB / 60 000 J ≈ 8.53 GB/J.
        assert!((sample().efficiency().value() - 8.533).abs() < 0.01);
    }

    #[test]
    fn peak_utilisation_takes_the_busiest_track() {
        assert!((sample().peak_track_utilisation() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_time_has_zero_utilisation() {
        let mut r = sample();
        r.completion_time = Seconds::ZERO;
        assert_eq!(r.peak_track_utilisation(), 0.0);
    }

    #[test]
    fn metrics_are_excluded_from_report_equality() {
        let a = sample();
        let mut b = sample();
        b.metrics.counters.push(("sim.events".into(), 42));
        assert_eq!(a, b, "observability data must not affect outcome equality");
        let mut c = sample();
        c.deliveries = 99;
        assert_ne!(a, c);
    }

    #[test]
    fn integrity_is_excluded_from_report_equality() {
        let a = sample();
        let mut b = sample();
        b.integrity.shards_scanned = 128;
        b.integrity.verification_time = Seconds::new(4_000.0);
        assert_eq!(
            a, b,
            "integrity accounting must not affect outcome equality"
        );
    }

    #[test]
    fn integrity_report_defaults_to_zero() {
        let r = IntegrityReport::default();
        assert_eq!(
            r.shards_scanned
                + r.shards_corrupted
                + r.shards_reconstructed
                + r.deliveries_verified
                + r.deliveries_reshipped,
            0
        );
        assert_eq!(r.verification_time, Seconds::ZERO);
        assert_eq!(r.reconstruction_time, Seconds::ZERO);
        assert_eq!(r.verification_energy, Joules::ZERO);
    }

    #[test]
    fn reliability_report_defaults_to_zero() {
        let r = ReliabilityReport::default();
        assert_eq!(r.redeliveries, 0);
        assert_eq!(r.retry_time, Seconds::ZERO);
        assert_eq!(r.goodput, BytesPerSecond::ZERO);
        assert_eq!(r.throughput, BytesPerSecond::ZERO);
        assert!(r.track_downtime.is_empty());
        assert_eq!(
            r.cart_stalls
                + r.connector_replacements
                + r.repressurisations
                + r.dock_controller_crashes,
            0
        );
        assert_eq!(r.dock_recovery_time, Seconds::ZERO);
        assert!(r.dock_downtime.is_empty());
    }
}
