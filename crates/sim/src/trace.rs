//! Event tracing for the DHL system simulator.
//!
//! An optional, bounded record of every state transition — the raw material
//! for debugging schedules, plotting cart trajectories, or auditing that
//! the simulator respects its physical constraints (tests in
//! `tests/trace_invariants.rs` replay traces to prove no-passing and
//! dock-capacity invariants).

use serde::{Deserialize, Serialize};

use dhl_units::Seconds;

use crate::system::{CartId, EndpointId};

/// One state transition in the simulated system.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A cart began undocking for a movement.
    Launch {
        /// The moving cart.
        cart: CartId,
        /// Origin endpoint.
        from: EndpointId,
        /// Destination endpoint.
        to: EndpointId,
    },
    /// A cart finished undocking and entered the tube.
    EnterTube {
        /// The moving cart.
        cart: CartId,
    },
    /// A cart reached its destination and began docking.
    BeginDock {
        /// The arriving cart.
        cart: CartId,
    },
    /// A cart finished docking.
    Docked {
        /// The docked cart.
        cart: CartId,
        /// Where it docked.
        endpoint: EndpointId,
    },
    /// A docked cart finished its rack-side processing dwell.
    ProcessingDone {
        /// The cart whose dwell ended.
        cart: CartId,
    },
    /// A cart docked at a rack but its payload did not survive the trip
    /// (RAID-uncovered SSD losses); the shard must be redelivered.
    DeliveryFailed {
        /// The cart whose payload was lost.
        cart: CartId,
        /// The rack that should have received the shard.
        endpoint: EndpointId,
        /// Which delivery attempt this was (1-based).
        attempt: u32,
    },
    /// Verify-on-dock began scrubbing a delivered payload against its shard
    /// manifest.
    VerifyStarted {
        /// The docked cart being scrubbed.
        cart: CartId,
        /// The rack performing the scrub.
        endpoint: EndpointId,
        /// Shards the scrub covers.
        shards: u64,
    },
    /// Every shard checksummed clean: the delivery is confirmed intact.
    PayloadVerified {
        /// The verified cart.
        cart: CartId,
        /// The rack that verified it.
        endpoint: EndpointId,
        /// Shards scanned.
        shards: u64,
    },
    /// Verification found silently corrupted shards.
    PayloadCorrupted {
        /// The cart whose payload failed verification.
        cart: CartId,
        /// The rack that caught the corruption.
        endpoint: EndpointId,
        /// Number of corrupted shards.
        corrupted: u64,
        /// Which delivery attempt this was (1-based).
        attempt: u32,
    },
    /// Corrupted shards were rebuilt from RAID parity at the dock.
    ShardsReconstructed {
        /// The cart whose shards were rebuilt.
        cart: CartId,
        /// Shards reconstructed.
        shards: u64,
    },
    /// A cart stalled mid-tube, blocking its track direction until repaired.
    CartStalled {
        /// The stalled cart.
        cart: CartId,
        /// Index of the blocked inter-endpoint track segment.
        track: usize,
    },
    /// A rack's dock-station controller crashed while a cart was docking;
    /// the docking stalls until the controller recovers.
    DockControllerCrashed {
        /// The cart whose docking is stalled.
        cart: CartId,
        /// The rack whose controller crashed.
        endpoint: EndpointId,
    },
    /// A crashed dock-station controller came back into service and the
    /// stalled docking resumed.
    DockControllerRecovered {
        /// The cart whose docking resumed.
        cart: CartId,
        /// The rack whose controller recovered.
        endpoint: EndpointId,
        /// Time the controller was down (recovery latency of the policy).
        downtime: Seconds,
    },
    /// A blocked track segment came back into service.
    TrackRestored {
        /// Index of the restored track segment.
        track: usize,
    },
}

/// A timestamped trace event.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the transition.
    pub time: Seconds,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A bounded, append-only event log.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Where the simulator's trace events go.
///
/// The hot path calls [`TraceSink::record`] for every state transition, so
/// the disabled variant must cost one branch and nothing else — no clock
/// read, no allocation. The buffered variant appends into a [`Trace`] whose
/// backing storage is preallocated up front, so steady-state recording
/// never reallocates.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum TraceSink {
    /// Tracing off: every record is a branch and an immediate return.
    #[default]
    Disabled,
    /// Tracing on, into a bounded preallocated buffer.
    Buffered(Trace),
}

impl TraceSink {
    /// A sink buffering into a fresh [`Trace`] of the given capacity.
    #[must_use]
    pub fn buffered(capacity: usize) -> Self {
        Self::Buffered(Trace::with_capacity(capacity))
    }

    /// Whether events are being retained. Callers that must compute the
    /// event payload (or read a clock) should branch on this first.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Self::Buffered(_))
    }

    /// Records one event (a no-op branch when disabled).
    #[inline]
    pub fn record(&mut self, time: Seconds, kind: TraceEventKind) {
        if let Self::Buffered(trace) = self {
            trace.record(time, kind);
        }
    }

    /// Takes the buffered trace, leaving the sink disabled. `None` if the
    /// sink was never enabled.
    pub fn take(&mut self) -> Option<Trace> {
        match std::mem::take(self) {
            Self::Buffered(trace) => Some(trace),
            Self::Disabled => None,
        }
    }
}

impl Trace {
    /// An empty trace retaining at most `capacity` events (older events are
    /// kept; later ones are counted as dropped — the head of a schedule is
    /// usually what matters for debugging). Storage for the retained events
    /// is allocated up front (bounded at 2^16 entries) so recording on the
    /// simulator hot path never grows the buffer.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// Rebuilds a trace from previously captured state — the checkpoint
    /// restore path. Unlike [`Trace::with_capacity`] + replayed
    /// [`Trace::record`] calls, this reinstates the `dropped` counter too,
    /// so a resumed trace is bit-identical to the uninterrupted one.
    #[must_use]
    pub fn from_parts(events: Vec<TraceEvent>, capacity: usize, dropped: u64) -> Self {
        let mut events = events;
        events.truncate(capacity);
        events.reserve(capacity.min(1 << 16).saturating_sub(events.len()));
        Self {
            events,
            capacity,
            dropped,
        }
    }

    /// Appends an event (or counts it dropped past capacity).
    pub fn record(&mut self, time: Seconds, kind: TraceEventKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { time, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that were not retained.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retention bound this trace was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events involving one cart, in order.
    #[must_use]
    pub fn for_cart(&self, cart: CartId) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e.kind {
                TraceEventKind::Launch { cart: c, .. }
                | TraceEventKind::EnterTube { cart: c }
                | TraceEventKind::BeginDock { cart: c }
                | TraceEventKind::Docked { cart: c, .. }
                | TraceEventKind::ProcessingDone { cart: c }
                | TraceEventKind::DeliveryFailed { cart: c, .. }
                | TraceEventKind::VerifyStarted { cart: c, .. }
                | TraceEventKind::PayloadVerified { cart: c, .. }
                | TraceEventKind::PayloadCorrupted { cart: c, .. }
                | TraceEventKind::ShardsReconstructed { cart: c, .. }
                | TraceEventKind::CartStalled { cart: c, .. }
                | TraceEventKind::DockControllerCrashed { cart: c, .. }
                | TraceEventKind::DockControllerRecovered { cart: c, .. } => c == cart,
                TraceEventKind::TrackRestored { .. } => false,
            })
            .copied()
            .collect()
    }

    /// Checks the per-cart lifecycle invariant: every cart's events follow
    /// the repeating pattern Launch → EnterTube → BeginDock → Docked
    /// (ProcessingDone may follow a Docked), with non-decreasing times.
    #[must_use]
    pub fn lifecycle_is_well_formed(&self, cart: CartId) -> bool {
        let mut expected_launch = true;
        let mut last_time = f64::NEG_INFINITY;
        let mut phase = 0u8; // 0=idle, 1=undocking, 2=tube, 3=docking
        for e in self.for_cart(cart) {
            if e.time.seconds() < last_time {
                return false;
            }
            last_time = e.time.seconds();
            phase = match (phase, e.kind) {
                (0, TraceEventKind::Launch { .. }) => 1,
                (1, TraceEventKind::EnterTube { .. }) => 2,
                (2, TraceEventKind::BeginDock { .. }) => 3,
                (3, TraceEventKind::Docked { .. }) => 0,
                (0, TraceEventKind::ProcessingDone { .. }) => 0,
                // A failed delivery is reported right after docking, while
                // the cart sits idle at the rack.
                (0, TraceEventKind::DeliveryFailed { .. }) => 0,
                // The verify-on-dock pipeline runs while the cart sits
                // docked at the rack; ordering among these events is checked
                // separately by `integrity_lifecycle_is_well_formed`.
                (0, TraceEventKind::VerifyStarted { .. })
                | (0, TraceEventKind::PayloadVerified { .. })
                | (0, TraceEventKind::PayloadCorrupted { .. })
                | (0, TraceEventKind::ShardsReconstructed { .. }) => 0,
                // A stall happens (and is repaired) inside the tube.
                (2, TraceEventKind::CartStalled { .. }) => 2,
                // A dock-controller crash stalls (and later resumes) the
                // docking phase: the cart stays at the dock throughout.
                (3, TraceEventKind::DockControllerCrashed { .. })
                | (3, TraceEventKind::DockControllerRecovered { .. }) => 3,
                _ => return false,
            };
            expected_launch = phase == 0;
        }
        expected_launch
    }

    /// Checks the integrity-pipeline ordering invariant for one cart: every
    /// `VerifyStarted` follows a `Docked` (with no intervening `Launch`),
    /// resolves to exactly one `PayloadVerified` or `PayloadCorrupted`
    /// before the cart launches again, and `ShardsReconstructed` appears
    /// only immediately after a `PayloadCorrupted`.
    #[must_use]
    pub fn integrity_lifecycle_is_well_formed(&self, cart: CartId) -> bool {
        let mut docked = false; // docked since the last launch
        let mut verifying = false; // a VerifyStarted awaits its verdict
        let mut just_corrupted = false; // last integrity event was PayloadCorrupted
        for e in self.for_cart(cart) {
            match e.kind {
                TraceEventKind::Launch { .. } => {
                    if verifying {
                        return false; // launched with a scrub outstanding
                    }
                    docked = false;
                    just_corrupted = false;
                }
                TraceEventKind::Docked { .. } => docked = true,
                TraceEventKind::VerifyStarted { .. } => {
                    if !docked || verifying {
                        return false;
                    }
                    verifying = true;
                    just_corrupted = false;
                }
                TraceEventKind::PayloadVerified { .. } => {
                    if !verifying {
                        return false;
                    }
                    verifying = false;
                }
                TraceEventKind::PayloadCorrupted { .. } => {
                    if !verifying {
                        return false;
                    }
                    verifying = false;
                    just_corrupted = true;
                }
                TraceEventKind::ShardsReconstructed { .. } => {
                    if !just_corrupted {
                        return false;
                    }
                    just_corrupted = false;
                }
                _ => {}
            }
        }
        !verifying
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: TraceEventKind) -> (Seconds, TraceEventKind) {
        (Seconds::new(t), kind)
    }

    #[test]
    fn sink_disabled_drops_and_buffered_retains() {
        let mut sink = TraceSink::default();
        assert!(!sink.is_enabled());
        sink.record(Seconds::new(1.0), TraceEventKind::EnterTube { cart: 0 });
        assert!(sink.take().is_none());

        let mut sink = TraceSink::buffered(4);
        assert!(sink.is_enabled());
        sink.record(Seconds::new(1.0), TraceEventKind::EnterTube { cart: 0 });
        let trace = sink.take().expect("buffered sink yields its trace");
        assert_eq!(trace.events().len(), 1);
        assert!(!sink.is_enabled(), "take() leaves the sink disabled");
    }

    #[test]
    fn trace_buffer_is_preallocated_and_bounded() {
        let small = Trace::with_capacity(8);
        assert!(small.events.capacity() >= 8);
        let huge = Trace::with_capacity(usize::MAX);
        assert_eq!(huge.events.capacity(), 1 << 16);
        assert_eq!(huge.capacity, usize::MAX);
    }

    #[test]
    fn records_in_order_up_to_capacity() {
        let mut trace = Trace::with_capacity(2);
        trace.record(Seconds::new(1.0), TraceEventKind::EnterTube { cart: 0 });
        trace.record(Seconds::new(2.0), TraceEventKind::BeginDock { cart: 0 });
        trace.record(
            Seconds::new(3.0),
            TraceEventKind::Docked {
                cart: 0,
                endpoint: 1,
            },
        );
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn cart_filter() {
        let mut trace = Trace::with_capacity(100);
        trace.record(
            Seconds::new(0.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 0,
                to: 1,
            },
        );
        trace.record(
            Seconds::new(0.5),
            TraceEventKind::Launch {
                cart: 1,
                from: 0,
                to: 1,
            },
        );
        trace.record(Seconds::new(3.0), TraceEventKind::EnterTube { cart: 0 });
        assert_eq!(trace.for_cart(0).len(), 2);
        assert_eq!(trace.for_cart(1).len(), 1);
        assert!(trace.for_cart(7).is_empty());
    }

    #[test]
    fn well_formed_lifecycle_accepted() {
        let mut trace = Trace::with_capacity(100);
        let seq = [
            ev(
                0.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 0,
                    to: 1,
                },
            ),
            ev(3.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(5.6, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                8.6,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 1,
                },
            ),
            ev(8.6, TraceEventKind::ProcessingDone { cart: 0 }),
            ev(
                9.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 1,
                    to: 0,
                },
            ),
            ev(12.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(14.6, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                17.6,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 0,
                },
            ),
        ];
        for (t, k) in seq {
            trace.record(t, k);
        }
        assert!(trace.lifecycle_is_well_formed(0));
    }

    #[test]
    fn malformed_lifecycles_rejected() {
        // Docked without ever launching.
        let mut t1 = Trace::with_capacity(10);
        t1.record(
            Seconds::new(1.0),
            TraceEventKind::Docked {
                cart: 0,
                endpoint: 1,
            },
        );
        assert!(!t1.lifecycle_is_well_formed(0));

        // Launch twice in a row.
        let mut t2 = Trace::with_capacity(10);
        t2.record(
            Seconds::new(0.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 0,
                to: 1,
            },
        );
        t2.record(
            Seconds::new(1.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 0,
                to: 1,
            },
        );
        assert!(!t2.lifecycle_is_well_formed(0));

        // Time going backwards.
        let mut t3 = Trace::with_capacity(10);
        t3.record(
            Seconds::new(5.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 0,
                to: 1,
            },
        );
        t3.record(Seconds::new(4.0), TraceEventKind::EnterTube { cart: 0 });
        assert!(!t3.lifecycle_is_well_formed(0));

        // Mid-flight at end of trace.
        let mut t4 = Trace::with_capacity(10);
        t4.record(
            Seconds::new(0.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 0,
                to: 1,
            },
        );
        assert!(!t4.lifecycle_is_well_formed(0));
    }

    #[test]
    fn empty_trace_is_well_formed() {
        let trace = Trace::with_capacity(10);
        assert!(trace.lifecycle_is_well_formed(0));
        assert!(trace.integrity_lifecycle_is_well_formed(0));
    }

    #[test]
    fn integrity_events_fit_the_lifecycle() {
        let mut trace = Trace::with_capacity(100);
        let seq = [
            ev(
                0.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 0,
                    to: 1,
                },
            ),
            ev(3.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(5.6, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                8.6,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 1,
                },
            ),
            ev(
                8.6,
                TraceEventKind::VerifyStarted {
                    cart: 0,
                    endpoint: 1,
                    shards: 32,
                },
            ),
            ev(
                100.0,
                TraceEventKind::PayloadCorrupted {
                    cart: 0,
                    endpoint: 1,
                    corrupted: 2,
                    attempt: 1,
                },
            ),
            ev(
                100.0,
                TraceEventKind::ShardsReconstructed { cart: 0, shards: 2 },
            ),
            ev(150.0, TraceEventKind::ProcessingDone { cart: 0 }),
            ev(
                151.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 1,
                    to: 0,
                },
            ),
            ev(154.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(156.6, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                159.6,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 0,
                },
            ),
        ];
        for (t, k) in seq {
            trace.record(t, k);
        }
        assert!(trace.lifecycle_is_well_formed(0));
        assert!(trace.integrity_lifecycle_is_well_formed(0));
    }

    #[test]
    fn integrity_ordering_violations_rejected() {
        let docked = |t: &mut Trace| {
            t.record(
                Seconds::new(0.0),
                TraceEventKind::Launch {
                    cart: 0,
                    from: 0,
                    to: 1,
                },
            );
            t.record(Seconds::new(3.0), TraceEventKind::EnterTube { cart: 0 });
            t.record(Seconds::new(5.6), TraceEventKind::BeginDock { cart: 0 });
            t.record(
                Seconds::new(8.6),
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 1,
                },
            );
        };

        // Verification may not start before the cart ever docks.
        let mut t = Trace::with_capacity(10);
        t.record(
            Seconds::new(0.0),
            TraceEventKind::VerifyStarted {
                cart: 0,
                endpoint: 1,
                shards: 32,
            },
        );
        assert!(!t.integrity_lifecycle_is_well_formed(0));

        // A verdict with no scrub outstanding is malformed.
        let mut t = Trace::with_capacity(10);
        docked(&mut t);
        t.record(
            Seconds::new(9.0),
            TraceEventKind::PayloadVerified {
                cart: 0,
                endpoint: 1,
                shards: 32,
            },
        );
        assert!(!t.integrity_lifecycle_is_well_formed(0));

        // Reconstruction without a preceding corruption is malformed.
        let mut t = Trace::with_capacity(10);
        docked(&mut t);
        t.record(
            Seconds::new(9.0),
            TraceEventKind::ShardsReconstructed { cart: 0, shards: 1 },
        );
        assert!(!t.integrity_lifecycle_is_well_formed(0));

        // Launching with a scrub still outstanding is malformed.
        let mut t = Trace::with_capacity(10);
        docked(&mut t);
        t.record(
            Seconds::new(9.0),
            TraceEventKind::VerifyStarted {
                cart: 0,
                endpoint: 1,
                shards: 32,
            },
        );
        t.record(
            Seconds::new(10.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 1,
                to: 0,
            },
        );
        assert!(!t.integrity_lifecycle_is_well_formed(0));

        // A trace ending mid-scrub is malformed.
        let mut t = Trace::with_capacity(10);
        docked(&mut t);
        t.record(
            Seconds::new(9.0),
            TraceEventKind::VerifyStarted {
                cart: 0,
                endpoint: 1,
                shards: 32,
            },
        );
        assert!(!t.integrity_lifecycle_is_well_formed(0));
    }

    #[test]
    fn from_parts_round_trips_a_trace_exactly() {
        let mut original = Trace::with_capacity(2);
        original.record(Seconds::new(1.0), TraceEventKind::EnterTube { cart: 0 });
        original.record(Seconds::new(2.0), TraceEventKind::BeginDock { cart: 0 });
        original.record(
            Seconds::new(3.0),
            TraceEventKind::ProcessingDone { cart: 0 },
        );
        assert_eq!(original.dropped(), 1);
        let mut restored = Trace::from_parts(
            original.events().to_vec(),
            original.capacity,
            original.dropped(),
        );
        assert_eq!(restored, original);
        // Recording continues identically past the restore point.
        original.record(Seconds::new(4.0), TraceEventKind::EnterTube { cart: 1 });
        restored.record(Seconds::new(4.0), TraceEventKind::EnterTube { cart: 1 });
        assert_eq!(restored, original);
        assert_eq!(restored.dropped(), 2);
    }

    #[test]
    fn from_parts_clamps_events_to_capacity() {
        let events = vec![
            TraceEvent {
                time: Seconds::new(1.0),
                kind: TraceEventKind::EnterTube { cart: 0 },
            };
            5
        ];
        let t = Trace::from_parts(events, 3, 0);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn dock_controller_crash_events_fit_the_lifecycle() {
        let mut trace = Trace::with_capacity(100);
        let seq = [
            ev(
                0.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 0,
                    to: 1,
                },
            ),
            ev(3.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(5.6, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                5.6,
                TraceEventKind::DockControllerCrashed {
                    cart: 0,
                    endpoint: 1,
                },
            ),
            ev(
                35.6,
                TraceEventKind::DockControllerRecovered {
                    cart: 0,
                    endpoint: 1,
                    downtime: Seconds::new(30.0),
                },
            ),
            ev(
                38.6,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 1,
                },
            ),
        ];
        for (t, k) in seq {
            trace.record(t, k);
        }
        // The crash stalls docking; Docked closes the cycle back to idle.
        assert!(trace.lifecycle_is_well_formed(0));
        trace.record(
            Seconds::new(39.0),
            TraceEventKind::Launch {
                cart: 0,
                from: 1,
                to: 0,
            },
        );
        trace.record(Seconds::new(42.0), TraceEventKind::EnterTube { cart: 0 });
        trace.record(Seconds::new(44.6), TraceEventKind::BeginDock { cart: 0 });
        trace.record(
            Seconds::new(47.6),
            TraceEventKind::Docked {
                cart: 0,
                endpoint: 0,
            },
        );
        assert!(trace.lifecycle_is_well_formed(0));

        // A crash outside the docking phase is malformed.
        let mut bad = Trace::with_capacity(10);
        bad.record(
            Seconds::new(0.0),
            TraceEventKind::DockControllerCrashed {
                cart: 0,
                endpoint: 1,
            },
        );
        assert!(!bad.lifecycle_is_well_formed(0));
    }

    #[test]
    fn fault_events_fit_the_lifecycle() {
        let mut trace = Trace::with_capacity(100);
        let seq = [
            ev(
                0.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 0,
                    to: 1,
                },
            ),
            ev(3.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(4.0, TraceEventKind::CartStalled { cart: 0, track: 0 }),
            ev(64.0, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                67.0,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 1,
                },
            ),
            ev(
                67.0,
                TraceEventKind::DeliveryFailed {
                    cart: 0,
                    endpoint: 1,
                    attempt: 1,
                },
            ),
            ev(
                68.0,
                TraceEventKind::Launch {
                    cart: 0,
                    from: 1,
                    to: 0,
                },
            ),
            ev(71.0, TraceEventKind::EnterTube { cart: 0 }),
            ev(73.6, TraceEventKind::BeginDock { cart: 0 }),
            ev(
                76.6,
                TraceEventKind::Docked {
                    cart: 0,
                    endpoint: 0,
                },
            ),
        ];
        for (t, k) in seq {
            trace.record(t, k);
        }
        assert!(trace.lifecycle_is_well_formed(0));
        // TrackRestored belongs to no cart.
        trace.record(
            Seconds::new(80.0),
            TraceEventKind::TrackRestored { track: 0 },
        );
        assert_eq!(trace.for_cart(0).len(), 10);
        assert!(trace.lifecycle_is_well_formed(0));

        // A stall outside the tube is malformed.
        let mut bad = Trace::with_capacity(10);
        bad.record(
            Seconds::new(0.0),
            TraceEventKind::CartStalled { cart: 0, track: 0 },
        );
        assert!(!bad.lifecycle_is_well_formed(0));
    }
}
