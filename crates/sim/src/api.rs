//! The four-command DHL software API (§III-D).
//!
//! "The API provides at least these four commands: **Open**, **Close**,
//! **Read**, **Write**." This module is the synchronous, single-client
//! facade a rack's storage-management layer would call; each command
//! advances the facade's clock by the simulated duration and accounts the
//! energy. (Concurrent multi-cart scheduling lives in
//! [`crate::DhlSystem`].)

use dhl_rng::DeterministicRng;

use dhl_units::{Bytes, BytesPerSecond, Joules, Seconds};

use dhl_storage::connectors::{ConnectorKind, DockingConnector};
use dhl_storage::failure::{FailureModel, RaidConfig};

use crate::config::{EndpointKind, SimConfig};
use crate::movement::MovementCost;
use crate::parallel::{ReplicaReport, ReplicaSet};
use crate::system::{CartId, EndpointId, SimError};

/// Errors surfaced by the DHL API.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ApiError {
    /// No cart is currently stored in the library.
    NoCartAvailable,
    /// The destination endpoint's docking stations are all occupied.
    EndpointFull {
        /// The saturated endpoint.
        endpoint: EndpointId,
    },
    /// The endpoint index does not exist or is not a rack.
    InvalidEndpoint {
        /// The rejected index.
        endpoint: EndpointId,
    },
    /// The cart id is unknown or not docked where the command requires.
    CartNotDocked {
        /// The offending cart.
        cart: CartId,
    },
    /// A read/write exceeds the cart's capacity.
    ExceedsCapacity {
        /// Requested payload.
        requested: Bytes,
        /// Cart capacity.
        capacity: Bytes,
    },
    /// SSDs failed in flight beyond what the RAID layout tolerates
    /// (§III-D: "the endpoint's DHL API will report the error").
    DataLoss {
        /// The affected cart.
        cart: CartId,
        /// Number of failed SSDs.
        failed_ssds: u32,
    },
    /// The cart's docking connector exceeded its rated mating cycles (§VI).
    ConnectorWornOut {
        /// The affected cart.
        cart: CartId,
    },
}

impl core::fmt::Display for ApiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoCartAvailable => f.write_str("no cart available in the library"),
            Self::EndpointFull { endpoint } => {
                write!(f, "endpoint {endpoint} has no free docking station")
            }
            Self::InvalidEndpoint { endpoint } => {
                write!(f, "endpoint {endpoint} does not exist or is not a rack")
            }
            Self::CartNotDocked { cart } => {
                write!(f, "cart {cart} is not docked where this command requires")
            }
            Self::ExceedsCapacity {
                requested,
                capacity,
            } => write!(f, "payload {requested} exceeds cart capacity {capacity}"),
            Self::DataLoss { cart, failed_ssds } => write!(
                f,
                "cart {cart} lost {failed_ssds} ssds in flight beyond raid tolerance"
            ),
            Self::ConnectorWornOut { cart } => {
                write!(f, "cart {cart} docking connector exceeded its rated cycles")
            }
        }
    }
}

impl std::error::Error for ApiError {}

/// Builds a [`ReplicaSet`] over a configuration — the public entry point
/// for seeded Monte-Carlo evaluation. Each replica is an independent
/// [`crate::DhlSystem`] bulk transfer; results merge deterministically
/// regardless of thread count (see [`crate::parallel`]).
///
/// # Examples
///
/// ```rust
/// use dhl_sim::{api, SimConfig};
/// use dhl_units::Bytes;
///
/// let merged = api::replicas(SimConfig::paper_default(), Bytes::from_terabytes(512.0))
///     .replicas(2)
///     .run()
///     .unwrap();
/// assert_eq!(merged.replica_count(), 2);
/// ```
#[must_use]
pub fn replicas(cfg: SimConfig, dataset: Bytes) -> ReplicaSet {
    ReplicaSet::new(cfg, dataset)
}

/// One-call convenience over [`replicas`]: runs `count` seeded replicas on
/// [`crate::parallel::default_threads`] workers and merges the outcome.
///
/// # Errors
///
/// The first (by replica index) [`SimError`] any replica produced.
pub fn run_replica_set(
    cfg: SimConfig,
    dataset: Bytes,
    count: usize,
) -> Result<ReplicaReport, SimError> {
    replicas(cfg, dataset).replicas(count).run()
}

/// Reliability options for the API facade.
#[derive(Clone, Debug)]
pub struct ReliabilityConfig {
    /// Per-SSD failure model.
    pub failure: FailureModel,
    /// RAID layout across the cart's SSDs.
    pub raid: RaidConfig,
    /// Number of SSDs per cart.
    pub ssds_per_cart: u32,
    /// RNG seed for reproducible injection.
    pub seed: u64,
}

#[derive(Clone, Debug)]
struct ApiCart {
    endpoint: EndpointId,
    connector: DockingConnector,
}

/// The synchronous DHL API facade.
///
/// # Examples
///
/// ```rust
/// use dhl_sim::api::DhlApi;
/// use dhl_sim::SimConfig;
/// use dhl_units::{Bytes, BytesPerSecond};
///
/// let mut api = DhlApi::new(
///     SimConfig::paper_default(),
///     BytesPerSecond::from_gigabytes_per_second(227.2), // 32 SSDs reading
///     BytesPerSecond::from_gigabytes_per_second(192.0), // 32 SSDs writing
/// ).unwrap();
///
/// let cart = api.open(1)?;                        // shuttle a cart to rack 1
/// api.read(cart, Bytes::from_terabytes(10.0))?;   // read 10 TB locally
/// api.close(cart)?;                               // send it home
/// assert!(api.now().seconds() > 17.0);            // two trips + read time
/// # Ok::<(), dhl_sim::api::ApiError>(())
/// ```
#[derive(Debug)]
pub struct DhlApi {
    cfg: SimConfig,
    read_bandwidth: BytesPerSecond,
    write_bandwidth: BytesPerSecond,
    clock: Seconds,
    energy: Joules,
    carts: Vec<ApiCart>,
    dock_used: Vec<u32>,
    reliability: Option<(ReliabilityConfig, DeterministicRng)>,
}

impl DhlApi {
    /// Builds the facade over a validated configuration with the given
    /// docked read/write bandwidths.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidEndpoint`] is never returned here; configuration
    /// errors surface as `Err(config_error_message)` via
    /// [`crate::config::ConfigError`] stringification.
    pub fn new(
        cfg: SimConfig,
        read_bandwidth: BytesPerSecond,
        write_bandwidth: BytesPerSecond,
    ) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let carts = (0..cfg.num_carts)
            .map(|_| ApiCart {
                endpoint: 0,
                connector: DockingConnector::new(ConnectorKind::UsbC),
            })
            .collect();
        let mut dock_used = vec![0u32; cfg.endpoints.len()];
        dock_used[0] = cfg.num_carts;
        Ok(Self {
            cfg,
            read_bandwidth,
            write_bandwidth,
            clock: Seconds::ZERO,
            energy: Joules::ZERO,
            carts,
            dock_used,
            reliability: None,
        })
    }

    /// Enables stochastic in-flight SSD failure injection.
    pub fn with_reliability(mut self, reliability: ReliabilityConfig) -> Self {
        let rng = DeterministicRng::seed_from_u64(reliability.seed);
        self.reliability = Some((reliability, rng));
        self
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.clock
    }

    /// Total energy accounted so far.
    #[must_use]
    pub fn energy_used(&self) -> Joules {
        self.energy
    }

    /// Where a cart currently sits.
    #[must_use]
    pub fn cart_endpoint(&self, cart: CartId) -> Option<EndpointId> {
        self.carts.get(cart).map(|c| c.endpoint)
    }

    fn movement(&self, from: EndpointId, to: EndpointId) -> MovementCost {
        let d = (self.cfg.endpoints[to].position - self.cfg.endpoints[from].position).abs();
        MovementCost::for_distance(&self.cfg, d)
    }

    /// **Open**: requests a cart from the library; if one is present it is
    /// shuttled to `endpoint` and docked.
    ///
    /// # Errors
    ///
    /// - [`ApiError::InvalidEndpoint`] if `endpoint` is not a rack;
    /// - [`ApiError::NoCartAvailable`] if the library is empty;
    /// - [`ApiError::EndpointFull`] if all docking stations are occupied;
    /// - [`ApiError::ConnectorWornOut`] if the cart's connector is spent;
    /// - [`ApiError::DataLoss`] if injected SSD failures exceeded the RAID
    ///   tolerance (the cart still docks; its data is reported lost).
    pub fn open(&mut self, endpoint: EndpointId) -> Result<CartId, ApiError> {
        let spec = self
            .cfg
            .endpoints
            .get(endpoint)
            .ok_or(ApiError::InvalidEndpoint { endpoint })?;
        if spec.kind != EndpointKind::Rack {
            return Err(ApiError::InvalidEndpoint { endpoint });
        }
        if self.dock_used[endpoint] >= spec.docks {
            return Err(ApiError::EndpointFull { endpoint });
        }
        let cart = self
            .carts
            .iter()
            .position(|c| c.endpoint == 0)
            .ok_or(ApiError::NoCartAvailable)?;

        let cost = self.movement(0, endpoint);
        self.clock += cost.total_time;
        self.energy += cost.energy;
        self.dock_used[0] -= 1;
        self.dock_used[endpoint] += 1;
        self.carts[cart].endpoint = endpoint;
        if self.carts[cart].connector.mate().is_err() {
            return Err(ApiError::ConnectorWornOut { cart });
        }
        self.inject_failures(cart, cost.total_time)?;
        Ok(cart)
    }

    /// **Close**: disconnects the cart from its docking station and shuttles
    /// it back to the library.
    ///
    /// # Errors
    ///
    /// [`ApiError::CartNotDocked`] if the cart is not at a rack.
    pub fn close(&mut self, cart: CartId) -> Result<(), ApiError> {
        let ep = self.rack_of(cart)?;
        let cost = self.movement(ep, 0);
        self.clock += cost.total_time;
        self.energy += cost.energy;
        self.dock_used[ep] -= 1;
        self.dock_used[0] += 1;
        self.carts[cart].endpoint = 0;
        self.inject_failures(cart, cost.total_time)?;
        Ok(())
    }

    /// **Read**: reads `bytes` from a docked cart at local PCIe bandwidth.
    /// Returns the time the read took.
    ///
    /// # Errors
    ///
    /// - [`ApiError::CartNotDocked`] if the cart is not at a rack;
    /// - [`ApiError::ExceedsCapacity`] if `bytes` exceeds the cart.
    pub fn read(&mut self, cart: CartId, bytes: Bytes) -> Result<Seconds, ApiError> {
        self.rack_of(cart)?;
        self.check_capacity(bytes)?;
        let t = self.read_bandwidth.transfer_time(bytes);
        self.clock += t;
        Ok(t)
    }

    /// **Write**: writes `bytes` to a docked cart at local PCIe bandwidth.
    /// Returns the time the write took.
    ///
    /// # Errors
    ///
    /// Same as [`DhlApi::read`].
    pub fn write(&mut self, cart: CartId, bytes: Bytes) -> Result<Seconds, ApiError> {
        self.rack_of(cart)?;
        self.check_capacity(bytes)?;
        let t = self.write_bandwidth.transfer_time(bytes);
        self.clock += t;
        Ok(t)
    }

    fn rack_of(&self, cart: CartId) -> Result<EndpointId, ApiError> {
        let c = self
            .carts
            .get(cart)
            .ok_or(ApiError::CartNotDocked { cart })?;
        if c.endpoint == 0 {
            return Err(ApiError::CartNotDocked { cart });
        }
        Ok(c.endpoint)
    }

    fn check_capacity(&self, bytes: Bytes) -> Result<(), ApiError> {
        if bytes > self.cfg.cart_capacity {
            return Err(ApiError::ExceedsCapacity {
                requested: bytes,
                capacity: self.cfg.cart_capacity,
            });
        }
        Ok(())
    }

    fn inject_failures(&mut self, cart: CartId, duration: Seconds) -> Result<(), ApiError> {
        if let Some((rel, rng)) = self.reliability.as_mut() {
            let failed = rel
                .failure
                .sample_failures(rng, rel.ssds_per_cart, duration);
            if !rel.raid.tolerates(failed) {
                return Err(ApiError::DataLoss {
                    cart,
                    failed_ssds: failed,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn api() -> DhlApi {
        DhlApi::new(
            SimConfig::paper_default(),
            BytesPerSecond::from_gigabytes_per_second(227.2),
            BytesPerSecond::from_gigabytes_per_second(192.0),
        )
        .unwrap()
    }

    #[test]
    fn open_read_close_round_trip() {
        let mut api = api();
        let cart = api.open(1).unwrap();
        assert_eq!(api.cart_endpoint(cart), Some(1));
        assert!((api.now().seconds() - 8.6).abs() < 1e-9);

        let t = api.read(cart, Bytes::from_terabytes(256.0)).unwrap();
        assert!((t.seconds() - 256e12 / 227.2e9).abs() < 1e-6);

        api.close(cart).unwrap();
        assert_eq!(api.cart_endpoint(cart), Some(0));
        assert!((api.now().seconds() - (17.2 + t.seconds())).abs() < 1e-6);
        // Two movements ≈ 2 × 15.2 kJ.
        assert!((api.energy_used().kilojoules() - 30.4).abs() < 0.5);
    }

    #[test]
    fn endpoint_fills_up() {
        let mut api = api(); // rack has 4 docks
        for _ in 0..4 {
            api.open(1).unwrap();
        }
        assert_eq!(api.open(1), Err(ApiError::EndpointFull { endpoint: 1 }));
    }

    #[test]
    fn library_can_run_dry() {
        let mut cfg = SimConfig::paper_default();
        cfg.num_carts = 2;
        cfg.endpoints[0].docks = 2;
        let mut api = DhlApi::new(
            cfg,
            BytesPerSecond::from_gigabytes_per_second(1.0),
            BytesPerSecond::from_gigabytes_per_second(1.0),
        )
        .unwrap();
        api.open(1).unwrap();
        api.open(1).unwrap();
        assert_eq!(api.open(1), Err(ApiError::NoCartAvailable));
    }

    #[test]
    fn invalid_commands_are_rejected() {
        let mut api = api();
        assert_eq!(api.open(0), Err(ApiError::InvalidEndpoint { endpoint: 0 }));
        assert_eq!(api.open(9), Err(ApiError::InvalidEndpoint { endpoint: 9 }));
        assert_eq!(api.close(0), Err(ApiError::CartNotDocked { cart: 0 }));
        assert_eq!(
            api.read(99, Bytes::new(1)),
            Err(ApiError::CartNotDocked { cart: 99 })
        );
        let cart = api.open(1).unwrap();
        assert!(matches!(
            api.read(cart, Bytes::from_terabytes(300.0)),
            Err(ApiError::ExceedsCapacity { .. })
        ));
    }

    #[test]
    fn write_uses_write_bandwidth() {
        let mut api = api();
        let cart = api.open(1).unwrap();
        let t = api.write(cart, Bytes::from_terabytes(1.92)).unwrap();
        assert!((t.seconds() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reliability_injection_with_certain_failure() {
        // AFR ~1 across a long "trip": with zero parity, data loss is
        // certain.
        let mut cfg = SimConfig::paper_default();
        cfg.dock_time = Seconds::new(1e6); // absurdly long exposure
        let mut api = DhlApi::new(
            cfg,
            BytesPerSecond::from_gigabytes_per_second(1.0),
            BytesPerSecond::from_gigabytes_per_second(1.0),
        )
        .unwrap()
        .with_reliability(ReliabilityConfig {
            failure: FailureModel::new(0.999999),
            raid: RaidConfig::none(32),
            ssds_per_cart: 32,
            seed: 7,
        });
        assert!(matches!(api.open(1), Err(ApiError::DataLoss { .. })));
    }

    #[test]
    fn reliability_with_strong_raid_survives() {
        let mut api = api().with_reliability(ReliabilityConfig {
            failure: FailureModel::typical_enterprise_ssd(),
            raid: RaidConfig::new(28, 4).unwrap(),
            ssds_per_cart: 32,
            seed: 7,
        });
        // Hundreds of normal trips: never a loss with 4-parity RAID at 1% AFR.
        for _ in 0..50 {
            let cart = api.open(1).unwrap();
            api.close(cart).unwrap();
        }
    }

    #[test]
    fn error_messages_render() {
        let msgs = [
            ApiError::NoCartAvailable.to_string(),
            ApiError::EndpointFull { endpoint: 1 }.to_string(),
            ApiError::DataLoss {
                cart: 3,
                failed_ssds: 5,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("library"));
        assert!(msgs[1].contains("endpoint 1"));
        assert!(msgs[2].contains("5 ssds"));
    }
}
