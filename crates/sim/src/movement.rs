//! Per-movement physics: time, energy, and speed for one cart hop.

use serde::{Deserialize, Serialize};

use dhl_units::{Joules, Metres, MetresPerSecond, Seconds};

use crate::config::SimConfig;

/// Precomputed cost of moving one cart over a given distance.
///
/// Shared by the event-driven simulator and the synchronous API facade so
/// both account movements identically.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MovementCost {
    /// Cruise speed actually reachable on this hop (≤ configured max; short
    /// hops cannot fit the full ramps).
    pub speed: MetresPerSecond,
    /// Time from undock start to dock completion.
    pub total_time: Seconds,
    /// Motion time only (excludes dock/undock).
    pub motion_time: Seconds,
    /// Net electrical energy: acceleration + braking + levitation drag +
    /// active stabilisation.
    pub energy: Joules,
}

impl MovementCost {
    /// Computes the cost of one hop of `distance` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not strictly positive (a zero-length hop is a
    /// scheduling bug, not a physical movement).
    #[must_use]
    pub fn for_distance(cfg: &SimConfig, distance: Metres) -> Self {
        Self::for_distance_limited(cfg, distance, cfg.max_speed)
    }

    /// Like [`MovementCost::for_distance`], but with an additional speed cap
    /// below the configured maximum — used when a tube section is
    /// repressurised and drag limits the safe cruise.
    ///
    /// # Panics
    ///
    /// Panics if `distance` or `speed_cap` is not strictly positive.
    #[must_use]
    pub fn for_distance_limited(
        cfg: &SimConfig,
        distance: Metres,
        speed_cap: MetresPerSecond,
    ) -> Self {
        assert!(
            distance.value() > 0.0,
            "movement distance must be positive, got {distance:?}"
        );
        assert!(
            speed_cap.value() > 0.0,
            "speed cap must be positive, got {speed_cap:?}"
        );
        let accel = cfg.lim.acceleration();
        // The hop must fit both ramps: d ≥ v²/a ⇒ v ≤ √(a·d).
        let fit_speed = MetresPerSecond::new((accel.value() * distance.value()).sqrt());
        let speed = cfg.max_speed.min(speed_cap).min(fit_speed);
        let kin = dhl_physics::TripKinematics::new(distance, speed, accel)
            .expect("speed was chosen to fit the hop");
        let motion_time = kin.motion_time(cfg.time_model);

        let accel_energy = cfg.lim.accel_energy(cfg.cart_mass, speed);
        let decel_energy = cfg.braking.decel_energy(cfg.cart_mass, speed);
        let drag = cfg.levitation.coasting_drag_loss(cfg.cart_mass, distance);
        let stabilisation = cfg.stabilisation.energy(motion_time);
        let energy = accel_energy + decel_energy + drag + stabilisation;

        Self {
            speed,
            total_time: cfg.undock_time + motion_time + cfg.dock_time,
            motion_time,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn default_hop_matches_paper_numbers() {
        let cfg = SimConfig::paper_default();
        let cost = MovementCost::for_distance(&cfg, Metres::new(500.0));
        assert_eq!(cost.speed.value(), 200.0);
        assert!((cost.total_time.seconds() - 8.6).abs() < 1e-9);
        assert!((cost.motion_time.seconds() - 2.6).abs() < 1e-9);
        // Launch energy 15.04 kJ plus small drag (138 J) and stabilisation
        // (13 J) terms the analytical model neglects.
        assert!((cost.energy.kilojoules() - 15.04).abs() < 0.2);
        assert!(cost.energy.kilojoules() > 15.04);
    }

    #[test]
    fn short_hops_cap_the_speed() {
        let cfg = SimConfig::paper_default();
        // 10 m hop: √(1000·10) = 100 m/s < 200 m/s.
        let cost = MovementCost::for_distance(&cfg, Metres::new(10.0));
        assert!((cost.speed.value() - 100.0).abs() < 1e-9);
        // Slower hop costs less energy.
        let full = MovementCost::for_distance(&cfg, Metres::new(500.0));
        assert!(cost.energy < full.energy);
    }

    #[test]
    fn longer_distance_same_speed_same_launch_energy() {
        let cfg = SimConfig::paper_default();
        let e500 = MovementCost::for_distance(&cfg, Metres::new(500.0));
        let e1000 = MovementCost::for_distance(&cfg, Metres::new(1000.0));
        // Energy barely grows (drag + stabilisation only)...
        assert!(e1000.energy.value() > e500.energy.value());
        assert!(e1000.energy.value() - e500.energy.value() < 300.0);
        // ...but time grows with the cruise.
        assert!(e1000.total_time > e500.total_time);
    }

    #[test]
    #[should_panic(expected = "movement distance must be positive")]
    fn zero_distance_panics() {
        let _ = MovementCost::for_distance(&SimConfig::paper_default(), Metres::ZERO);
    }

    #[test]
    fn speed_cap_slows_and_cheapens_the_hop() {
        let cfg = SimConfig::paper_default();
        let full = MovementCost::for_distance(&cfg, Metres::new(500.0));
        let capped = MovementCost::for_distance_limited(
            &cfg,
            Metres::new(500.0),
            MetresPerSecond::new(50.0),
        );
        assert_eq!(capped.speed.value(), 50.0);
        assert!(capped.total_time > full.total_time);
        assert!(capped.energy < full.energy);
        // A cap above max_speed changes nothing.
        let loose = MovementCost::for_distance_limited(
            &cfg,
            Metres::new(500.0),
            MetresPerSecond::new(1000.0),
        );
        assert_eq!(loose, full);
    }

    #[test]
    #[should_panic(expected = "speed cap must be positive")]
    fn zero_speed_cap_panics() {
        let _ = MovementCost::for_distance_limited(
            &SimConfig::paper_default(),
            Metres::new(500.0),
            MetresPerSecond::ZERO,
        );
    }
}
