//! Per-movement physics: time, energy, and speed for one cart hop.

use serde::{Deserialize, Serialize};

use dhl_units::{Joules, Metres, MetresPerSecond, Seconds};

use crate::config::SimConfig;

/// Precomputed cost of moving one cart over a given distance.
///
/// Shared by the event-driven simulator and the synchronous API facade so
/// both account movements identically.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct MovementCost {
    /// Cruise speed actually reachable on this hop (≤ configured max; short
    /// hops cannot fit the full ramps).
    pub speed: MetresPerSecond,
    /// Time from undock start to dock completion.
    pub total_time: Seconds,
    /// Motion time only (excludes dock/undock).
    pub motion_time: Seconds,
    /// Net electrical energy: acceleration + braking + levitation drag +
    /// active stabilisation.
    pub energy: Joules,
}

impl MovementCost {
    /// Computes the cost of one hop of `distance` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not strictly positive (a zero-length hop is a
    /// scheduling bug, not a physical movement).
    #[must_use]
    pub fn for_distance(cfg: &SimConfig, distance: Metres) -> Self {
        Self::for_distance_limited(cfg, distance, cfg.max_speed)
    }

    /// Like [`MovementCost::for_distance`], but with an additional speed cap
    /// below the configured maximum — used when a tube section is
    /// repressurised and drag limits the safe cruise.
    ///
    /// # Panics
    ///
    /// Panics if `distance` or `speed_cap` is not strictly positive.
    #[must_use]
    pub fn for_distance_limited(
        cfg: &SimConfig,
        distance: Metres,
        speed_cap: MetresPerSecond,
    ) -> Self {
        assert!(
            distance.value() > 0.0,
            "movement distance must be positive, got {distance:?}"
        );
        assert!(
            speed_cap.value() > 0.0,
            "speed cap must be positive, got {speed_cap:?}"
        );
        let accel = cfg.lim.acceleration();
        // The hop must fit both ramps: d ≥ v²/a ⇒ v ≤ √(a·d).
        let fit_speed = MetresPerSecond::new((accel.value() * distance.value()).sqrt());
        let speed = cfg.max_speed.min(speed_cap).min(fit_speed);
        let kin = dhl_physics::TripKinematics::new(distance, speed, accel)
            .expect("speed was chosen to fit the hop");
        let motion_time = kin.motion_time(cfg.time_model);

        let accel_energy = cfg.lim.accel_energy(cfg.cart_mass, speed);
        let decel_energy = cfg.braking.decel_energy(cfg.cart_mass, speed);
        let drag = cfg.levitation.coasting_drag_loss(cfg.cart_mass, distance);
        let stabilisation = cfg.stabilisation.energy(motion_time);
        let energy = accel_energy + decel_energy + drag + stabilisation;

        Self {
            speed,
            total_time: cfg.undock_time + motion_time + cfg.dock_time,
            motion_time,
            energy,
        }
    }
}

impl MovementCost {
    /// Batch-evaluates the trapezoidal kinematics for a set of hop
    /// distances under one speed cap, computing each *distinct* trapezoid
    /// exactly once and fanning the result out. Bit-identical to calling
    /// [`MovementCost::for_distance_limited`] per element — the batching
    /// only amortizes the evaluation, it never changes the arithmetic.
    ///
    /// # Panics
    ///
    /// As [`MovementCost::for_distance_limited`], per element.
    #[must_use]
    pub fn for_distances_limited(
        cfg: &SimConfig,
        distances: &[Metres],
        speed_cap: MetresPerSecond,
    ) -> Vec<Self> {
        let mut distinct: Vec<(f64, Self)> = Vec::new();
        distances
            .iter()
            .map(|&d| {
                match distinct
                    .iter()
                    .find(|(seen, _)| *seen == d.value())
                    .map(|&(_, cost)| cost)
                {
                    Some(cost) => cost,
                    None => {
                        let cost = Self::for_distance_limited(cfg, d, speed_cap);
                        distinct.push((d.value(), cost));
                        cost
                    }
                }
            })
            .collect()
    }
}

/// Precomputed per-hop movement costs for every ordered endpoint pair —
/// the batched-kinematics table the simulator's hot path reads instead of
/// re-running the trapezoid per event.
///
/// Two tiers mirror the two speeds a launch can happen at: `full` (the
/// configured maximum) and `degraded` (the repressurisation cap, present
/// only when that fault is configured). Both are evaluated in one batched
/// pass at construction via [`MovementCost::for_distances_limited`], so
/// enabling the table cannot perturb a single bit of the physics.
#[derive(Clone, Debug)]
pub(crate) struct MovementTable {
    /// Endpoint count; costs are indexed `from * n + to`.
    n: usize,
    /// Full-speed costs; `None` on the diagonal (a zero-length hop is a
    /// scheduling bug, never a physical movement).
    full: Vec<Option<MovementCost>>,
    /// Speed-capped costs for launches during a repressurisation window.
    degraded: Option<Vec<Option<MovementCost>>>,
}

impl MovementTable {
    /// Builds the table for `cfg`'s endpoints, with a degraded tier when a
    /// repressurisation `speed_cap` applies.
    #[must_use]
    pub(crate) fn build(cfg: &SimConfig, degraded_cap: Option<MetresPerSecond>) -> Self {
        let n = cfg.endpoints.len();
        let mut pairs = Vec::with_capacity(n * n - n);
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    pairs.push((cfg.endpoints[to].position - cfg.endpoints[from].position).abs());
                }
            }
        }
        let fan_out = |costs: Vec<MovementCost>| {
            let mut table = Vec::with_capacity(n * n);
            let mut it = costs.into_iter();
            for from in 0..n {
                for to in 0..n {
                    table.push((from != to).then(|| it.next().expect("one cost per pair")));
                }
            }
            table
        };
        let full = fan_out(MovementCost::for_distances_limited(
            cfg,
            &pairs,
            cfg.max_speed,
        ));
        let degraded =
            degraded_cap.map(|cap| fan_out(MovementCost::for_distances_limited(cfg, &pairs, cap)));
        Self { n, full, degraded }
    }

    /// Full-speed cost of the `from → to` hop.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either index is out of range.
    #[must_use]
    pub(crate) fn cost(&self, from: usize, to: usize) -> MovementCost {
        self.full[from * self.n + to].expect("movement between distinct endpoints")
    }

    /// Speed-capped cost of the `from → to` hop while the tube is
    /// repressurised; falls back to the full-speed cost when no degraded
    /// tier is configured (mirroring the simulator's cap fallback).
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either index is out of range.
    #[must_use]
    pub(crate) fn degraded_cost(&self, from: usize, to: usize) -> MovementCost {
        self.degraded.as_ref().unwrap_or(&self.full)[from * self.n + to]
            .expect("movement between distinct endpoints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn default_hop_matches_paper_numbers() {
        let cfg = SimConfig::paper_default();
        let cost = MovementCost::for_distance(&cfg, Metres::new(500.0));
        assert_eq!(cost.speed.value(), 200.0);
        assert!((cost.total_time.seconds() - 8.6).abs() < 1e-9);
        assert!((cost.motion_time.seconds() - 2.6).abs() < 1e-9);
        // Launch energy 15.04 kJ plus small drag (138 J) and stabilisation
        // (13 J) terms the analytical model neglects.
        assert!((cost.energy.kilojoules() - 15.04).abs() < 0.2);
        assert!(cost.energy.kilojoules() > 15.04);
    }

    #[test]
    fn short_hops_cap_the_speed() {
        let cfg = SimConfig::paper_default();
        // 10 m hop: √(1000·10) = 100 m/s < 200 m/s.
        let cost = MovementCost::for_distance(&cfg, Metres::new(10.0));
        assert!((cost.speed.value() - 100.0).abs() < 1e-9);
        // Slower hop costs less energy.
        let full = MovementCost::for_distance(&cfg, Metres::new(500.0));
        assert!(cost.energy < full.energy);
    }

    #[test]
    fn longer_distance_same_speed_same_launch_energy() {
        let cfg = SimConfig::paper_default();
        let e500 = MovementCost::for_distance(&cfg, Metres::new(500.0));
        let e1000 = MovementCost::for_distance(&cfg, Metres::new(1000.0));
        // Energy barely grows (drag + stabilisation only)...
        assert!(e1000.energy.value() > e500.energy.value());
        assert!(e1000.energy.value() - e500.energy.value() < 300.0);
        // ...but time grows with the cruise.
        assert!(e1000.total_time > e500.total_time);
    }

    #[test]
    #[should_panic(expected = "movement distance must be positive")]
    fn zero_distance_panics() {
        let _ = MovementCost::for_distance(&SimConfig::paper_default(), Metres::ZERO);
    }

    #[test]
    fn speed_cap_slows_and_cheapens_the_hop() {
        let cfg = SimConfig::paper_default();
        let full = MovementCost::for_distance(&cfg, Metres::new(500.0));
        let capped = MovementCost::for_distance_limited(
            &cfg,
            Metres::new(500.0),
            MetresPerSecond::new(50.0),
        );
        assert_eq!(capped.speed.value(), 50.0);
        assert!(capped.total_time > full.total_time);
        assert!(capped.energy < full.energy);
        // A cap above max_speed changes nothing.
        let loose = MovementCost::for_distance_limited(
            &cfg,
            Metres::new(500.0),
            MetresPerSecond::new(1000.0),
        );
        assert_eq!(loose, full);
    }

    #[test]
    #[should_panic(expected = "speed cap must be positive")]
    fn zero_speed_cap_panics() {
        let _ = MovementCost::for_distance_limited(
            &SimConfig::paper_default(),
            Metres::new(500.0),
            MetresPerSecond::ZERO,
        );
    }

    #[test]
    fn batched_evaluation_is_bit_identical_to_per_call() {
        let cfg = SimConfig::paper_default();
        let distances = [
            Metres::new(500.0),
            Metres::new(10.0),
            Metres::new(500.0), // duplicate: served from the distinct set
            Metres::new(1234.5),
        ];
        let batched = MovementCost::for_distances_limited(&cfg, &distances, cfg.max_speed);
        for (d, cost) in distances.iter().zip(&batched) {
            assert_eq!(*cost, MovementCost::for_distance(&cfg, *d));
        }
    }

    #[test]
    fn movement_table_matches_direct_evaluation() {
        use crate::config::{EndpointKind, EndpointSpec};
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints = vec![
            EndpointSpec {
                position: Metres::ZERO,
                docks: cfg.num_carts,
                kind: EndpointKind::Library,
            },
            EndpointSpec {
                position: Metres::new(250.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
            EndpointSpec {
                position: Metres::new(500.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
        ];
        let cap = MetresPerSecond::new(50.0);
        let table = MovementTable::build(&cfg, Some(cap));
        for from in 0..3 {
            for to in 0..3 {
                if from == to {
                    continue;
                }
                let d = (cfg.endpoints[to].position - cfg.endpoints[from].position).abs();
                assert_eq!(table.cost(from, to), MovementCost::for_distance(&cfg, d));
                assert_eq!(
                    table.degraded_cost(from, to),
                    MovementCost::for_distance_limited(&cfg, d, cap)
                );
            }
        }
        // Without a degraded tier the capped lookup falls back to full.
        let flat = MovementTable::build(&cfg, None);
        assert_eq!(flat.degraded_cost(0, 2), flat.cost(0, 2));
    }
}
