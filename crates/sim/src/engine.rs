//! A minimal, deterministic discrete-event engine.
//!
//! [`EventQueue`] is a time-ordered priority queue with a monotonic clock.
//! Ties are broken by insertion order, so simulations are fully
//! deterministic. The simulation loop lives with the caller:
//!
//! ```rust
//! use dhl_sim::engine::EventQueue;
//! use dhl_units::Seconds;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(Seconds::new(2.0), Ev::Pong);
//! q.schedule(Seconds::new(1.0), Ev::Ping);
//! let mut order = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     order.push((t.seconds(), ev));
//! }
//! assert_eq!(order, vec![(1.0, Ev::Ping), (2.0, Ev::Pong)]);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dhl_units::Seconds;

/// An entry in the queue: fires at `time`, FIFO within equal times.
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are always finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue with a simulation clock.
///
/// The clock only moves forward: popping an event advances `now` to the
/// event's timestamp. Scheduling into the past is rejected.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: f64,
    seq: u64,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        Seconds::new(self.now)
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The sequence number the next scheduled event will receive — part of
    /// the queue's checkpoint state (see [`EventQueue::from_entries`]).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` after the current time.
    ///
    /// A NaN or negative delay is a caller bug (bad config arithmetic or a
    /// corrupted checkpoint): debug builds panic; release builds clamp the
    /// delay to zero so the queue cannot be wedged with an unpoppable or
    /// time-travelling entry.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `delay` is negative or non-finite.
    pub fn schedule(&mut self, delay: Seconds, event: E) {
        debug_assert!(
            delay.seconds() >= 0.0 && delay.is_finite(),
            "event delay must be non-negative and finite, got {delay:?}"
        );
        let delay_s = if delay.is_finite() && delay.seconds() > 0.0 {
            delay.seconds()
        } else {
            0.0 // NaN, −∞/∞, and negative delays all clamp to "now"
        };
        self.schedule_at(Seconds::new(self.now + delay_s), event);
    }

    /// Schedules `event` at an absolute simulation time.
    ///
    /// A NaN or past `at` is a caller bug: debug builds panic; release
    /// builds clamp to the current time (see [`EventQueue::schedule`]).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` lies in the past or is non-finite.
    pub fn schedule_at(&mut self, at: Seconds, event: E) {
        debug_assert!(
            at.seconds() >= self.now && at.is_finite(),
            "cannot schedule into the past: now={}, at={at:?}",
            self.now
        );
        let time = if at.is_finite() && at.seconds() > self.now {
            at.seconds()
        } else {
            self.now
        };
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.processed += 1;
        Some((Seconds::new(entry.time), entry.event))
    }

    /// Peeks at the next event time without popping.
    #[must_use]
    pub fn next_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| Seconds::new(e.time))
    }

    /// The pending entries as `(time, seq, event)` in deterministic pop
    /// order — the exact order [`EventQueue::pop`] would drain them, since
    /// `(time, seq)` is a total order. This is the checkpoint view of the
    /// queue: feeding it back through [`EventQueue::from_entries`] rebuilds
    /// a queue with an identical future.
    #[must_use]
    pub fn pending_entries(&self) -> Vec<(Seconds, u64, &E)> {
        let mut entries: Vec<_> = self
            .heap
            .iter()
            .map(|e| (Seconds::new(e.time), e.seq, &e.event))
            .collect();
        entries.sort_by(|a, b| {
            a.0.seconds()
                .partial_cmp(&b.0.seconds())
                .expect("event times are always finite")
                .then_with(|| a.1.cmp(&b.1))
        });
        entries
    }

    /// Rebuilds a queue from checkpointed state: the clock, the next
    /// sequence number, the processed-event count, and the pending entries
    /// with their original sequence numbers. Pop order is identical to the
    /// queue the state was exported from because `(time, seq)` totally
    /// orders entries regardless of heap insertion order.
    ///
    /// Corrupted input is tolerated, not trusted: entry times are clamped
    /// into `[now, ∞)` (NaN → `now`) and the sequence counter is advanced
    /// past every restored entry so future schedules cannot collide.
    #[must_use]
    pub fn from_entries(
        now: Seconds,
        seq: u64,
        processed: u64,
        entries: impl IntoIterator<Item = (Seconds, u64, E)>,
    ) -> Self {
        let now_s = if now.is_finite() && now.seconds() > 0.0 {
            now.seconds()
        } else {
            0.0
        };
        let mut queue = Self {
            heap: BinaryHeap::new(),
            now: now_s,
            seq,
            processed,
        };
        for (time, entry_seq, event) in entries {
            let time_s = if time.is_finite() && time.seconds() > now_s {
                time.seconds()
            } else {
                now_s
            };
            queue.heap.push(Entry {
                time: time_s,
                seq: entry_seq,
                event,
            });
            queue.seq = queue.seq.max(entry_seq + 1);
        }
        queue
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), "c");
        q.schedule(Seconds::new(1.0), "a");
        q.schedule(Seconds::new(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Seconds::new(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(1.5), ());
        q.schedule(Seconds::new(0.5), ());
        assert_eq!(q.now().seconds(), 0.0);
        q.pop();
        assert_eq!(q.now().seconds(), 0.5);
        q.pop();
        assert_eq!(q.now().seconds(), 1.5);
        assert!(q.pop().is_none());
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(10.0), "first");
        q.pop();
        q.schedule(Seconds::new(5.0), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 15.0);
    }

    #[test]
    #[should_panic(expected = "delay must be non-negative")]
    fn negative_delay_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(-1.0), ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(10.0), ());
        q.pop();
        q.schedule_at(Seconds::new(5.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), ());
        assert_eq!(q.next_time().unwrap().seconds(), 2.0);
        assert_eq!(q.now().seconds(), 0.0);
        assert_eq!(q.pending(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn debug_output_is_informative() {
        let q: EventQueue<()> = EventQueue::new();
        let s = format!("{q:?}");
        assert!(s.contains("now"));
        assert!(s.contains("pending"));
    }

    // The NaN/negative clamp path only runs in release builds (debug builds
    // assert), so it is exercised here explicitly.
    #[test]
    #[cfg(not(debug_assertions))]
    fn release_builds_clamp_bad_delays_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(10.0), "later");
        q.schedule(Seconds::new(f64::NAN), "nan");
        q.schedule(Seconds::new(-5.0), "negative");
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t.seconds(), ev), (0.0, "nan"));
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t.seconds(), ev), (0.0, "negative"));
        q.schedule_at(Seconds::new(-1.0), "past");
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t.seconds(), ev), (0.0, "past"));
    }

    #[test]
    fn snapshot_and_restore_reproduce_pop_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 'c');
        q.schedule(Seconds::new(1.0), 'a');
        q.schedule(Seconds::new(1.0), 'b'); // FIFO tie with 'a'
        q.pop(); // advance the clock to 1.0, consuming 'a'
        let entries: Vec<(Seconds, u64, char)> = q
            .pending_entries()
            .into_iter()
            .map(|(t, s, &e)| (t, s, e))
            .collect();
        assert_eq!(
            entries
                .iter()
                .map(|&(t, _, e)| (t.seconds(), e))
                .collect::<Vec<_>>(),
            vec![(1.0, 'b'), (3.0, 'c')],
            "entries come back in pop order"
        );
        let mut restored = EventQueue::from_entries(q.now(), 99, q.events_processed(), entries);
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.events_processed(), 1);
        assert_eq!(restored.pending(), 2);
        let rest: Vec<_> = std::iter::from_fn(|| restored.pop())
            .map(|(_, e)| e)
            .collect();
        let orig: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, orig);
    }

    #[test]
    fn restore_advances_seq_past_entries_and_sanitises_times() {
        // seq 5 < entry seq 7: the counter must jump past it.
        let mut q = EventQueue::from_entries(
            Seconds::new(2.0),
            5,
            0,
            vec![
                (Seconds::new(4.0), 7u64, "ok"),
                (Seconds::new(1.0), 3, "past, clamped to now"),
            ],
        );
        q.schedule(Seconds::new(0.0), "new"); // gets seq 8, after "ok"
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.seconds(), e))
            .collect();
        assert_eq!(
            order,
            vec![(2.0, "past, clamped to now"), (2.0, "new"), (4.0, "ok"),]
        );
    }
}
