//! A minimal, deterministic discrete-event engine.
//!
//! [`EventQueue`] is a time-ordered priority queue with a monotonic clock.
//! Ties are broken by insertion order, so simulations are fully
//! deterministic. The simulation loop lives with the caller:
//!
//! ```rust
//! use dhl_sim::engine::EventQueue;
//! use dhl_units::Seconds;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(Seconds::new(2.0), Ev::Pong);
//! q.schedule(Seconds::new(1.0), Ev::Ping);
//! let mut order = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     order.push((t.seconds(), ev));
//! }
//! assert_eq!(order, vec![(1.0, Ev::Ping), (2.0, Ev::Pong)]);
//! ```
//!
//! # Implementation: wrapped calendar queue with an index-min overflow tier
//!
//! Internally the queue is a *calendar queue* (Brown, CACM 1988): pending
//! events live in an array of time buckets, each `width` seconds wide.
//! Every entry carries an integer cycle index `k = ⌊(time − base)/width⌋`
//! computed once at insertion; its bucket is `k mod nbuckets` (the
//! calendar *wraps*, so next-cycle events coexist in the array with
//! current-cycle ones), and a global cycle cursor pops entries whose `k`
//! matches it exactly. Because `k` is a single monotone function of time
//! and every pop-side comparison is on integers, there are no
//! floating-point boundary cases: the pop order `(k, time, seq)` provably
//! equals the total order `(time, seq)`. Scheduling is O(1); the cursor
//! bucket is sorted once on first pop and then drained from the back in
//! O(1) per event, so each bucket's memory is streamed once per cycle.
//! Events more than two cycles ahead land in an *overflow* vector with a
//! cached index-min key — the far-future fallback tier — and migrate into
//! the calendar once per cycle as the cursor approaches them; events
//! within the window never migrate at all.
//!
//! The structure is pure mechanism: pop order is the total order
//! `(time, seq)` regardless of bucket geometry, so determinism,
//! checkpoint/restore ([`EventQueue::pending_entries`] /
//! [`EventQueue::from_entries`] serialize the sorted logical view, not the
//! layout), and thread-invariance are unaffected by resizes or geometry
//! rebuilds. [`ReferenceQueue`] pins the previous `BinaryHeap`
//! implementation as a differential-testing and benchmarking oracle.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dhl_units::Seconds;

/// A calendar-queue slot: fires at `time` in cycle `k`, FIFO within equal
/// times. `k` is computed once at insertion from the queue's current
/// `(base, width)` geometry and is what the pop path compares — exactly,
/// as an integer — against the cycle cursor. It is stored truncated to
/// `u32`: bucketed cycle indices always lie within two laps (< 2²¹
/// cycles) of the cursor, so comparing modulo 2³² is exact, and the
/// narrower field keeps the slot small enough that bucket sorts and
/// drains stream less memory. Overflow-tier slots re-derive their full
/// index from `time` at migration instead of trusting the truncation.
struct Slot<E> {
    time: f64,
    seq: u64,
    k: u32,
    event: E,
}

impl<E> Slot<E> {
    /// The total order `(time, seq)` as a pair of integers: event times
    /// are always non-negative and finite (every schedule path clamps
    /// through `now ≥ 0`, and IEEE addition of non-negatives never
    /// produces `-0.0`), so `f64::to_bits` is strictly monotone in the
    /// time and integer comparison avoids the branchy float path in the
    /// sort and insert hot loops.
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time.to_bits(), self.seq)
    }
}

/// A reference-queue entry: fires at `time`, FIFO within equal times.
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are always finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Smallest calendar size; also the size of a fresh queue.
const MIN_BUCKETS: usize = 16;
/// Largest calendar size (a runaway-growth backstop, not a capacity limit).
const MAX_BUCKETS: usize = 1 << 20;
/// Target bucket occupancy. A handful of entries per bucket keeps the pop
/// min-scan a few contiguous compares while dividing the bucket-header
/// array (the randomly-accessed part of a push) by the same factor, which
/// is what keeps it cache-resident under deep backlogs.
const TARGET_FILL: usize = 1024;
/// Window rebuilds tolerated against a non-empty overflow tier before the
/// bucket width is recalibrated — catches a width that has drifted far from
/// the actual event spacing without waiting for the occupancy thresholds.
const MAX_STALE_REBUILDS: u32 = 32;

/// A deterministic, time-ordered event queue with a simulation clock.
///
/// The clock only moves forward: popping an event advances `now` to the
/// event's timestamp. Scheduling into the past is rejected.
///
/// See the [module docs](self) for the calendar-queue internals; the
/// observable behaviour is identical to a `(time, seq)`-ordered heap.
pub struct EventQueue<E> {
    /// The wrapped calendar: a slot with cycle index `k` lives in bucket
    /// `k mod nbuckets` (`nbuckets` is always a power of two), unsorted
    /// except for the cursor bucket mid-drain.
    buckets: Vec<Vec<Slot<E>>>,
    /// Bucket width in simulated seconds.
    width: f64,
    /// `1 / width`, cached so cycle-index placement is a multiply.
    /// Placement only has to be *monotone* in time (a smaller-timed event
    /// can never get a larger `k`), which any fixed multiplier satisfies —
    /// it need not agree bit-for-bit with the division.
    inv_width: f64,
    /// Time origin of the cycle-index space: `k(t) = ⌊(t − base)·inv_width⌋`.
    /// Changes only on full rebuilds, which recompute every slot's `k`.
    base: f64,
    /// The global cycle cursor: only slots with `k == kcursor` are
    /// poppable, and late insertions whose time places below it are
    /// clamped onto it (they are still the minimum, so pop order is
    /// preserved). Monotone except on full rebuilds, which reset the
    /// whole `k`-space.
    kcursor: u64,
    /// Next `kcursor` value at which the overflow tier is swept for slots
    /// that now fall within the two-cycle placement horizon — once per
    /// lap of the calendar, so a sweep is amortized O(1) per pop.
    next_migrate: u64,
    /// Whether the cursor's bucket is currently sorted descending by key.
    /// The first pop from a bucket sorts it once; subsequent pops drain
    /// from the back in O(1), so each bucket's memory is streamed through
    /// once per lap instead of rescanned on every pop. Pushes that land
    /// on the sorted cursor bucket insert in position.
    cur_sorted: bool,
    /// Far-future events (placed two or more laps ahead), unsorted.
    overflow: Vec<Slot<E>>,
    /// Cached `(time.to_bits(), seq)` minimum over `overflow` — the
    /// index-min key of the fallback tier. Exact whenever `overflow` is
    /// non-empty: removals only happen wholesale during migration sweeps,
    /// which recompute it.
    overflow_min: Option<(u64, u64)>,
    /// Events currently stored in `buckets`.
    bucketed: usize,
    /// Migration sweeps since the last recalibration that left events
    /// stranded in overflow (see [`MAX_STALE_REBUILDS`]).
    stale_rebuilds: u32,
    now: f64,
    seq: u64,
    processed: u64,
    /// NaN/negative/past schedules coerced to `now` (release builds only;
    /// debug builds panic first). Surfaced as the `sim.events_clamped`
    /// metric so silent coercion is observable.
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            inv_width: 1.0,
            base: 0.0,
            kcursor: 0,
            next_migrate: MIN_BUCKETS as u64,
            cur_sorted: false,
            overflow: Vec::new(),
            overflow_min: None,
            bucketed: 0,
            stale_rebuilds: 0,
            now: 0.0,
            seq: 0,
            processed: 0,
            clamped: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        Seconds::new(self.now)
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The sequence number the next scheduled event will receive — part of
    /// the queue's checkpoint state (see [`EventQueue::from_entries`]).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    /// Whether no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules whose NaN/negative/past timestamps were clamped to `now`
    /// instead of firing when asked (release builds only; debug builds
    /// panic). Part of the checkpoint state: see
    /// [`EventQueue::set_clamped`].
    #[must_use]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Restores the clamped-schedule count from a checkpoint (the one piece
    /// of queue state [`EventQueue::from_entries`] cannot reconstruct from
    /// the entries themselves).
    pub fn set_clamped(&mut self, clamped: u64) {
        self.clamped = clamped;
    }

    /// Schedules `event` to fire `delay` after the current time.
    ///
    /// A NaN or negative delay is a caller bug (bad config arithmetic or a
    /// corrupted checkpoint): debug builds panic; release builds clamp the
    /// delay to zero — counting the coercion in [`EventQueue::clamped`] —
    /// so the queue cannot be wedged with an unpoppable or time-travelling
    /// entry.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `delay` is negative or non-finite.
    pub fn schedule(&mut self, delay: Seconds, event: E) {
        debug_assert!(
            delay.seconds() >= 0.0 && delay.is_finite(),
            "event delay must be non-negative and finite, got {delay:?}"
        );
        let delay_s = if delay.is_finite() && delay.seconds() > 0.0 {
            delay.seconds()
        } else {
            if !(delay.is_finite() && delay.seconds() == 0.0) {
                self.clamped += 1; // NaN, ±∞, and negative delays
            }
            0.0 // all coerce to "now"
        };
        self.push_entry(self.now + delay_s, event);
    }

    /// Schedules `event` at an absolute simulation time.
    ///
    /// A NaN or past `at` is a caller bug: debug builds panic; release
    /// builds clamp to the current time (see [`EventQueue::schedule`]).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` lies in the past or is non-finite.
    pub fn schedule_at(&mut self, at: Seconds, event: E) {
        debug_assert!(
            at.seconds() >= self.now && at.is_finite(),
            "cannot schedule into the past: now={}, at={at:?}",
            self.now
        );
        let time = if at.is_finite() && at.seconds() > self.now {
            at.seconds()
        } else {
            if !(at.is_finite() && at.seconds() == self.now) {
                self.clamped += 1; // NaN, ±∞, and past times
            }
            self.now
        };
        self.push_entry(time, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        self.pop_entry(f64::INFINITY)
    }

    /// Pops the earliest event only if it fires at or before `limit`,
    /// advancing the clock to its timestamp. Returns `None` when the queue
    /// is empty *or* the next event lies beyond `limit` — one bucket scan
    /// either way, where a peek-then-pop pair would scan twice.
    pub fn pop_at_or_before(&mut self, limit: Seconds) -> Option<(Seconds, E)> {
        self.pop_entry(limit.seconds())
    }

    /// Peeks at the next event time without popping.
    ///
    /// Read-only twin of the pop scan: walks cycles from the cursor until
    /// it finds a bucket whose minimum slot belongs to the cycle under
    /// inspection (bounded by the two-lap placement horizon), then takes
    /// the smaller of that and the overflow index-min — a freshly pushed
    /// bucketed slot may briefly place beyond an overflow slot that has
    /// not hit its migration sweep yet.
    #[must_use]
    pub fn next_time(&self) -> Option<Seconds> {
        let mut best = self.overflow_min;
        if self.bucketed > 0 {
            let mask = self.nbuckets() as u32 - 1;
            let mut k = self.kcursor;
            // Fast path: mid-drain the cursor bucket is sorted descending,
            // so its back element is the bucketed minimum — O(1), which
            // keeps peek-then-pop loops from rescanning the bucket.
            let sorted_head = if self.cur_sorted {
                self.buckets[(self.kcursor as u32 & mask) as usize]
                    .last()
                    .filter(|head| head.k == self.kcursor as u32)
            } else {
                None
            };
            let min_key = if let Some(head) = sorted_head {
                head.key()
            } else {
                loop {
                    let bucket = &self.buckets[(k as u32 & mask) as usize];
                    if let Some(min_slot) = bucket.iter().min_by_key(|s| s.key()) {
                        if min_slot.k == k as u32 {
                            break min_slot.key();
                        }
                    }
                    k = k.saturating_add(1);
                }
            };
            best = match best {
                Some(b) if b <= min_key => Some(b),
                _ => Some(min_key),
            };
        }
        best.map(|(t, _)| Seconds::new(f64::from_bits(t)))
    }

    /// The pending entries as `(time, seq, event)` in deterministic pop
    /// order — the exact order [`EventQueue::pop`] would drain them, since
    /// `(time, seq)` is a total order. This is the checkpoint view of the
    /// queue: feeding it back through [`EventQueue::from_entries`] rebuilds
    /// a queue with an identical future, independent of how entries were
    /// distributed across buckets and overflow at capture time.
    #[must_use]
    pub fn pending_entries(&self) -> Vec<(Seconds, u64, &E)> {
        let mut entries: Vec<_> = self
            .buckets
            .iter()
            .flatten()
            .chain(&self.overflow)
            .map(|e| (Seconds::new(e.time), e.seq, &e.event))
            .collect();
        entries.sort_by(|a, b| {
            a.0.seconds()
                .partial_cmp(&b.0.seconds())
                .expect("event times are always finite")
                .then_with(|| a.1.cmp(&b.1))
        });
        entries
    }

    /// Rebuilds a queue from checkpointed state: the clock, the next
    /// sequence number, the processed-event count, and the pending entries
    /// with their original sequence numbers. Pop order is identical to the
    /// queue the state was exported from because `(time, seq)` totally
    /// orders entries regardless of how they land in the calendar.
    ///
    /// Corrupted input is tolerated, not trusted: entry times are clamped
    /// into `[now, ∞)` (NaN → `now`, counted in [`EventQueue::clamped`])
    /// and the sequence counter is advanced past every restored entry so
    /// future schedules cannot collide.
    #[must_use]
    pub fn from_entries(
        now: Seconds,
        seq: u64,
        processed: u64,
        entries: impl IntoIterator<Item = (Seconds, u64, E)>,
    ) -> Self {
        let now_s = if now.is_finite() && now.seconds() > 0.0 {
            now.seconds()
        } else {
            0.0
        };
        let mut queue = Self::new();
        queue.now = now_s;
        queue.seq = seq;
        queue.processed = processed;
        queue.base = now_s;
        for (time, entry_seq, event) in entries {
            let time_s = if time.is_finite() && time.seconds() > now_s {
                time.seconds()
            } else {
                if !(time.is_finite() && time.seconds() == now_s) {
                    queue.clamped += 1;
                }
                now_s
            };
            queue.push_raw(time_s, entry_seq, event);
            queue.seq = queue.seq.max(entry_seq + 1);
        }
        queue
    }

    // ------------------------------------------------------------------
    // Calendar mechanics. Correctness rests on two facts. (1) Cycle
    // placement `k(t)` is a single monotone function of time between
    // rebuilds, so a smaller-timed event can never get a larger `k`, and
    // the lexicographic pop order `(k, time, seq)` equals `(time, seq)`.
    // (2) The cursor only leaves cycle `k` once no slot with that `k`
    // remains, and late insertions that would place behind it are clamped
    // onto it — so the bucket at `kcursor mod nbuckets` always holds the
    // global minimum (or overflow does, when no slots are bucketed).
    // ------------------------------------------------------------------

    #[inline]
    fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// The cycle index for `time` under the current `(base, width)`
    /// geometry: `⌊(time − base)/width⌋`, saturating. Monotone in `time`,
    /// which is the only property pop-order correctness needs. Capped one
    /// below `u64::MAX` so a cursor standing on a saturated index can
    /// still sweep overflow with an exclusive bound.
    #[inline]
    fn place_k(&self, time: f64) -> u64 {
        let rel = (time - self.base) * self.inv_width;
        if rel > 0.0 {
            (rel as u64).min(u64::MAX - 1)
        } else {
            0
        }
    }

    fn push_entry(&mut self, time: f64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.push_raw(time, seq, event);
        if self.pending() * 2 > self.nbuckets() * TARGET_FILL && self.nbuckets() < MAX_BUCKETS {
            let doubled = self.nbuckets() * 2;
            self.rebuild(doubled);
        }
    }

    fn push_raw(&mut self, time: f64, seq: u64, event: E) {
        debug_assert!(time.is_sign_positive(), "event times are never negative");
        let k = self.place_k(time).max(self.kcursor);
        let horizon = self.kcursor.saturating_add(2 * self.nbuckets() as u64);
        let slot = Slot {
            time,
            seq,
            k: k as u32,
            event,
        };
        if k >= horizon {
            let key = slot.key();
            self.overflow_min = match self.overflow_min {
                Some(best) if best <= key => Some(best),
                _ => Some(key),
            };
            self.overflow.push(slot);
        } else {
            self.bucket_insert(slot);
        }
    }

    /// Places a slot whose cycle index is within the two-lap horizon into
    /// its bucket, preserving the cursor bucket's partitioned order
    /// mid-drain: unsorted next-lap prefix, then this cycle's slots
    /// sorted descending (see the sort step in [`EventQueue::pop_entry`]).
    fn bucket_insert(&mut self, slot: Slot<E>) {
        let mask = self.nbuckets() as u32 - 1;
        let idx = (slot.k & mask) as usize;
        if self.cur_sorted && idx == (self.kcursor as u32 & mask) as usize {
            let kc = self.kcursor as u32;
            let bucket = &mut self.buckets[idx];
            // Both predicates are monotone over prefix-then-suffix, so a
            // binary search lands the slot in its region in order.
            let pos = if slot.k == kc {
                let key = slot.key();
                bucket.partition_point(|x| x.k != kc || x.key() > key)
            } else {
                bucket.partition_point(|x| x.k != kc)
            };
            bucket.insert(pos, slot);
        } else {
            self.buckets[idx].push(slot);
        }
        self.bucketed += 1;
    }

    fn pop_entry(&mut self, limit: f64) -> Option<(Seconds, E)> {
        if self.is_empty() {
            return None;
        }
        loop {
            if self.bucketed == 0 {
                // Everything pending sits in the overflow tier: jump the
                // cursor to its index-min and sweep it in.
                let (tmin_bits, _) = self.overflow_min.expect("pending events are in overflow");
                let tmin = f64::from_bits(tmin_bits);
                if tmin > limit {
                    return None;
                }
                self.kcursor = self.kcursor.max(self.place_k(tmin));
                self.migrate_overflow();
                continue;
            }
            let mask = self.nbuckets() as u32 - 1;
            let idx = (self.kcursor as u32 & mask) as usize;
            if !self.buckets[idx].is_empty() {
                if !self.cur_sorted {
                    // Partition this cycle's slots to the tail and sort
                    // only them; next-lap slots sharing the physical
                    // bucket stay unsorted in the prefix and never pay
                    // sort compares for a cycle that cannot pop them.
                    let kc = self.kcursor as u32;
                    let bucket = &mut self.buckets[idx];
                    let mut j = bucket.len();
                    let mut i = 0;
                    while i < j {
                        if bucket[i].k == kc {
                            j -= 1;
                            bucket.swap(i, j);
                        } else {
                            i += 1;
                        }
                    }
                    bucket[j..].sort_unstable_by_key(|s| core::cmp::Reverse(s.key()));
                    self.cur_sorted = true;
                }
                let head = self.buckets[idx]
                    .last()
                    .expect("cursor bucket is non-empty");
                if head.k == self.kcursor as u32 {
                    if head.time > limit {
                        return None;
                    }
                    let e = self.buckets[idx].pop().expect("cursor bucket is non-empty");
                    self.bucketed -= 1;
                    debug_assert!(e.time >= self.now);
                    self.now = e.time;
                    self.processed += 1;
                    if self.nbuckets() > MIN_BUCKETS
                        && self.pending() * 16 < self.nbuckets() * TARGET_FILL
                    {
                        let halved = self.nbuckets() / 2;
                        self.rebuild(halved);
                    }
                    return Some((Seconds::new(e.time), e.event));
                }
            }
            // Nothing fires in this cycle (the bucket is empty, or its
            // earliest slot belongs to a later lap): advance the cursor.
            // Cursor movement is a function of the pending set alone —
            // never of `limit` — so run-until boundaries cannot perturb
            // determinism.
            self.kcursor = self.kcursor.saturating_add(1);
            self.cur_sorted = false;
            if self.kcursor >= self.next_migrate {
                self.migrate_overflow();
            }
        }
    }

    /// Sweeps overflow slots whose cycle index now falls within the
    /// two-lap placement horizon into the calendar, recomputing the
    /// overflow index-min along the way. Runs once per lap of the cursor
    /// (or when the cursor jumps to a far-future index-min), so steady
    /// workloads whose events land within the horizon never pay for it.
    fn migrate_overflow(&mut self) {
        let n = self.nbuckets() as u64;
        self.next_migrate = self.kcursor.saturating_add(n);
        let horizon = self.kcursor.saturating_add(2 * n);
        self.overflow_min = None;
        let mut i = 0;
        while i < self.overflow.len() {
            // The stored `k` is truncated; re-derive the full cycle index
            // from the timestamp (placement is a pure function of time
            // between rebuilds, so this is the value push saw).
            let k = self.place_k(self.overflow[i].time).max(self.kcursor);
            if k < horizon {
                let mut slot = self.overflow.swap_remove(i);
                slot.k = k as u32;
                self.bucket_insert(slot);
            } else {
                let key = self.overflow[i].key();
                self.overflow_min = match self.overflow_min {
                    Some(best) if best <= key => Some(best),
                    _ => Some(key),
                };
                i += 1;
            }
        }
        if self.overflow.is_empty() {
            self.stale_rebuilds = 0;
        } else {
            // Sweeps keep leaving events stranded beyond the horizon: the
            // width no longer matches the event spacing. Recalibrate.
            self.stale_rebuilds += 1;
            if self.stale_rebuilds > MAX_STALE_REBUILDS {
                let nbuckets = self.nbuckets();
                self.rebuild(nbuckets);
            }
        }
    }

    /// Full recalibration: gathers every pending slot, re-derives the
    /// bucket width from the spacing of the earliest events, re-anchors
    /// the cycle-index space at the minimum, and redistributes into
    /// `nbuckets` buckets (always a power of two).
    fn rebuild(&mut self, nbuckets: usize) {
        let mut entries: Vec<Slot<E>> = Vec::with_capacity(self.pending());
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.append(&mut self.overflow);
        entries.sort_unstable_by_key(Slot::key);
        self.width = Self::pick_width(&entries);
        self.inv_width = self.width.recip();
        if self.buckets.len() != nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        self.base = entries.first().map_or(self.now, |e| e.time);
        self.kcursor = 0;
        self.next_migrate = nbuckets as u64;
        self.cur_sorted = false;
        self.bucketed = 0;
        self.overflow_min = None;
        self.stale_rebuilds = 0;
        for e in entries {
            self.push_raw(e.time, e.seq, e.event);
        }
    }

    /// Bucket width from the event density near the head (entries must be
    /// sorted): the time span of the earliest few thousand events divided
    /// by their count, scaled to [`TARGET_FILL`] per bucket. Measuring a
    /// span rather than averaging adjacent gaps is robust to runs of tied
    /// timestamps (a tie contributes zero gap but still occupies a bucket
    /// slot). Focusing on the head keeps a far-future cluster from
    /// stretching the width — it belongs in the overflow tier, not the
    /// calendar.
    fn pick_width(entries: &[Slot<E>]) -> f64 {
        const HEAD_SAMPLE: usize = 4096;
        let k = entries.len().saturating_sub(1).min(HEAD_SAMPLE);
        if k == 0 {
            return 1.0;
        }
        let span = entries[k].time - entries[0].time;
        if span <= 0.0 {
            return 1.0;
        }
        let fill = TARGET_FILL as f64;
        (fill * span / k as f64).max(f64::MIN_POSITIVE)
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("processed", &self.processed)
            .field("buckets", &self.nbuckets())
            .field("width", &self.width)
            .field("overflow", &self.overflow.len())
            .field("clamped", &self.clamped)
            .finish()
    }
}

/// The previous `BinaryHeap`-backed event queue, kept as a pinned reference
/// model: the queue-equivalence property tests replay identical operation
/// sequences against it and [`EventQueue`] asserting identical pop order
/// (ties included), and the `sim/events_per_sec_queue_churn` benchmark
/// measures the calendar queue's speedup against it.
///
/// Behaviourally identical to [`EventQueue`] for every operation both
/// support; deliberately *not* used by the simulator.
pub struct ReferenceQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: f64,
    seq: u64,
    processed: u64,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        Seconds::new(self.now)
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` after the current time, with the
    /// same clamp semantics as [`EventQueue::schedule`].
    pub fn schedule(&mut self, delay: Seconds, event: E) {
        let delay_s = if delay.is_finite() && delay.seconds() > 0.0 {
            delay.seconds()
        } else {
            0.0
        };
        self.schedule_at(Seconds::new(self.now + delay_s), event);
    }

    /// Schedules `event` at an absolute time, with the same clamp semantics
    /// as [`EventQueue::schedule_at`].
    pub fn schedule_at(&mut self, at: Seconds, event: E) {
        let time = if at.is_finite() && at.seconds() > self.now {
            at.seconds()
        } else {
            self.now
        };
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.processed += 1;
        Some((Seconds::new(entry.time), entry.event))
    }

    /// Peeks at the next event time without popping.
    #[must_use]
    pub fn next_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| Seconds::new(e.time))
    }
}

impl<E> core::fmt::Debug for ReferenceQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReferenceQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), "c");
        q.schedule(Seconds::new(1.0), "a");
        q.schedule(Seconds::new(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Seconds::new(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(1.5), ());
        q.schedule(Seconds::new(0.5), ());
        assert_eq!(q.now().seconds(), 0.0);
        q.pop();
        assert_eq!(q.now().seconds(), 0.5);
        q.pop();
        assert_eq!(q.now().seconds(), 1.5);
        assert!(q.pop().is_none());
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(10.0), "first");
        q.pop();
        q.schedule(Seconds::new(5.0), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 15.0);
    }

    #[test]
    #[should_panic(expected = "delay must be non-negative")]
    fn negative_delay_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(-1.0), ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(10.0), ());
        q.pop();
        q.schedule_at(Seconds::new(5.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), ());
        assert_eq!(q.next_time().unwrap().seconds(), 2.0);
        assert_eq!(q.now().seconds(), 0.0);
        assert_eq!(q.pending(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn debug_output_is_informative() {
        let q: EventQueue<()> = EventQueue::new();
        let s = format!("{q:?}");
        assert!(s.contains("now"));
        assert!(s.contains("pending"));
    }

    // The NaN/negative clamp path only runs in release builds (debug builds
    // assert), so it is exercised here explicitly — including the clamp
    // counter the `sim.events_clamped` metric surfaces.
    #[test]
    #[cfg(not(debug_assertions))]
    fn release_builds_clamp_bad_delays_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(10.0), "later");
        assert_eq!(q.clamped(), 0);
        q.schedule(Seconds::new(f64::NAN), "nan");
        q.schedule(Seconds::new(-5.0), "negative");
        assert_eq!(q.clamped(), 2);
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t.seconds(), ev), (0.0, "nan"));
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t.seconds(), ev), (0.0, "negative"));
        q.schedule_at(Seconds::new(-1.0), "past");
        assert_eq!(q.clamped(), 3);
        let (t, ev) = q.pop().unwrap();
        assert_eq!((t.seconds(), ev), (0.0, "past"));
        // A zero delay and a schedule at exactly `now` are legitimate, not
        // clamps.
        q.schedule(Seconds::ZERO, "zero");
        q.schedule_at(q.now(), "at-now");
        assert_eq!(q.clamped(), 3);
    }

    #[test]
    fn snapshot_and_restore_reproduce_pop_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 'c');
        q.schedule(Seconds::new(1.0), 'a');
        q.schedule(Seconds::new(1.0), 'b'); // FIFO tie with 'a'
        q.pop(); // advance the clock to 1.0, consuming 'a'
        let entries: Vec<(Seconds, u64, char)> = q
            .pending_entries()
            .into_iter()
            .map(|(t, s, &e)| (t, s, e))
            .collect();
        assert_eq!(
            entries
                .iter()
                .map(|&(t, _, e)| (t.seconds(), e))
                .collect::<Vec<_>>(),
            vec![(1.0, 'b'), (3.0, 'c')],
            "entries come back in pop order"
        );
        let mut restored = EventQueue::from_entries(q.now(), 99, q.events_processed(), entries);
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.events_processed(), 1);
        assert_eq!(restored.pending(), 2);
        let rest: Vec<_> = std::iter::from_fn(|| restored.pop())
            .map(|(_, e)| e)
            .collect();
        let orig: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, orig);
    }

    #[test]
    fn restore_advances_seq_past_entries_and_sanitises_times() {
        // seq 5 < entry seq 7: the counter must jump past it.
        let mut q = EventQueue::from_entries(
            Seconds::new(2.0),
            5,
            0,
            vec![
                (Seconds::new(4.0), 7u64, "ok"),
                (Seconds::new(1.0), 3, "past, clamped to now"),
            ],
        );
        assert_eq!(q.clamped(), 1, "the past entry counts as a clamp");
        q.schedule(Seconds::new(0.0), "new"); // gets seq 8, after "ok"
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.seconds(), e))
            .collect();
        assert_eq!(
            order,
            vec![(2.0, "past, clamped to now"), (2.0, "new"), (4.0, "ok"),]
        );
    }

    #[test]
    fn set_clamped_restores_checkpointed_count() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.clamped(), 0);
        q.set_clamped(7);
        assert_eq!(q.clamped(), 7);
    }

    #[test]
    fn far_future_events_route_through_the_overflow_tier() {
        let mut q = EventQueue::new();
        // A fresh queue's window spans 16 s; these land 3 tiers of window
        // jumps apart, so every pop crosses the overflow fallback.
        for (i, t) in [1.0e9, 3.0, 1.0e6, 2.0e12, 50.0].iter().enumerate() {
            q.schedule(Seconds::new(*t), i);
        }
        assert_eq!(q.next_time().unwrap().seconds(), 3.0);
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.seconds(), e))
            .collect();
        assert_eq!(
            order,
            vec![(3.0, 1), (50.0, 4), (1.0e6, 2), (1.0e9, 0), (2.0e12, 3)]
        );
    }

    #[test]
    fn interleaved_pushes_keep_order_across_window_jumps() {
        // Pop far ahead of the window, then schedule short delays from the
        // new `now`: the freshly anchored window must absorb them in order.
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(1.0e7), "far");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 1.0e7);
        q.schedule(Seconds::new(2.0), "b");
        q.schedule(Seconds::new(1.0), "a");
        q.schedule(Seconds::new(1.0e7), "far again");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "far again"]);
    }

    #[test]
    fn grows_and_shrinks_through_churn_without_reordering() {
        // Push enough to force several calendar doublings, then drain
        // through the shrink path, checking full sortedness throughout.
        let mut q = EventQueue::new();
        let mut t = 0.0;
        for i in 0..4096 {
            // Deterministic scatter with exact ties every 8th event.
            t += if i % 8 == 0 {
                0.0
            } else {
                0.125 * f64::from(i % 7)
            };
            q.schedule_at(Seconds::new(t), i);
        }
        assert_eq!(q.pending(), 4096);
        let drained: Vec<(f64, i32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.seconds(), e))
            .collect();
        assert_eq!(drained.len(), 4096);
        for pair in drained.windows(2) {
            assert!(
                pair[0].0 < pair[1].0 || (pair[0].0 == pair[1].0 && pair[0].1 < pair[1].1),
                "out of order: {pair:?}"
            );
        }
    }

    #[test]
    fn matches_reference_queue_on_mixed_churn() {
        // A compact inline differential check; the randomized deep version
        // lives in tests/queue_equivalence.rs.
        let mut cal = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..2000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let delay = ((x >> 11) % 1000) as f64 / 64.0; // quantized: many ties
            cal.schedule(Seconds::new(delay), i);
            reference.schedule(Seconds::new(delay), i);
            if x.is_multiple_of(3) {
                assert_eq!(cal.pop(), reference.pop());
                assert_eq!(cal.now(), reference.now());
            }
        }
        loop {
            let (a, b) = (cal.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
