//! The event-driven DHL system simulator.
//!
//! Simulates the full §III architecture: a cart fleet stored in the library,
//! one or more rack endpoints with docking stations, and one (or two, §VI)
//! maglev tracks connecting them. The simulator enforces the physical
//! constraints the analytical model elides:
//!
//! - carts cannot pass one another, so same-direction launches keep a
//!   headway of one docking time;
//! - a single bidirectional track must drain completely before reversing;
//! - an endpoint can hold only as many carts as it has docking stations;
//! - dock and undock each take their configured (pessimistic 3 s) time.

use std::collections::VecDeque;

use dhl_obs::{MetricsRegistry, Stopwatch};
use dhl_rng::{DeterministicRng, Rng};
use dhl_storage::connectors::{ConnectorKind, DockingConnector};
use dhl_storage::wear::CartWear;
use dhl_units::{Bytes, Joules, Seconds, Watts};

use crate::arena::{CartArena, CartHandle};
use crate::config::{ConfigError, DockRecoveryPolicy, EndpointKind, ProcessingModel, SimConfig};
use crate::engine::EventQueue;
use crate::metrics::SimMetrics;
use crate::movement::{MovementCost, MovementTable};
use crate::report::{BulkTransferReport, IntegrityReport, ReliabilityReport};
use crate::trace::{Trace, TraceEventKind, TraceSink};

/// Index of a cart in the fleet.
pub type CartId = usize;
/// Index of an endpoint along the track.
pub type EndpointId = usize;

/// Travel direction relative to the library.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Away from the library (toward higher positions).
    Outbound,
    /// Back toward the library.
    Inbound,
}

/// Where a cart currently is.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum CartLocation {
    /// Docked (idle or processing) at an endpoint.
    Docked(EndpointId),
    /// Somewhere between two endpoints.
    Moving {
        /// Origin endpoint.
        from: EndpointId,
        /// Destination endpoint.
        to: EndpointId,
    },
}

#[derive(Copy, Clone, PartialEq, Debug)]
pub(crate) struct Movement {
    pub(crate) cart: CartId,
    pub(crate) from: EndpointId,
    pub(crate) to: EndpointId,
    pub(crate) payload: Bytes,
    /// Delivery attempt for this shard (1-based; 0 for empty returns).
    pub(crate) attempt: u32,
}

/// The in-flight half of a [`Movement`], carrying the cost actually charged
/// at launch (which may be speed-limited by a repressurised tube) so arrival
/// and failure-exposure accounting stay consistent with it.
#[derive(Copy, Clone, PartialEq, Debug)]
pub(crate) struct ActiveMovement {
    pub(crate) from: EndpointId,
    pub(crate) to: EndpointId,
    pub(crate) payload: Bytes,
    pub(crate) attempt: u32,
    pub(crate) cost: MovementCost,
    pub(crate) stalled: bool,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Ev {
    TryLaunch,
    UndockDone { cart: CartId },
    Arrived { cart: CartId },
    DockDone { cart: CartId },
    VerifyDone { cart: CartId },
    ProcessingDone { cart: CartId },
}

/// A rack delivery parked in the `Arrived` state of the delivery machine:
/// docked, scrub scheduled, verdict pending.
#[derive(Copy, Clone, PartialEq, Debug)]
pub(crate) struct PendingVerify {
    pub(crate) to: EndpointId,
    pub(crate) payload: Bytes,
    pub(crate) attempt: u32,
    /// One-way trip time actually charged — the corruption exposure window,
    /// and the basis for retry-time accounting if the payload reships.
    pub(crate) trip_time: Seconds,
    pub(crate) shards: u64,
}

#[derive(Clone, PartialEq, Debug, Default)]
pub(crate) struct TrackState {
    pub(crate) direction: Option<Direction>,
    pub(crate) in_flight: u32,
    pub(crate) last_launch: f64,
    pub(crate) busy_accum: f64,
    pub(crate) last_update: f64,
    /// Cart currently stalled on this track, blocking further launches.
    pub(crate) blocked_by: Option<CartId>,
    pub(crate) blocked_since: f64,
    pub(crate) downtime_accum: f64,
    /// Repressurisation: launches before this time are speed-limited.
    pub(crate) degraded_until: f64,
}

impl TrackState {
    fn update_busy(&mut self, now: f64) {
        if self.in_flight > 0 {
            self.busy_accum += now - self.last_update;
        }
        self.last_update = now;
    }
}

enum LaunchCheck {
    Free,
    Headway(f64),
    BusyOpposite,
    /// A stalled cart blocks the track; launches resume when it docks.
    Blocked,
}

#[derive(Clone, PartialEq, Debug, Default)]
pub(crate) struct RackDemand {
    pub(crate) endpoint: EndpointId,
    pub(crate) bytes_remaining: Bytes,
    pub(crate) deliveries_done: u64,
}

#[derive(Clone, PartialEq, Debug, Default)]
pub(crate) struct Mission {
    pub(crate) total_deliveries: u64,
    pub(crate) scheduled: u64,
    pub(crate) done: u64,
    pub(crate) demands: Vec<RackDemand>,
    pub(crate) delivered: Bytes,
    /// Every byte that docked at a rack, including failed attempts.
    pub(crate) gross_delivered: Bytes,
    pub(crate) completion_time: Option<f64>,
}

/// Errors from running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The event budget was exhausted (runaway simulation).
    EventBudgetExhausted {
        /// Events processed before giving up.
        events: u64,
    },
    /// A shard exhausted its delivery-attempt budget (fault injection with
    /// recovery enabled).
    DeliveryAbandoned {
        /// The rack the shard was bound for.
        endpoint: EndpointId,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A checkpoint was resumed against a configuration that differs from
    /// the one it was captured under.
    CheckpointMismatch {
        /// Configuration fingerprint recorded in the checkpoint.
        expected: u64,
        /// Fingerprint of the configuration passed to `resume`.
        actual: u64,
    },
    /// A replica crashed more times than its recovery budget allows.
    RestartBudgetExhausted {
        /// Index of the replica that kept crashing.
        replica: u64,
        /// Restarts attempted before giving up.
        restarts: u32,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::EventBudgetExhausted { events } => {
                write!(
                    f,
                    "simulation exceeded its event budget after {events} events"
                )
            }
            Self::DeliveryAbandoned { endpoint, attempts } => {
                write!(
                    f,
                    "delivery to endpoint {endpoint} abandoned after {attempts} failed attempts"
                )
            }
            Self::CheckpointMismatch { expected, actual } => {
                write!(
                    f,
                    "checkpoint was captured under a different configuration \
                     (fingerprint {expected:#018x}, got {actual:#018x})"
                )
            }
            Self::RestartBudgetExhausted { replica, restarts } => {
                write!(
                    f,
                    "replica {replica} exhausted its restart budget after {restarts} restarts"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

fn cfg_reliability_rng(cfg: &SimConfig) -> Option<DeterministicRng> {
    cfg.reliability
        .as_ref()
        .map(|r| DeterministicRng::seed_from_u64(r.seed))
}

/// The DHL system simulator.
///
/// # Examples
///
/// Reproducing the paper's doubled-trip bulk transfer with a strictly serial
/// system (one cart, one rack dock):
///
/// ```rust
/// use dhl_sim::{DhlSystem, SimConfig};
/// use dhl_units::Bytes;
///
/// let report = DhlSystem::new(SimConfig::paper_serial())
///     .unwrap()
///     .run_bulk_transfer(Bytes::from_petabytes(29.0))
///     .unwrap();
/// assert_eq!(report.deliveries, 114);
/// assert_eq!(report.movements, 228); // every delivery also returns
/// // 228 × 8.6 s = 1960.8 s — the analytical model's doubled accounting.
/// assert!((report.completion_time.seconds() - 1960.8).abs() < 1.0);
/// ```
pub struct DhlSystem {
    pub(crate) cfg: SimConfig,
    pub(crate) queue: EventQueue<Ev>,
    /// The cart fleet in struct-of-arrays layout (see [`crate::arena`]).
    pub(crate) carts: CartArena,
    /// Precomputed per-hop kinematics — built once per configuration so the
    /// hot path never re-evaluates a trapezoid.
    pub(crate) costs: MovementTable,
    pub(crate) dock_used: Vec<u32>,
    pub(crate) tracks: Vec<TrackState>,
    pub(crate) pending: VecDeque<Movement>,
    /// Shards awaiting redelivery after a RAID-uncovered loss; served before
    /// fresh demand so retries keep their place in the mission.
    pub(crate) redelivery_queue: VecDeque<(EndpointId, Bytes, u32)>,
    pub(crate) mission: Mission,
    pub(crate) wakeup_scheduled: bool,
    pub(crate) total_energy: Joules,
    pub(crate) movements: u64,
    pub(crate) max_in_flight: u32,
    pub(crate) event_budget: u64,
    pub(crate) trace: TraceSink,
    pub(crate) reliability_rng: Option<DeterministicRng>,
    /// Independent stream for physical fault sampling (stalls, leaks), so
    /// enabling faults does not perturb the SSD-failure stream.
    pub(crate) fault_rng: Option<DeterministicRng>,
    /// Independent stream for silent-corruption sampling, so enabling the
    /// integrity pipeline perturbs neither the reliability nor fault streams.
    pub(crate) integrity_rng: Option<DeterministicRng>,
    pub(crate) ssd_failures: u64,
    pub(crate) data_loss_events: u64,
    pub(crate) redeliveries: u64,
    pub(crate) retry_time_s: f64,
    pub(crate) cart_stalls: u64,
    pub(crate) connector_replacements: u64,
    pub(crate) repressurisations: u64,
    pub(crate) dock_crashes: u64,
    pub(crate) dock_recovery_time_s: f64,
    /// Controller recovery downtime accumulated per endpoint.
    pub(crate) dock_downtime: Vec<f64>,
    pub(crate) abandoned: Option<(EndpointId, u32)>,
    pub(crate) shards_scanned: u64,
    pub(crate) shards_corrupted: u64,
    pub(crate) shards_reconstructed: u64,
    pub(crate) deliveries_verified: u64,
    pub(crate) deliveries_reshipped: u64,
    pub(crate) verification_time_s: f64,
    pub(crate) reconstruction_time_s: f64,
    pub(crate) verification_energy: Joules,
    /// Events processed before the current mission started, so per-run
    /// event accounting survives checkpoint/resume.
    pub(crate) events_at_mission_start: u64,
    /// Wall clock for the in-progress mission (restarted on resume; feeds
    /// only the pacing gauges, which are excluded from outcome equality).
    pub(crate) run_watch: Option<Stopwatch>,
    /// Observability registry: deterministic sim-domain counters and
    /// histograms, plus wall-clock pacing gauges per run. Enabled by
    /// default; `set_metrics_enabled(false)` turns every recording into a
    /// single branch.
    pub(crate) metrics: MetricsRegistry,
    /// Pre-interned handles into `metrics`: hot-path recording is a dense
    /// slot write, never a name lookup. Re-registered whenever `metrics`
    /// is replaced (`set_metrics_enabled`, checkpoint resume).
    pub(crate) handles: SimMetrics,
}

impl DhlSystem {
    /// Builds a simulator over a validated configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let connector = cfg
            .faults
            .as_ref()
            .and_then(|f| f.docking_connector.as_ref())
            .map(|c| DockingConnector::new(c.kind));
        let wear = cfg
            .integrity
            .as_ref()
            .map(|i| CartWear::new(i.endurance.clone(), cfg.cart_capacity));
        let carts = CartArena::with_fleet(cfg.num_carts as usize, connector, wear);
        let mut dock_used = vec![0u32; cfg.endpoints.len()];
        dock_used[0] = cfg.num_carts;
        let tracks = if cfg.dual_track {
            vec![TrackState::default(), TrackState::default()]
        } else {
            vec![TrackState::default()]
        };
        let reliability_rng = cfg_reliability_rng(&cfg);
        // The fault stream is seeded independently from (but deterministically
        // related to) the reliability seed, so fault injection never perturbs
        // SSD-failure sampling.
        let fault_rng = cfg.faults.as_ref().map(|_| {
            let seed = cfg.reliability.as_ref().map_or(0, |r| r.seed);
            DeterministicRng::seed_from_u64(seed ^ 0xFA17_1A7E_D051_C0DE)
        });
        let degraded_cap = cfg
            .faults
            .as_ref()
            .and_then(|f| f.repressurisation.as_ref())
            .map(|r| r.degraded_speed(cfg.max_speed, cfg.track_length()));
        let integrity_rng = cfg
            .integrity
            .as_ref()
            .map(|i| DeterministicRng::seed_from_u64(i.seed));
        let dock_downtime = vec![0.0; cfg.endpoints.len()];
        let costs = MovementTable::build(&cfg, degraded_cap);
        let mut metrics = MetricsRegistry::enabled();
        let handles = SimMetrics::register(&mut metrics);
        Ok(Self {
            cfg,
            queue: EventQueue::new(),
            carts,
            costs,
            dock_used,
            tracks,
            pending: VecDeque::new(),
            redelivery_queue: VecDeque::new(),
            mission: Mission::default(),
            wakeup_scheduled: false,
            total_energy: Joules::ZERO,
            movements: 0,
            max_in_flight: 0,
            event_budget: 50_000_000,
            reliability_rng,
            fault_rng,
            integrity_rng,
            trace: TraceSink::Disabled,
            ssd_failures: 0,
            data_loss_events: 0,
            redeliveries: 0,
            retry_time_s: 0.0,
            cart_stalls: 0,
            connector_replacements: 0,
            repressurisations: 0,
            dock_crashes: 0,
            dock_recovery_time_s: 0.0,
            dock_downtime,
            abandoned: None,
            shards_scanned: 0,
            shards_corrupted: 0,
            shards_reconstructed: 0,
            deliveries_verified: 0,
            deliveries_reshipped: 0,
            verification_time_s: 0.0,
            reconstruction_time_s: 0.0,
            verification_energy: Joules::ZERO,
            events_at_mission_start: 0,
            run_watch: None,
            metrics,
            handles,
        })
    }

    /// The observability registry (metrics accumulate across runs).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Enables or disables metric recording (clears recorded metrics).
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        self.metrics = if enabled {
            MetricsRegistry::enabled()
        } else {
            MetricsRegistry::disabled()
        };
        // The fresh registry issued no ids yet: re-intern so every held
        // handle points at a valid slot again.
        self.handles = SimMetrics::register(&mut self.metrics);
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Enables event tracing, retaining at most `capacity` events in a
    /// buffer preallocated up front.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceSink::buffered(capacity);
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    fn record(&mut self, kind: TraceEventKind) {
        // Branch before touching the clock: with tracing disabled this is
        // the whole cost of the call.
        if self.trace.is_enabled() {
            let now = self.queue.now();
            self.trace.record(now, kind);
        }
    }

    /// Current location of a cart (for tests and live inspection).
    #[must_use]
    pub fn cart_location(&self, cart: CartId) -> Option<CartLocation> {
        self.carts.locations.get(cart).copied()
    }

    /// A generational handle to a cart, for callers that hold references
    /// across checkpoint/resume boundaries: a handle from before a resume
    /// no longer resolves (see [`DhlSystem::cart_location_of`]).
    #[must_use]
    pub fn cart_handle(&self, cart: CartId) -> Option<CartHandle> {
        (cart < self.carts.len()).then(|| self.carts.handle(cart))
    }

    /// Like [`DhlSystem::cart_location`], but validated against the
    /// handle's generation: returns `None` for handles issued against a
    /// fleet that has since been rebuilt.
    #[must_use]
    pub fn cart_location_of(&self, handle: CartHandle) -> Option<CartLocation> {
        self.carts.resolve(handle).map(|i| self.carts.locations[i])
    }

    fn track_index(&self, dir: Direction) -> usize {
        if self.cfg.dual_track && dir == Direction::Inbound {
            1
        } else {
            0
        }
    }

    fn direction_of(from: EndpointId, to: EndpointId) -> Direction {
        if to > from {
            Direction::Outbound
        } else {
            Direction::Inbound
        }
    }

    fn check_track(&self, dir: Direction, now: f64) -> LaunchCheck {
        let track = &self.tracks[self.track_index(dir)];
        if track.blocked_by.is_some() {
            return LaunchCheck::Blocked;
        }
        if track.in_flight == 0 {
            return LaunchCheck::Free;
        }
        if track.direction != Some(dir) {
            return LaunchCheck::BusyOpposite;
        }
        let available = track.last_launch + self.cfg.launch_headway().seconds();
        if now >= available {
            LaunchCheck::Free
        } else {
            LaunchCheck::Headway(available)
        }
    }

    fn movement_cost(&self, from: EndpointId, to: EndpointId) -> MovementCost {
        self.costs.cost(from, to)
    }

    /// Samples launch-time faults on track `idx` and returns the movement
    /// cost actually charged (speed-limited while the tube is repressurised)
    /// plus whether this cart stalls mid-tube.
    fn sample_launch_faults(
        &mut self,
        idx: usize,
        from: EndpointId,
        to: EndpointId,
        now: f64,
    ) -> (MovementCost, bool) {
        // Copy the two Copy sub-specs out of the borrow so the fault RNG,
        // metrics, and track state can be mutated below without cloning the
        // whole spec per launch.
        let (repressurisation, cart_stall) = match self.cfg.faults.as_ref() {
            Some(faults) => (faults.repressurisation, faults.cart_stall),
            None => return (self.movement_cost(from, to), false),
        };
        let rng = self.fault_rng.as_mut().expect("fault rng exists with spec");
        if let Some(rep) = repressurisation {
            if rng.random_bool(rep.probability_per_movement) {
                self.repressurisations += 1;
                self.metrics.add(self.handles.repressurisations, 1);
                let until = now + rep.duration.seconds();
                let track = &mut self.tracks[idx];
                track.degraded_until = track.degraded_until.max(until);
            }
        }
        let mut stalled = false;
        if let Some(stall) = cart_stall {
            let rng = self.fault_rng.as_mut().expect("fault rng exists with spec");
            stalled = rng.random_bool(stall.probability_per_movement);
        }
        // Table lookups, not trapezoid evaluations: both tiers were batch-
        // computed at construction (the degraded tier falls back to full
        // speed when no repressurisation cap is configured, exactly as the
        // old per-launch `unwrap_or(max_speed)` did).
        let cost = if self.tracks[idx].degraded_until > now {
            self.costs.degraded_cost(from, to)
        } else {
            self.costs.cost(from, to)
        };
        (cost, stalled)
    }

    fn launch(&mut self, m: Movement) {
        let now = self.queue.now().seconds();
        let dir = Self::direction_of(m.from, m.to);
        let idx = self.track_index(dir);
        let (cost, stalled) = self.sample_launch_faults(idx, m.from, m.to, now);

        self.dock_used[m.to] += 1; // reserve the destination dock now
        let track = &mut self.tracks[idx];
        track.update_busy(now);
        track.direction = Some(dir);
        track.in_flight += 1;
        track.last_launch = now;
        if stalled {
            // The stalled cart blocks everything behind it on this track
            // from the moment it departs; carts already ahead are unaffected.
            self.cart_stalls += 1;
            self.metrics.add(self.handles.cart_stalls, 1);
            track.blocked_by = Some(m.cart);
            track.blocked_since = now;
        }
        self.max_in_flight = self.max_in_flight.max(self.total_in_flight());

        self.total_energy += cost.energy;
        self.movements += 1;
        self.metrics.add(self.handles.carts_launched, 1);
        self.metrics
            .record(self.handles.transit_s, cost.total_time.seconds());

        // A loaded launch from the library is a restage: the payload was
        // written onto the cart's NAND, wearing it.
        if m.from == 0 && !m.payload.is_zero() {
            if let Some(wear) = self.carts.wear[m.cart].as_mut() {
                wear.record_write(m.payload);
            }
        }
        self.carts.locations[m.cart] = CartLocation::Moving {
            from: m.from,
            to: m.to,
        };
        self.carts.movements[m.cart] = Some(ActiveMovement {
            from: m.from,
            to: m.to,
            payload: m.payload,
            attempt: m.attempt,
            cost,
            stalled,
        });
        self.carts.trips[m.cart] += 1;

        self.queue
            .schedule(self.cfg.undock_time, Ev::UndockDone { cart: m.cart });
        self.record(TraceEventKind::Launch {
            cart: m.cart,
            from: m.from,
            to: m.to,
        });
    }

    fn total_in_flight(&self) -> u32 {
        self.tracks.iter().map(|t| t.in_flight).sum()
    }

    fn try_launch(&mut self) {
        let now = self.queue.now().seconds();
        self.metrics
            .record(self.handles.queue_depth, self.pending.len() as f64);
        let mut wakeup: Option<f64> = None;
        loop {
            let mut launched = None;
            for (i, m) in self.pending.iter().enumerate() {
                if self.dock_used[m.to] >= self.cfg.endpoints[m.to].docks {
                    continue; // destination full
                }
                match self.check_track(Self::direction_of(m.from, m.to), now) {
                    LaunchCheck::Free => {
                        launched = Some(i);
                        break;
                    }
                    LaunchCheck::Headway(at) => {
                        wakeup = Some(wakeup.map_or(at, |w: f64| w.min(at)));
                    }
                    // Both resolve on a later DockDone, which re-runs
                    // try_launch; no timed wakeup needed.
                    LaunchCheck::BusyOpposite | LaunchCheck::Blocked => {}
                }
            }
            match launched {
                Some(i) => {
                    let m = self.pending.remove(i).expect("index valid");
                    self.launch(m);
                    // A launch we just made imposes headway on the rest;
                    // re-scan (some may still be launchable on the other
                    // track when dual).
                }
                None => break,
            }
        }
        if let Some(at) = wakeup {
            if !self.wakeup_scheduled {
                self.wakeup_scheduled = true;
                self.queue.schedule_at(Seconds::new(at), Ev::TryLaunch);
            }
        }
    }

    fn processing_time(&self) -> Seconds {
        match self.cfg.processing {
            ProcessingModel::Instant => Seconds::ZERO,
            ProcessingModel::PcieRead {
                bandwidth_bytes_per_second,
            } => Seconds::new(self.cfg.cart_capacity.as_f64() / bandwidth_bytes_per_second),
            ProcessingModel::Fixed(t) => t,
        }
    }

    fn schedule_delivery_for(&mut self, cart: CartId) {
        // Redeliveries first: a lost shard keeps its place in the mission.
        if let Some((rack, shard, attempt)) = self.redelivery_queue.pop_front() {
            self.mission.scheduled += 1;
            self.pending.push_back(Movement {
                cart,
                from: 0,
                to: rack,
                payload: shard,
                attempt,
            });
            return;
        }
        // Assign the next shard to this library cart, targeting the rack
        // with the most data still owed (greedy balance across racks).
        let Some(demand) = self
            .mission
            .demands
            .iter_mut()
            .filter(|d| !d.bytes_remaining.is_zero())
            .max_by_key(|d| d.bytes_remaining)
        else {
            return;
        };
        let shard = demand.bytes_remaining.min(self.cfg.cart_capacity);
        demand.bytes_remaining -= shard;
        let rack = demand.endpoint;
        self.mission.scheduled += 1;
        self.pending.push_back(Movement {
            cart,
            from: 0,
            to: rack,
            payload: shard,
            attempt: 1,
        });
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::TryLaunch => {
                self.wakeup_scheduled = false;
                self.try_launch();
            }
            Ev::UndockDone { cart } => {
                let m = self.carts.movements[cart].expect("moving cart");
                self.dock_used[m.from] -= 1;
                let mut transit = m.cost.motion_time;
                self.record(TraceEventKind::EnterTube { cart });
                if m.stalled {
                    let repair = self
                        .cfg
                        .faults
                        .as_ref()
                        .and_then(|f| f.cart_stall.as_ref())
                        .map_or(Seconds::ZERO, |s| s.repair_time);
                    transit += repair;
                    let dir = Self::direction_of(m.from, m.to);
                    let idx = self.track_index(dir);
                    self.record(TraceEventKind::CartStalled { cart, track: idx });
                }
                self.queue.schedule(transit, Ev::Arrived { cart });
                self.try_launch();
            }
            Ev::Arrived { cart } => {
                let mut dock = self.cfg.dock_time;
                // Every docking mates the connector once (integrity wear
                // input, independent of connector fault injection).
                self.carts.matings[cart] = self.carts.matings[cart].saturating_add(1);
                // Docking mates the cart's connector; a worn connector costs
                // a replacement window before data can flow.
                let replacement = self
                    .cfg
                    .faults
                    .as_ref()
                    .and_then(|f| f.docking_connector.as_ref())
                    .map(|c| c.replacement_time);
                if let (Some(conn), Some(replacement)) =
                    (self.carts.connectors[cart].as_mut(), replacement)
                {
                    if conn.mate().is_err() {
                        conn.replace();
                        let _ = conn.mate();
                        self.connector_replacements += 1;
                        self.metrics.add(self.handles.connector_replacements, 1);
                        dock += replacement;
                    }
                }
                let recovery = self.sample_dock_crash(cart);
                dock += recovery.unwrap_or(Seconds::ZERO);
                self.queue.schedule(dock, Ev::DockDone { cart });
                self.record(TraceEventKind::BeginDock { cart });
                if let Some(downtime) = recovery {
                    let endpoint = self.carts.movements[cart].expect("moving cart").to;
                    self.record(TraceEventKind::DockControllerCrashed { cart, endpoint });
                    self.record(TraceEventKind::DockControllerRecovered {
                        cart,
                        endpoint,
                        downtime,
                    });
                }
            }
            Ev::DockDone { cart } => {
                let m = self.carts.movements[cart].take().expect("moving cart");
                let dir = Self::direction_of(m.from, m.to);
                let idx = self.track_index(dir);
                let now = self.queue.now().seconds();
                let track = &mut self.tracks[idx];
                track.update_busy(now);
                track.in_flight -= 1;
                if track.in_flight == 0 {
                    track.direction = None;
                }
                if m.stalled && track.blocked_by == Some(cart) {
                    track.blocked_by = None;
                    track.downtime_accum += now - track.blocked_since;
                    self.record(TraceEventKind::TrackRestored { track: idx });
                }
                self.carts.locations[cart] = CartLocation::Docked(m.to);
                self.record(TraceEventKind::Docked {
                    cart,
                    endpoint: m.to,
                });
                let lost = self.sample_in_flight_failures(m.payload, m.cost.total_time);

                if self.cfg.endpoints[m.to].kind == EndpointKind::Rack {
                    self.mission.done += 1;
                    self.mission.gross_delivered += m.payload;
                    self.metrics.add(self.handles.deliveries, 1);
                    if lost && self.cfg.faults.is_some() {
                        self.fail_delivery(cart, m.to, m.payload, m.attempt, m.cost.total_time);
                    } else if self.cfg.integrity.is_some() {
                        // Arrival is no longer delivery: the payload enters
                        // the verify-on-dock state machine and completes (or
                        // reships) at VerifyDone.
                        self.begin_verification(cart, &m);
                    } else {
                        // Either the payload survived, or legacy accounting
                        // (faults = None) counts the loss without recovery.
                        self.complete_delivery(cart, m.to, m.payload, Seconds::ZERO);
                    }
                } else {
                    // Returned to the library: reuse for the next shard, or
                    // check completion.
                    if self.mission.scheduled < self.mission.total_deliveries {
                        self.schedule_delivery_for(cart);
                    }
                    self.check_completion();
                }
                self.try_launch();
            }
            Ev::VerifyDone { cart } => {
                self.finish_verification(cart);
                self.try_launch();
            }
            Ev::ProcessingDone { cart } => {
                self.record(TraceEventKind::ProcessingDone { cart });
                let CartLocation::Docked(ep) = self.carts.locations[cart] else {
                    unreachable!("processing cart is docked");
                };
                self.pending.push_back(Movement {
                    cart,
                    from: ep,
                    to: 0,
                    payload: Bytes::ZERO,
                    attempt: 0,
                });
                self.try_launch();
            }
        }
    }

    /// Samples a dock-station controller crash for this docking and returns
    /// the recovery window to charge, if one fired. Only payload-carrying
    /// rack dockings are exposed: controller recovery is about rebuilding
    /// transfer bookkeeping, and empty returns have none to rebuild.
    fn sample_dock_crash(&mut self, cart: CartId) -> Option<Seconds> {
        let spec = self.cfg.faults.as_ref()?.dock_controller?;
        let m = self.carts.movements[cart].expect("moving cart");
        if self.cfg.endpoints[m.to].kind != EndpointKind::Rack || m.payload.is_zero() {
            return None;
        }
        let rng = self.fault_rng.as_mut().expect("fault rng exists with spec");
        if !rng.random_bool(spec.crash_probability_per_docking) {
            return None;
        }
        let downtime = match spec.recovery {
            DockRecoveryPolicy::JournalReplay => spec.journal_replay_time,
            DockRecoveryPolicy::RebuildFromScan => {
                Seconds::new(m.payload.as_f64() / spec.rebuild_scan_bandwidth_bytes_per_second)
            }
        };
        self.dock_crashes += 1;
        self.dock_recovery_time_s += downtime.seconds();
        self.dock_downtime[m.to] += downtime.seconds();
        self.total_energy += spec.recovery_power * downtime;
        self.metrics.add(self.handles.dock_controller_crashes, 1);
        self.metrics
            .record(self.handles.dock_recovery_s, downtime.seconds());
        Some(downtime)
    }

    /// Samples SSD failures over one movement's exposure and returns whether
    /// the payload was lost (more failures than the RAID layout tolerates).
    ///
    /// Empty return trips carry no data, so they draw no samples and can
    /// never lose anything.
    fn sample_in_flight_failures(&mut self, payload: Bytes, exposure: Seconds) -> bool {
        // Copy the three Copy fields out of the borrow so the reliability
        // RNG and counters can be mutated below without cloning the spec
        // on every movement.
        let (failure, ssds_per_cart, raid) = match self.cfg.reliability.as_ref() {
            Some(spec) => (spec.failure, spec.ssds_per_cart, spec.raid),
            None => return false,
        };
        if payload.is_zero() {
            return false;
        }
        let rng = self.reliability_rng.as_mut().expect("rng exists with spec");
        let failed = failure.sample_failures(rng, ssds_per_cart, exposure);
        self.ssd_failures += u64::from(failed);
        self.metrics
            .add(self.handles.ssd_failures, u64::from(failed));
        if !raid.tolerates(failed) {
            self.data_loss_events += 1;
            self.metrics.add(self.handles.data_loss_events, 1);
            return true;
        }
        false
    }

    /// Completes a rack delivery: credit the payload, then schedule the
    /// processing dwell after `extra_dwell` (reconstruction time, for
    /// payloads rebuilt at the dock).
    fn complete_delivery(
        &mut self,
        cart: CartId,
        to: EndpointId,
        payload: Bytes,
        extra_dwell: Seconds,
    ) {
        self.mission.delivered += payload;
        if let Some(d) = self.mission.demands.iter_mut().find(|d| d.endpoint == to) {
            d.deliveries_done += 1;
        }
        self.queue.schedule(
            extra_dwell + self.processing_time(),
            Ev::ProcessingDone { cart },
        );
    }

    /// Recovery path for a delivery whose payload did not survive (RAID-
    /// uncovered in-flight loss, or over-tolerance corruption caught at the
    /// dock): report the failure, requeue the shard (or abandon past the
    /// attempt budget), and send the cart straight home without processing.
    /// Returns whether the shard was requeued for another attempt.
    fn fail_delivery(
        &mut self,
        cart: CartId,
        to: EndpointId,
        payload: Bytes,
        attempt: u32,
        trip_time: Seconds,
    ) -> bool {
        let max_attempts = self
            .cfg
            .faults
            .as_ref()
            .map_or(1, |f| f.max_delivery_attempts);
        self.record(TraceEventKind::DeliveryFailed {
            cart,
            endpoint: to,
            attempt,
        });
        // The whole round trip was wasted work.
        self.retry_time_s += 2.0 * trip_time.seconds();
        self.metrics.add(self.handles.delivery_failures, 1);
        let requeued = attempt < max_attempts;
        if requeued {
            self.redeliveries += 1;
            self.metrics.add(self.handles.redeliveries, 1);
            self.mission.total_deliveries += 1;
            self.redelivery_queue.push_back((to, payload, attempt + 1));
        } else {
            self.abandoned = Some((to, attempt));
        }
        // No processing dwell for a dead payload: head home immediately.
        self.pending.push_back(Movement {
            cart,
            from: to,
            to: 0,
            payload: Bytes::ZERO,
            attempt: 0,
        });
        requeued
    }

    /// Fraction of the cart's docking-connector rated cycles consumed — the
    /// mating-error wear input. Uses the fault-tracked connector when
    /// connector faults are on, otherwise counts matings against the
    /// integrity spec's assumed connector family.
    fn connector_wear_fraction(&self, cart: CartId, fallback_connector: ConnectorKind) -> f64 {
        if let Some(conn) = &self.carts.connectors[cart] {
            let rated = conn.cycles_used() + conn.cycles_remaining();
            if rated == 0 {
                return 0.0;
            }
            return f64::from(conn.cycles_used()) / f64::from(rated);
        }
        let rated = fallback_connector.rated_cycles();
        if rated == 0 {
            return 0.0;
        }
        (f64::from(self.carts.matings[cart]) / f64::from(rated)).min(1.0)
    }

    /// Checksum granularity: a fully loaded cart splits into
    /// `shards_per_cart` equal shards.
    fn shard_size(&self, shards_per_cart: u32) -> Bytes {
        Bytes::new((self.cfg.cart_capacity.as_u64() / u64::from(shards_per_cart)).max(1))
    }

    /// `Arrived → (scrub)`: charge verify-on-dock time and energy, park the
    /// delivery on the cart, and schedule its verdict.
    fn begin_verification(&mut self, cart: CartId, m: &ActiveMovement) {
        // Copy the three Copy fields out of the borrow — no per-delivery
        // clone of the whole spec.
        let spec = self.cfg.integrity.as_ref().expect("integrity spec present");
        let (shards_per_cart, verify_bandwidth, verify_power) = (
            spec.shards_per_cart,
            spec.verify_bandwidth_bytes_per_second,
            spec.verify_power,
        );
        let shards = if m.payload.is_zero() {
            0
        } else {
            m.payload.div_ceil(self.shard_size(shards_per_cart))
        };
        let verify_time = Seconds::new(m.payload.as_f64() / verify_bandwidth);
        let energy = verify_power * verify_time;
        self.total_energy += energy;
        self.verification_energy += energy;
        self.verification_time_s += verify_time.seconds();
        self.shards_scanned += shards;
        self.metrics.add(self.handles.shards_scanned, shards);
        self.metrics
            .record(self.handles.verify_s, verify_time.seconds());
        self.record(TraceEventKind::VerifyStarted {
            cart,
            endpoint: m.to,
            shards,
        });
        self.carts.verify[cart] = Some(PendingVerify {
            to: m.to,
            payload: m.payload,
            attempt: m.attempt,
            trip_time: m.cost.total_time,
            shards,
        });
        self.queue.schedule(verify_time, Ev::VerifyDone { cart });
    }

    /// The scrub's verdict: `Verified`, `Corrupted → Reconstructed`, or
    /// `Corrupted → Reshipped | Abandoned` when parity cannot cover it.
    fn finish_verification(&mut self, cart: CartId) {
        let pv = self.carts.verify[cart].take().expect("verifying cart");
        // Copy the Copy fields out of the borrow — no per-verdict clone of
        // the whole spec (the endurance model it holds allocates).
        let spec = self.cfg.integrity.as_ref().expect("integrity spec present");
        let (corruption, raid, shards_per_cart, reconstruct_bandwidth, connector) = (
            spec.corruption,
            spec.raid,
            spec.shards_per_cart,
            spec.reconstruct_bandwidth_bytes_per_second,
            spec.connector,
        );
        let wear = self.carts.wear[cart]
            .as_ref()
            .map_or(0.0, |w| w.wear_fraction());
        let conn_wear = self.connector_wear_fraction(cart, connector);
        let rng = self
            .integrity_rng
            .as_mut()
            .expect("integrity rng exists with spec");
        let corrupted =
            corruption.sample_corrupted_shards(rng, pv.shards, pv.trip_time, wear, conn_wear);

        if corrupted == 0 {
            self.deliveries_verified += 1;
            self.metrics.add(self.handles.deliveries_verified, 1);
            self.record(TraceEventKind::PayloadVerified {
                cart,
                endpoint: pv.to,
                shards: pv.shards,
            });
            self.complete_delivery(cart, pv.to, pv.payload, Seconds::ZERO);
            return;
        }

        self.shards_corrupted += corrupted;
        self.metrics.add(self.handles.shards_corrupted, corrupted);
        self.record(TraceEventKind::PayloadCorrupted {
            cart,
            endpoint: pv.to,
            corrupted,
            attempt: pv.attempt,
        });

        let tolerable = u32::try_from(corrupted)
            .map(|c| raid.tolerates(c))
            .unwrap_or(false);
        if tolerable {
            // Parity covers the damage: rebuild in place, charging the
            // reconstruction read time before the processing dwell.
            let rebuild_time = Seconds::new(
                corrupted as f64 * self.shard_size(shards_per_cart).as_f64()
                    / reconstruct_bandwidth,
            );
            self.shards_reconstructed += corrupted;
            self.reconstruction_time_s += rebuild_time.seconds();
            self.deliveries_verified += 1;
            self.metrics
                .add(self.handles.shards_reconstructed, corrupted);
            self.metrics.add(self.handles.deliveries_verified, 1);
            self.metrics
                .record(self.handles.reconstruction_s, rebuild_time.seconds());
            self.record(TraceEventKind::ShardsReconstructed {
                cart,
                shards: corrupted,
            });
            self.complete_delivery(cart, pv.to, pv.payload, rebuild_time);
        } else {
            // Beyond parity: the payload is unrecoverable at the dock and
            // re-enters the PR-1 bounded-retry machinery.
            self.data_loss_events += 1;
            self.metrics.add(self.handles.data_loss_events, 1);
            if self.fail_delivery(cart, pv.to, pv.payload, pv.attempt, pv.trip_time) {
                self.deliveries_reshipped += 1;
                self.metrics.add(self.handles.deliveries_reshipped, 1);
            }
        }
    }

    fn integrity_report(&self) -> IntegrityReport {
        if self.cfg.integrity.is_none() {
            return IntegrityReport::default();
        }
        IntegrityReport {
            shards_scanned: self.shards_scanned,
            shards_corrupted: self.shards_corrupted,
            shards_reconstructed: self.shards_reconstructed,
            deliveries_verified: self.deliveries_verified,
            deliveries_reshipped: self.deliveries_reshipped,
            verification_time: Seconds::new(self.verification_time_s),
            reconstruction_time: Seconds::new(self.reconstruction_time_s),
            verification_energy: self.verification_energy,
        }
    }

    fn check_completion(&mut self) {
        if self.mission.completion_time.is_some() {
            return;
        }
        let all_home = self
            .carts
            .locations
            .iter()
            .all(|l| matches!(l, CartLocation::Docked(0)));
        if self.mission.done >= self.mission.total_deliveries && all_home && self.pending.is_empty()
        {
            self.mission.completion_time = Some(self.queue.now().seconds());
        }
    }

    /// Simulates delivering `dataset` from the library to the first rack
    /// endpoint, returning every cart home afterwards (the paper's §V-B
    /// accounting).
    ///
    /// # Errors
    ///
    /// [`SimError::EventBudgetExhausted`] if the simulation fails to
    /// converge (defensive bound; does not occur for valid configurations).
    pub fn run_bulk_transfer(&mut self, dataset: Bytes) -> Result<BulkTransferReport, SimError> {
        let rack = self
            .cfg
            .endpoints
            .iter()
            .position(|e| e.kind == EndpointKind::Rack)
            .expect("validated config has a rack");
        self.run_multi_rack(&[(rack, dataset)])
    }

    /// Simulates serving several racks at once (§VI multi-stop): each entry
    /// is `(rack endpoint index, bytes owed to it)`. Shards are assigned
    /// greedily to the rack with the most data outstanding.
    ///
    /// # Errors
    ///
    /// - [`SimError::Config`] if any endpoint index is out of range or not
    ///   a rack;
    /// - [`SimError::EventBudgetExhausted`] as for
    ///   [`DhlSystem::run_bulk_transfer`].
    pub fn run_multi_rack(
        &mut self,
        demands: &[(EndpointId, Bytes)],
    ) -> Result<BulkTransferReport, SimError> {
        self.begin_multi_rack(demands)?;
        self.run_until(Seconds::new(f64::INFINITY))?;
        Ok(self.finish())
    }

    /// Starts a bulk transfer to the first rack endpoint without running it:
    /// the stepping half of [`DhlSystem::run_bulk_transfer`], for callers
    /// that drive the simulation with [`DhlSystem::run_until`] (checkpoint
    /// capture, incremental inspection).
    ///
    /// # Errors
    ///
    /// As for [`DhlSystem::begin_multi_rack`].
    pub fn begin_bulk_transfer(&mut self, dataset: Bytes) -> Result<(), SimError> {
        let rack = self
            .cfg
            .endpoints
            .iter()
            .position(|e| e.kind == EndpointKind::Rack)
            .expect("validated config has a rack");
        self.begin_multi_rack(&[(rack, dataset)])
    }

    /// Sets up a multi-rack mission and schedules its first launches
    /// without processing any events. Drive it with
    /// [`DhlSystem::run_until`], then settle accounts with
    /// [`DhlSystem::finish`].
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if any endpoint index is out of range or not a
    /// rack.
    pub fn begin_multi_rack(&mut self, demands: &[(EndpointId, Bytes)]) -> Result<(), SimError> {
        for (ep, _) in demands {
            match self.cfg.endpoints.get(*ep) {
                Some(spec) if spec.kind == EndpointKind::Rack => {}
                _ => {
                    return Err(SimError::Config(ConfigError::BadEndpoints(format!(
                        "endpoint {ep} is not a rack endpoint"
                    ))))
                }
            }
        }
        let deliveries: u64 = demands
            .iter()
            .map(|(_, bytes)| {
                if bytes.is_zero() {
                    0
                } else {
                    bytes.div_ceil(self.cfg.cart_capacity)
                }
            })
            .sum();
        self.mission = Mission {
            total_deliveries: deliveries,
            scheduled: 0,
            done: 0,
            demands: demands
                .iter()
                .map(|&(endpoint, bytes_remaining)| RackDemand {
                    endpoint,
                    bytes_remaining,
                    deliveries_done: 0,
                })
                .collect(),
            delivered: Bytes::ZERO,
            gross_delivered: Bytes::ZERO,
            completion_time: (deliveries == 0).then_some(0.0),
        };
        self.redelivery_queue.clear();
        self.abandoned = None;

        // Seed: every library cart takes a shard (up to the delivery count).
        for cart in 0..self.carts.len() {
            if self.mission.scheduled < deliveries {
                self.schedule_delivery_for(cart);
            }
        }
        self.events_at_mission_start = self.queue.events_processed();
        self.run_watch = Some(Stopwatch::start());
        self.try_launch();
        Ok(())
    }

    /// Simulation clock: the timestamp of the last event processed.
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.queue.now()
    }

    /// Processes events whose timestamp does not exceed `limit`, in order.
    /// Returns `Ok(true)` when the event queue drained (the mission is
    /// over) and `Ok(false)` when the next event lies beyond `limit`. The
    /// clock stays at the last event processed; pass
    /// `Seconds::new(f64::INFINITY)` to run to completion.
    ///
    /// # Errors
    ///
    /// - [`SimError::DeliveryAbandoned`] if a shard exhausted its attempts;
    /// - [`SimError::EventBudgetExhausted`] if the simulation fails to
    ///   converge (defensive bound; does not occur for valid
    ///   configurations).
    pub fn run_until(&mut self, limit: Seconds) -> Result<bool, SimError> {
        loop {
            // One queue scan per event: `pop_at_or_before` folds the peek
            // and the pop together.
            let Some((_, ev)) = self.queue.pop_at_or_before(limit) else {
                return Ok(self.queue.is_empty());
            };
            self.handle(ev);
            if let Some((endpoint, attempts)) = self.abandoned {
                return Err(SimError::DeliveryAbandoned { endpoint, attempts });
            }
            if self.queue.events_processed() > self.event_budget {
                return Err(SimError::EventBudgetExhausted {
                    events: self.queue.events_processed(),
                });
            }
        }
    }

    /// Settles the mission's accounts — completion check, pacing gauges —
    /// and produces its report. Call after [`DhlSystem::run_until`] drains
    /// the queue; calling earlier reports the mission as it stands.
    pub fn finish(&mut self) -> BulkTransferReport {
        self.check_completion();

        let completion = Seconds::new(self.mission.completion_time.unwrap_or(0.0));
        let events_this_run = self.queue.events_processed() - self.events_at_mission_start;
        let wall = self.run_watch.take().map_or(0.0, |w| w.elapsed_secs());
        self.metrics.add(self.handles.events, events_this_run);
        // Engine-level throughput accounting: the lifetime pop count (the
        // counter survives checkpoint/resume with the queue) plus the
        // events/sec the snapshot derives from it — see
        // `MetricsSnapshot::events_per_sec`.
        self.metrics
            .store(self.handles.events_processed, self.queue.events_processed());
        // Silent NaN/negative-delay coercions, surfaced so release-build
        // clamping (PR 6) is observable instead of invisible.
        self.metrics
            .store(self.handles.events_clamped, self.queue.clamped());
        self.metrics
            .set(self.handles.completion_s, completion.seconds());
        self.metrics.set(self.handles.wall_time_s, wall);
        if wall > 0.0 {
            self.metrics.set(
                self.handles.sim_seconds_per_wall_second,
                completion.seconds() / wall,
            );
            self.metrics.set(
                self.handles.events_per_wall_second,
                events_this_run as f64 / wall,
            );
        }
        let average_power = if completion.seconds() > 0.0 {
            self.total_energy / completion
        } else {
            Watts::ZERO
        };
        BulkTransferReport {
            completion_time: completion,
            delivered: self.mission.delivered,
            deliveries: self.mission.done,
            deliveries_by_endpoint: self
                .mission
                .demands
                .iter()
                .map(|d| (d.endpoint, d.deliveries_done))
                .collect(),
            movements: self.movements,
            total_energy: self.total_energy,
            average_power,
            embodied_bandwidth: self.mission.delivered / completion,
            track_busy_time: self
                .tracks
                .iter()
                .map(|t| Seconds::new(t.busy_accum))
                .collect(),
            max_carts_in_flight: self.max_in_flight,
            events_processed: self.queue.events_processed(),
            ssd_failures: self.ssd_failures,
            data_loss_events: self.data_loss_events,
            reliability: self.reliability_report(completion),
            integrity: self.integrity_report(),
            metrics: self.metrics.snapshot(),
        }
    }

    fn reliability_report(&self, completion: Seconds) -> ReliabilityReport {
        if self.cfg.faults.is_none() {
            return ReliabilityReport::default();
        }
        let rate = |bytes: Bytes| {
            if completion.seconds() > 0.0 {
                bytes / completion
            } else {
                dhl_units::BytesPerSecond::ZERO
            }
        };
        ReliabilityReport {
            redeliveries: self.redeliveries,
            retry_time: Seconds::new(self.retry_time_s),
            goodput: rate(self.mission.delivered),
            throughput: rate(self.mission.gross_delivered),
            track_downtime: self
                .tracks
                .iter()
                .map(|t| Seconds::new(t.downtime_accum))
                .collect(),
            cart_stalls: self.cart_stalls,
            connector_replacements: self.connector_replacements,
            repressurisations: self.repressurisations,
            dock_controller_crashes: self.dock_crashes,
            dock_recovery_time: Seconds::new(self.dock_recovery_time_s),
            dock_downtime: self
                .dock_downtime
                .iter()
                .map(|s| Seconds::new(*s))
                .collect(),
        }
    }
}

impl core::fmt::Debug for DhlSystem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DhlSystem")
            .field("now", &self.queue.now())
            .field("carts", &self.carts.len())
            .field("pending", &self.pending.len())
            .field("movements", &self.movements)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EndpointSpec;
    use dhl_units::Metres;

    fn run(cfg: SimConfig, pb: f64) -> BulkTransferReport {
        DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(pb))
            .unwrap()
    }

    #[test]
    fn serial_transfer_matches_analytical_doubling() {
        let report = run(SimConfig::paper_serial(), 29.0);
        assert_eq!(report.deliveries, 114);
        assert_eq!(report.movements, 228);
        assert!((report.completion_time.seconds() - 228.0 * 8.6).abs() < 1e-6);
        // Energy: 228 launches at ≈15.19 kJ (launch + drag + stabilisation).
        let per_movement = report.total_energy.value() / 228.0;
        assert!((per_movement - 15_040.0).abs() < 200.0);
        assert_eq!(report.delivered, Bytes::from_petabytes(29.0));
    }

    #[test]
    fn pipelined_fleet_beats_serial() {
        let serial = run(SimConfig::paper_serial(), 29.0);
        let pipelined = run(SimConfig::paper_default(), 29.0);
        assert!(
            pipelined.completion_time < serial.completion_time,
            "pipelined {} vs serial {}",
            pipelined.completion_time.seconds(),
            serial.completion_time.seconds()
        );
        // Same physical work, so same number of movements and energy.
        assert_eq!(pipelined.movements, serial.movements);
        assert!((pipelined.total_energy.value() - serial.total_energy.value()).abs() < 1.0);
    }

    #[test]
    fn dual_track_beats_single_track() {
        let mut cfg = SimConfig::paper_default();
        cfg.dual_track = true;
        let dual = run(cfg, 29.0);
        let single = run(SimConfig::paper_default(), 29.0);
        assert!(
            dual.completion_time < single.completion_time,
            "dual {} vs single {}",
            dual.completion_time.seconds(),
            single.completion_time.seconds()
        );
        assert_eq!(dual.track_busy_time.len(), 2);
    }

    #[test]
    fn zero_dataset_is_trivial() {
        let report = run(SimConfig::paper_default(), 0.0);
        assert_eq!(report.deliveries, 0);
        assert_eq!(report.movements, 0);
        assert_eq!(report.completion_time.seconds(), 0.0);
        assert_eq!(report.total_energy, Joules::ZERO);
    }

    #[test]
    fn partial_cart_still_takes_a_full_trip() {
        // 100 TB < one 256 TB cart: one delivery out, one return.
        let report = run(SimConfig::paper_serial(), 0.0001); // 0.1 TB
        assert_eq!(report.deliveries, 1);
        assert_eq!(report.movements, 2);
        assert!((report.completion_time.seconds() - 17.2).abs() < 1e-6);
    }

    #[test]
    fn delivered_bytes_match_dataset_exactly() {
        for pb in [0.1, 1.0, 5.3] {
            let report = run(SimConfig::paper_default(), pb);
            assert_eq!(report.delivered, Bytes::from_petabytes(pb));
        }
    }

    #[test]
    fn carts_all_end_at_library() {
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        sys.run_bulk_transfer(Bytes::from_petabytes(2.0)).unwrap();
        for cart in 0..sys.config().num_carts as usize {
            assert_eq!(sys.cart_location(cart), Some(CartLocation::Docked(0)));
        }
    }

    #[test]
    fn track_never_holds_more_than_dock_limited_carts() {
        let report = run(SimConfig::paper_default(), 29.0);
        // 4 rack docks bound the outbound pipeline depth.
        assert!(report.max_carts_in_flight <= 4);
        assert!(
            report.max_carts_in_flight >= 2,
            "pipelining should overlap carts"
        );
    }

    #[test]
    fn processing_dwell_slows_completion_but_not_energy() {
        let mut cfg = SimConfig::paper_default();
        cfg.processing = crate::config::ProcessingModel::Fixed(Seconds::new(100.0));
        let slow = run(cfg, 2.0);
        let fast = run(SimConfig::paper_default(), 2.0);
        assert!(slow.completion_time > fast.completion_time);
        assert!((slow.total_energy.value() - fast.total_energy.value()).abs() < 1.0);
    }

    #[test]
    fn multi_stop_track_reaches_far_endpoint() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints = vec![
            EndpointSpec {
                position: Metres::ZERO,
                docks: cfg.num_carts,
                kind: EndpointKind::Library,
            },
            EndpointSpec {
                position: Metres::new(250.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
            EndpointSpec {
                position: Metres::new(500.0),
                docks: 2,
                kind: EndpointKind::Rack,
            },
        ];
        // Deliveries go to the *first* rack (250 m): shorter hop, less time
        // than the 500 m system.
        let multi = run(cfg, 2.0);
        let single = run(SimConfig::paper_default(), 2.0);
        assert!(multi.completion_time < single.completion_time);
    }

    fn two_rack_config() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints = vec![
            EndpointSpec {
                position: Metres::ZERO,
                docks: cfg.num_carts,
                kind: EndpointKind::Library,
            },
            EndpointSpec {
                position: Metres::new(250.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
            EndpointSpec {
                position: Metres::new(500.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
        ];
        cfg
    }

    #[test]
    fn multi_rack_distributes_deliveries() {
        let mut sys = DhlSystem::new(two_rack_config()).unwrap();
        let report = sys
            .run_multi_rack(&[
                (1, Bytes::from_petabytes(2.0)),
                (2, Bytes::from_petabytes(1.0)),
            ])
            .unwrap();
        // 2 PB → 8 carts, 1 PB → 4 carts.
        assert_eq!(report.deliveries, 12);
        assert_eq!(report.movements, 24);
        let by_ep: std::collections::HashMap<usize, u64> =
            report.deliveries_by_endpoint.iter().copied().collect();
        assert_eq!(by_ep[&1], 8);
        assert_eq!(by_ep[&2], 4);
        assert_eq!(report.delivered, Bytes::from_petabytes(3.0));
    }

    #[test]
    fn multi_rack_rejects_non_rack_destinations() {
        let mut sys = DhlSystem::new(two_rack_config()).unwrap();
        assert!(sys.run_multi_rack(&[(0, Bytes::new(1))]).is_err()); // library
        assert!(sys.run_multi_rack(&[(9, Bytes::new(1))]).is_err()); // missing
    }

    #[test]
    fn multi_rack_matches_single_rack_when_one_demand() {
        let single = run(SimConfig::paper_default(), 2.0);
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        let multi = sys
            .run_multi_rack(&[(1, Bytes::from_petabytes(2.0))])
            .unwrap();
        assert_eq!(single.completion_time, multi.completion_time);
        assert_eq!(single.movements, multi.movements);
    }

    #[test]
    fn embodied_bandwidth_is_terabytes_per_second_scale() {
        let report = run(SimConfig::paper_default(), 29.0);
        let tbps = report.embodied_bandwidth.terabytes_per_second();
        assert!(tbps > 10.0, "got {tbps}");
    }

    #[test]
    fn average_power_is_kilowatt_scale() {
        // §V-C anchors DHL average power near 1.75 kW for the serial case.
        let report = run(SimConfig::paper_serial(), 29.0);
        let kw = report.average_power.kilowatts();
        assert!((kw - 1.77).abs() < 0.1, "got {kw}");
    }
}

#[cfg(test)]
mod metrics_tests {
    use super::*;
    use crate::config::FaultSpec;

    #[test]
    fn bulk_transfer_report_carries_a_metrics_snapshot() {
        let report = DhlSystem::new(SimConfig::paper_default())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(2.0))
            .unwrap();
        let m = &report.metrics;
        assert!(!m.is_empty());
        assert_eq!(m.counter("sim.carts_launched"), Some(report.movements));
        assert_eq!(m.counter("sim.deliveries"), Some(report.deliveries));
        assert_eq!(m.counter("sim.events"), Some(report.events_processed));
        assert_eq!(
            m.gauge("sim.completion_s"),
            Some(report.completion_time.seconds())
        );
        let transit = m.histogram("sim.transit_s").unwrap();
        assert_eq!(transit.count, report.movements);
        // Every paper_default movement is the same 500 m hop: 8.6 s.
        assert!((transit.min - 8.6).abs() < 1e-9);
        assert!((transit.max - 8.6).abs() < 1e-9);
        assert!(m.histogram("sim.queue_depth").is_some());
        assert!(m.gauge("sim.wall_time_s").unwrap_or(0.0) >= 0.0);
    }

    #[test]
    fn engine_throughput_and_clamp_metrics_are_emitted() {
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        let report = sys.run_bulk_transfer(Bytes::from_petabytes(2.0)).unwrap();
        let m = &report.metrics;
        // Fresh system: the lifetime pop count equals this mission's count.
        assert_eq!(
            m.counter("engine.events_processed"),
            Some(report.events_processed)
        );
        assert_eq!(
            m.counter("sim.events_clamped"),
            Some(0),
            "a clean run must not clamp"
        );
        // Wall time is recorded, so the derived throughput exists.
        let rate = m.events_per_sec().expect("wall gauge + counter present");
        assert!(rate > 0.0);
    }

    #[test]
    fn clamped_events_surface_in_the_metrics_snapshot() {
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        let _ = sys.run_bulk_transfer(Bytes::from_petabytes(1.0)).unwrap();
        // Inject a nonzero clamp count the way release builds accumulate it
        // (debug builds panic on bad delays instead of clamping, so the
        // counter is driven directly here).
        sys.queue.set_clamped(7);
        let report = sys.finish();
        assert_eq!(report.metrics.counter("sim.events_clamped"), Some(7));
    }

    #[test]
    fn sim_domain_metrics_are_deterministic_across_identical_runs() {
        let run = || {
            DhlSystem::new(SimConfig::paper_default())
                .unwrap()
                .run_bulk_transfer(Bytes::from_petabytes(1.0))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.metrics.counters, b.metrics.counters);
        assert_eq!(a.metrics.histograms, b.metrics.histograms);
        // Gauges include wall-clock pacing, which may differ — but the
        // reports still compare equal because metrics are excluded.
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_metrics_leave_the_snapshot_empty() {
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        sys.set_metrics_enabled(false);
        let report = sys.run_bulk_transfer(Bytes::from_petabytes(1.0)).unwrap();
        assert!(report.metrics.is_empty());
        assert!(!sys.metrics().is_enabled());
        // The simulation itself is unaffected.
        assert_eq!(report.deliveries, 4);
    }

    #[test]
    fn fault_metrics_mirror_reliability_counters() {
        let mut cfg = SimConfig::paper_default();
        cfg.faults = Some(FaultSpec {
            cart_stall: Some(crate::config::CartStallSpec {
                probability_per_movement: 0.2,
                repair_time: Seconds::new(120.0),
            }),
            ..FaultSpec::recovery_only()
        });
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(4.0))
            .unwrap();
        assert_eq!(
            report.metrics.counter("sim.cart_stalls"),
            Some(report.reliability.cart_stalls)
        );
    }
}

#[cfg(test)]
mod reliability_tests {
    use super::*;
    use crate::config::ReliabilitySpec;
    use dhl_storage::failure::{FailureModel, RaidConfig};

    #[test]
    fn typical_reliability_sees_no_losses_over_29pb() {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec::typical());
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(29.0))
            .unwrap();
        // 456 movements × 32 SSDs × ~3e-9 per-trip probability: failures
        // are vanishingly rare and RAID absorbs any that occur.
        assert_eq!(report.data_loss_events, 0);
        assert!(report.ssd_failures <= 1);
    }

    #[test]
    fn hostile_reliability_reports_losses() {
        let mut cfg = SimConfig::paper_serial();
        // ~10 M s of exposure per loaded trip: at AFR 0.9 each SSD fails
        // with p ≈ 0.52, so 64 draws make zero failures astronomically
        // unlikely.
        cfg.dock_time = Seconds::new(5_000_000.0);
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.9),
            raid: RaidConfig::none(32),
            ssds_per_cart: 32,
            seed: 1,
        });
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_terabytes(512.0))
            .unwrap();
        assert!(report.ssd_failures > 0);
        assert!(report.data_loss_events > 0);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut cfg = SimConfig::paper_default();
        cfg.dock_time = Seconds::new(10_000.0);
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.5),
            raid: RaidConfig::new(28, 4).unwrap(),
            ssds_per_cart: 32,
            seed: 7,
        });
        let run = |cfg: SimConfig| {
            DhlSystem::new(cfg)
                .unwrap()
                .run_bulk_transfer(Bytes::from_petabytes(1.0))
                .unwrap()
        };
        let a = run(cfg.clone());
        let b = run(cfg.clone());
        assert_eq!(a.ssd_failures, b.ssd_failures);
        assert_eq!(a.data_loss_events, b.data_loss_events);
        let mut other = cfg;
        other.reliability.as_mut().unwrap().seed = 8;
        let c = run(other);
        // Different seed, (almost surely) different sample.
        assert!(c.ssd_failures != a.ssd_failures || c.data_loss_events == a.data_loss_events);
    }

    #[test]
    fn no_reliability_means_no_failures() {
        let report = DhlSystem::new(SimConfig::paper_default())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(5.0))
            .unwrap();
        assert_eq!(report.ssd_failures, 0);
        assert_eq!(report.data_loss_events, 0);
    }

    #[test]
    fn empty_return_trips_draw_no_failure_samples() {
        // With a per-trip failure probability of certainty, every *loaded*
        // movement loses SSDs — but returns are empty, so exactly
        // deliveries × ssds_per_cart failures occur, not movements × ssds.
        let mut cfg = SimConfig::paper_serial();
        // ~1e8 s of exposure per loaded trip at AFR 0.999999 drives the
        // per-SSD trip failure probability to 1 - 1e-19: every loaded draw
        // fails, deterministically for any seed.
        cfg.dock_time = Seconds::new(50_000_000.0);
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.999_999),
            raid: RaidConfig::none(4),
            ssds_per_cart: 4,
            seed: 3,
        });
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_terabytes(512.0))
            .unwrap();
        assert_eq!(report.deliveries, 2);
        assert_eq!(report.movements, 4);
        // All 4 SSDs on both loaded trips fail; the 2 empty returns add none.
        assert_eq!(report.ssd_failures, 8);
        assert_eq!(report.data_loss_events, 2);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::config::{
        CartStallSpec, ConnectorFaultSpec, DockControllerFaultSpec, FaultSpec, ReliabilitySpec,
        RepressurisationSpec,
    };
    use dhl_storage::connectors::ConnectorKind;
    use dhl_storage::failure::{FailureModel, RaidConfig};

    /// A config whose per-delivery loss probability is substantial (long
    /// docked exposure, no RAID) with the recovery machinery enabled.
    pub(super) fn lossy_recovering_config(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        // ~3.6 % per-SSD failure per loaded trip; with 32 unprotected SSDs,
        // ~69 % of deliveries are lost and must be redelivered.
        cfg.dock_time = Seconds::new(500_000.0);
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.9),
            raid: RaidConfig::none(32),
            ssds_per_cart: 32,
            seed,
        });
        cfg.faults = Some(FaultSpec {
            max_delivery_attempts: 64,
            ..FaultSpec::recovery_only()
        });
        cfg
    }

    #[test]
    fn lost_shards_are_redelivered_until_goodput_matches_request() {
        let dataset = Bytes::from_petabytes(2.0);
        let mut sys = DhlSystem::new(lossy_recovering_config(11)).unwrap();
        let report = sys.run_bulk_transfer(dataset).unwrap();
        assert!(
            report.reliability.redeliveries > 0,
            "expected redeliveries under heavy loss, got none"
        );
        // Recovery keeps redelivering until every byte lands intact.
        assert_eq!(report.delivered, dataset);
        assert!(report.reliability.retry_time.seconds() > 0.0);
        // Gross throughput strictly exceeds goodput: failed attempts moved
        // bytes that did not count.
        assert!(report.reliability.throughput > report.reliability.goodput);
        // Every redelivery adds an extra delivery and two extra movements.
        assert_eq!(
            report.deliveries,
            8 + report.reliability.redeliveries,
            "2 PB / 256 TB = 8 useful deliveries plus retries"
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let dataset = Bytes::from_petabytes(1.0);
        let run = |seed| {
            DhlSystem::new(lossy_recovering_config(seed))
                .unwrap()
                .run_bulk_transfer(dataset)
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b);
        let c = run(6);
        assert!(
            c.reliability.redeliveries != a.reliability.redeliveries
                || c.ssd_failures != a.ssd_failures,
            "different seeds should (almost surely) differ somewhere"
        );
    }

    #[test]
    fn attempt_budget_exhaustion_is_a_typed_error() {
        let mut cfg = lossy_recovering_config(2);
        // Certain loss on every attempt + a budget of 2 → abandoned.
        cfg.reliability.as_mut().unwrap().failure = FailureModel::new(0.999_999);
        cfg.faults.as_mut().unwrap().max_delivery_attempts = 2;
        let err = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_terabytes(256.0))
            .unwrap_err();
        match err {
            SimError::DeliveryAbandoned { endpoint, attempts } => {
                assert_eq!(endpoint, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected DeliveryAbandoned, got {other:?}"),
        }
    }

    #[test]
    fn recovery_off_keeps_legacy_loss_accounting() {
        // Same lossy setup but faults = None: losses are counted, nothing is
        // redelivered, and delivered bytes still include the lost payloads.
        let mut cfg = lossy_recovering_config(11);
        cfg.faults = None;
        let dataset = Bytes::from_petabytes(2.0);
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();
        assert!(report.data_loss_events > 0);
        assert_eq!(report.deliveries, 8);
        assert_eq!(report.delivered, dataset);
        assert_eq!(
            report.reliability,
            crate::report::ReliabilityReport::default()
        );
    }

    #[test]
    fn stalled_carts_block_and_release_the_track() {
        let mut cfg = SimConfig::paper_default();
        cfg.faults = Some(FaultSpec {
            cart_stall: Some(CartStallSpec {
                probability_per_movement: 0.2,
                repair_time: Seconds::new(120.0),
            }),
            ..FaultSpec::recovery_only()
        });
        let mut sys = DhlSystem::new(cfg).unwrap();
        sys.enable_trace(1 << 16);
        let report = sys.run_bulk_transfer(Bytes::from_petabytes(4.0)).unwrap();
        assert!(
            report.reliability.cart_stalls > 0,
            "20% stall rate over 32 trips"
        );
        let downtime: f64 = report
            .reliability
            .track_downtime
            .iter()
            .map(|s| s.seconds())
            .sum();
        // Each stall blocks the track for at least its 120 s repair.
        assert!(
            downtime >= 120.0 * report.reliability.cart_stalls as f64,
            "downtime {downtime} vs {} stalls",
            report.reliability.cart_stalls
        );
        // Stalls delay completion versus the fault-free run.
        let clean = DhlSystem::new(SimConfig::paper_default())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(4.0))
            .unwrap();
        assert!(report.completion_time > clean.completion_time);
        // Trace invariant: stall/restore events bracket correctly per cart.
        let trace = sys.take_trace().unwrap();
        let stalls = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::CartStalled { .. }))
            .count() as u64;
        let restores = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TrackRestored { .. }))
            .count() as u64;
        assert_eq!(stalls, report.reliability.cart_stalls);
        assert_eq!(restores, stalls);
    }

    #[test]
    fn worn_connectors_cost_replacement_windows() {
        // M.2 is rated for 250 cycles; a mission with > 250 docks per cart
        // must replace connectors. Serial config: 1 cart doing 114 round
        // trips = 228 docks — stay under; push dataset to exceed.
        let mut cfg = SimConfig::paper_serial();
        cfg.faults = Some(FaultSpec {
            docking_connector: Some(ConnectorFaultSpec {
                kind: ConnectorKind::M2,
                replacement_time: Seconds::new(300.0),
            }),
            ..FaultSpec::recovery_only()
        });
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(58.0))
            .unwrap();
        // 228 deliveries → 456 docks on one cart → at least one replacement.
        assert!(report.reliability.connector_replacements >= 1);
        let clean = DhlSystem::new(SimConfig::paper_serial())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(58.0))
            .unwrap();
        let extra = report.completion_time.seconds() - clean.completion_time.seconds();
        let expected = 300.0 * report.reliability.connector_replacements as f64;
        assert!(
            (extra - expected).abs() < 1e-6,
            "extra {extra} vs expected {expected}"
        );
    }

    #[test]
    fn repressurisation_slows_affected_launches() {
        let mut cfg = SimConfig::paper_default();
        cfg.faults = Some(FaultSpec {
            repressurisation: Some(RepressurisationSpec {
                probability_per_movement: 0.3,
                duration: Seconds::new(200.0),
                degraded_pressure_millibar: 400.0,
            }),
            ..FaultSpec::recovery_only()
        });
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(4.0))
            .unwrap();
        assert!(report.reliability.repressurisations > 0);
        let clean = DhlSystem::new(SimConfig::paper_default())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(4.0))
            .unwrap();
        // Speed-limited cruises stretch the schedule but spend *less* launch
        // energy (slower top speed).
        assert!(report.completion_time > clean.completion_time);
        assert!(report.total_energy < clean.total_energy);
    }

    #[test]
    fn all_faults_together_still_deliver_everything() {
        let mut cfg = SimConfig::paper_default();
        cfg.dock_time = Seconds::new(20_000.0);
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.5),
            raid: RaidConfig::new(6, 2).unwrap(),
            ssds_per_cart: 8,
            seed: 99,
        });
        cfg.faults = Some(FaultSpec {
            max_delivery_attempts: 64,
            ..FaultSpec::stress()
        });
        let dataset = Bytes::from_petabytes(2.0);
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();
        assert_eq!(report.delivered, dataset);
    }

    fn crashing_dock_config(spec: DockControllerFaultSpec) -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.faults = Some(FaultSpec {
            dock_controller: Some(spec),
            ..FaultSpec::recovery_only()
        });
        cfg
    }

    #[test]
    fn dock_controller_crashes_charge_recovery_windows() {
        // Certain crash on every payload-carrying rack docking: 2 PB → 8
        // deliveries → exactly 8 journal replays of 30 s each, with no RNG
        // draw consumed (p = 1 short-circuits), so the count is exact.
        let cfg = crashing_dock_config(DockControllerFaultSpec {
            crash_probability_per_docking: 1.0,
            ..DockControllerFaultSpec::journal_replay()
        });
        let mut sys = DhlSystem::new(cfg).unwrap();
        sys.enable_trace(1 << 16);
        let report = sys.run_bulk_transfer(Bytes::from_petabytes(2.0)).unwrap();
        let rel = &report.reliability;
        assert_eq!(rel.dock_controller_crashes, 8);
        assert!((rel.dock_recovery_time.seconds() - 8.0 * 30.0).abs() < 1e-9);
        // Downtime lands on the rack's controller; the library never hosts
        // a payload-carrying docking in this mission.
        assert_eq!(rel.dock_downtime[0], Seconds::ZERO);
        assert!((rel.dock_downtime[1].seconds() - 240.0).abs() < 1e-9);
        assert_eq!(
            report.metrics.counter("sim.dock_controller_crashes"),
            Some(rel.dock_controller_crashes)
        );

        let clean = DhlSystem::new(SimConfig::paper_default())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(2.0))
            .unwrap();
        assert!(report.completion_time > clean.completion_time);
        // Recovery draws its configured power for the whole window:
        // 8 × 150 W × 30 s on top of the clean run's launch energy.
        let extra = report.total_energy.value() - clean.total_energy.value();
        assert!((extra - 8.0 * 150.0 * 30.0).abs() < 1e-6, "extra {extra}");

        // Crash/recovery pairs appear in the trace inside the docking phase.
        let trace = sys.take_trace().unwrap();
        let crashes = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::DockControllerCrashed { .. }))
            .count() as u64;
        let recoveries: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::DockControllerRecovered { downtime, .. } => Some(downtime),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, rel.dock_controller_crashes);
        assert_eq!(recoveries.len() as u64, rel.dock_controller_crashes);
        assert!(recoveries
            .iter()
            .all(|d| (d.seconds() - 30.0).abs() < 1e-12));
        for cart in 0..report.max_carts_in_flight as usize {
            assert!(trace.lifecycle_is_well_formed(cart));
        }
    }

    #[test]
    fn rebuild_from_scan_outages_scale_with_payload() {
        // Journal replay charges a fixed 30 s; rebuilding dock state by
        // re-scanning the docked payload at 8 GB/s takes hours per cart.
        // Same crash count (p = 1 draws nothing), wildly different
        // availability.
        let run = |recovery| {
            let cfg = crashing_dock_config(DockControllerFaultSpec {
                crash_probability_per_docking: 1.0,
                recovery,
                ..DockControllerFaultSpec::journal_replay()
            });
            DhlSystem::new(cfg)
                .unwrap()
                .run_bulk_transfer(Bytes::from_petabytes(1.0))
                .unwrap()
        };
        let journal = run(crate::config::DockRecoveryPolicy::JournalReplay);
        let rebuild = run(crate::config::DockRecoveryPolicy::RebuildFromScan);
        assert_eq!(
            journal.reliability.dock_controller_crashes,
            rebuild.reliability.dock_controller_crashes
        );
        // Every delivery crashes exactly once, so the recovery total is the
        // whole dataset re-scanned once: 1 PB / 8 GB/s = 125 000 s.
        let total = rebuild.reliability.dock_recovery_time.seconds();
        assert!((total - 125_000.0).abs() < 1e-6, "total {total}");
        assert!(rebuild.reliability.dock_recovery_time > journal.reliability.dock_recovery_time);
        assert!(rebuild.completion_time > journal.completion_time);
    }

    #[test]
    fn dock_crash_injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut cfg = crashing_dock_config(DockControllerFaultSpec {
                crash_probability_per_docking: 0.3,
                ..DockControllerFaultSpec::journal_replay()
            });
            cfg.reliability = Some(ReliabilitySpec {
                seed,
                ..ReliabilitySpec::typical()
            });
            DhlSystem::new(cfg)
                .unwrap()
                .run_bulk_transfer(Bytes::from_petabytes(8.0))
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b);
        assert!(
            a.reliability.dock_controller_crashes > 0,
            "30% over 32 dockings should crash at least once"
        );
        let c = run(6);
        assert!(
            c.reliability.dock_controller_crashes != a.reliability.dock_controller_crashes
                || c.completion_time != a.completion_time,
            "different fault seeds should (almost surely) differ"
        );
    }
}

#[cfg(test)]
mod integrity_tests {
    use super::*;
    use crate::config::{FaultSpec, IntegritySpec};
    use crate::report::IntegrityReport;
    use dhl_storage::failure::RaidConfig;
    use dhl_storage::integrity::CorruptionModel;

    fn run(cfg: SimConfig, pb: f64) -> BulkTransferReport {
        DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(pb))
            .unwrap()
    }

    /// Every shard of every delivery corrupts (per-shard probability 1), but
    /// the layout's parity covers all of them.
    fn saturating_tolerated_config() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.integrity = Some(IntegritySpec {
            corruption: CorruptionModel {
                mating_error_per_cycle: 1.0,
                ..CorruptionModel::paper_default()
            },
            shards_per_cart: 4,
            raid: RaidConfig::new(28, 4).unwrap(),
            ..IntegritySpec::typical()
        });
        cfg
    }

    /// Per-shard corruption is intermittent, so some deliveries exceed the
    /// 28+4 tolerance and must be re-shipped through the PR-1 machinery.
    fn reshipping_config(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.integrity = Some(IntegritySpec {
            corruption: CorruptionModel {
                mating_error_per_cycle: 0.12,
                ..CorruptionModel::paper_default()
            },
            seed,
            ..IntegritySpec::typical()
        });
        cfg.faults = Some(FaultSpec {
            max_delivery_attempts: 64,
            ..FaultSpec::recovery_only()
        });
        cfg
    }

    #[test]
    fn integrity_disabled_is_the_pre_integrity_simulation() {
        // `integrity: None` must leave the simulation untouched: the other
        // tests in this file pin the pre-integrity numbers, and the report's
        // integrity block stays all-zero.
        let report = run(SimConfig::paper_default(), 29.0);
        assert_eq!(report.integrity, IntegrityReport::default());
        assert_eq!(report.deliveries, 114);
        assert_eq!(report.delivered, Bytes::from_petabytes(29.0));
    }

    #[test]
    fn verify_on_dock_charges_time_and_energy() {
        let mut cfg = SimConfig::paper_default();
        cfg.integrity = Some(IntegritySpec::verification_only());
        let verified = run(cfg, 29.0);
        let baseline = run(SimConfig::paper_default(), 29.0);

        // Same useful work, strictly more time and energy.
        assert_eq!(verified.deliveries, baseline.deliveries);
        assert_eq!(verified.delivered, baseline.delivered);
        assert!(verified.completion_time > baseline.completion_time);
        assert!(verified.total_energy > baseline.total_energy);

        let integ = &verified.integrity;
        assert_eq!(integ.deliveries_verified, verified.deliveries);
        assert_eq!(integ.shards_corrupted, 0);
        assert_eq!(integ.shards_reconstructed, 0);
        assert_eq!(integ.deliveries_reshipped, 0);
        // 113 full carts × 32 shards plus a 72 TB tail cart (9 × 8 TB shards).
        assert_eq!(integ.shards_scanned, 113 * 32 + 9);
        // 29 PB scrubbed at 64 GB/s ≈ 4.53e5 s of verification.
        let expected_verify = 29.0e15 / 64.0e9;
        assert!((integ.verification_time.seconds() - expected_verify).abs() < 1.0);
        assert!(integ.verification_energy.value() > 0.0);
        let expected_total = baseline.total_energy.value() + integ.verification_energy.value();
        assert!(
            (verified.total_energy.value() - expected_total).abs() < 1e-6 * expected_total,
            "scrub energy must be the only addition to the run's energy"
        );
    }

    #[test]
    fn tolerated_corruption_reconstructs_without_reshipment() {
        let report = run(saturating_tolerated_config(), 29.0);
        let integ = &report.integrity;
        // Every shard of every delivery corrupts, parity rebuilds all of
        // them, and nothing is re-shipped. 113 full carts at 4 shards each
        // plus a 72 TB tail cart (2 × 64 TB shards).
        assert_eq!(integ.shards_scanned, 113 * 4 + 2);
        assert_eq!(integ.shards_corrupted, integ.shards_scanned);
        assert_eq!(integ.shards_reconstructed, integ.shards_corrupted);
        assert_eq!(integ.deliveries_verified, report.deliveries);
        assert_eq!(integ.deliveries_reshipped, 0);
        assert!(integ.reconstruction_time.seconds() > 0.0);
        assert_eq!(report.delivered, Bytes::from_petabytes(29.0));
        assert_eq!(report.deliveries, 114);
    }

    #[test]
    fn over_tolerance_corruption_reships_until_delivered() {
        let dataset = Bytes::from_petabytes(8.0);
        let mut sys = DhlSystem::new(reshipping_config(7)).unwrap();
        sys.enable_trace(1 << 16);
        let report = sys.run_bulk_transfer(dataset).unwrap();
        let integ = &report.integrity;
        assert!(
            integ.deliveries_reshipped > 0,
            "expected reshipments under intermittent over-tolerance corruption"
        );
        // Reshipments ride the PR-1 redelivery machinery 1:1 here (no other
        // fault source is enabled).
        assert_eq!(integ.deliveries_reshipped, report.reliability.redeliveries);
        assert_eq!(report.delivered, dataset);
        assert_eq!(
            report.deliveries,
            integ.deliveries_verified + integ.deliveries_reshipped
        );

        // The reshipments are visible in the trace: corrupted verdicts
        // followed by delivery failures, in a well-formed scrub lifecycle.
        let trace = sys.take_trace().unwrap();
        let corrupted = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::PayloadCorrupted { .. }))
            .count() as u64;
        let failed = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::DeliveryFailed { .. }))
            .count() as u64;
        assert!(corrupted >= integ.deliveries_reshipped);
        assert_eq!(failed, integ.deliveries_reshipped);
        for cart in 0..report.max_carts_in_flight as usize {
            assert!(trace.lifecycle_is_well_formed(cart));
            assert!(trace.integrity_lifecycle_is_well_formed(cart));
        }
    }

    #[test]
    fn unrecoverable_corruption_abandons_after_bounded_retries() {
        let mut cfg = SimConfig::paper_default();
        cfg.integrity = Some(IntegritySpec {
            corruption: CorruptionModel {
                mating_error_per_cycle: 1.0,
                ..CorruptionModel::paper_default()
            },
            raid: RaidConfig::none(32),
            ..IntegritySpec::typical()
        });
        cfg.faults = Some(FaultSpec {
            max_delivery_attempts: 3,
            ..FaultSpec::recovery_only()
        });
        let err = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_terabytes(256.0))
            .unwrap_err();
        match err {
            SimError::DeliveryAbandoned { endpoint, attempts } => {
                assert_eq!(endpoint, 1);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected DeliveryAbandoned, got {other:?}"),
        }
    }

    #[test]
    fn identical_seeds_give_identical_integrity_reports() {
        let go = |seed| {
            DhlSystem::new(reshipping_config(seed))
                .unwrap()
                .run_bulk_transfer(Bytes::from_petabytes(4.0))
                .unwrap()
        };
        let a = go(21);
        let b = go(21);
        assert_eq!(a, b);
        // `integrity` is excluded from report equality, so compare it
        // explicitly as well.
        assert_eq!(a.integrity, b.integrity);
        let c = go(22);
        assert_ne!(
            a.integrity, c.integrity,
            "different corruption seeds should (almost surely) differ"
        );
    }

    #[test]
    fn integrity_stream_is_independent_of_fault_streams() {
        // Enabling verification (zero corruption) on top of the PR-1 lossy
        // config must not perturb the fault RNG draws: the same losses and
        // redeliveries happen, verification merely rides along.
        let dataset = Bytes::from_petabytes(2.0);
        let base = DhlSystem::new(super::fault_tests::lossy_recovering_config(11))
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();
        let mut cfg = super::fault_tests::lossy_recovering_config(11);
        cfg.integrity = Some(IntegritySpec::verification_only());
        let verified = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(dataset)
            .unwrap();
        assert_eq!(
            base.reliability.redeliveries,
            verified.reliability.redeliveries
        );
        assert_eq!(base.ssd_failures, verified.ssd_failures);
        assert_eq!(base.deliveries, verified.deliveries);
    }
}
