//! The event-driven DHL system simulator.
//!
//! Simulates the full §III architecture: a cart fleet stored in the library,
//! one or more rack endpoints with docking stations, and one (or two, §VI)
//! maglev tracks connecting them. The simulator enforces the physical
//! constraints the analytical model elides:
//!
//! - carts cannot pass one another, so same-direction launches keep a
//!   headway of one docking time;
//! - a single bidirectional track must drain completely before reversing;
//! - an endpoint can hold only as many carts as it has docking stations;
//! - dock and undock each take their configured (pessimistic 3 s) time.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dhl_units::{Bytes, Joules, Seconds, Watts};

use crate::config::{ConfigError, EndpointKind, ProcessingModel, SimConfig};
use crate::engine::EventQueue;
use crate::movement::MovementCost;
use crate::report::BulkTransferReport;
use crate::trace::{Trace, TraceEventKind};

/// Index of a cart in the fleet.
pub type CartId = usize;
/// Index of an endpoint along the track.
pub type EndpointId = usize;

/// Travel direction relative to the library.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Away from the library (toward higher positions).
    Outbound,
    /// Back toward the library.
    Inbound,
}

/// Where a cart currently is.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum CartLocation {
    /// Docked (idle or processing) at an endpoint.
    Docked(EndpointId),
    /// Somewhere between two endpoints.
    Moving {
        /// Origin endpoint.
        from: EndpointId,
        /// Destination endpoint.
        to: EndpointId,
    },
}

#[derive(Copy, Clone, Debug)]
struct Movement {
    cart: CartId,
    from: EndpointId,
    to: EndpointId,
    payload: Bytes,
}

#[derive(Debug)]
enum Ev {
    TryLaunch,
    UndockDone { cart: CartId },
    Arrived { cart: CartId },
    DockDone { cart: CartId },
    ProcessingDone { cart: CartId },
}

#[derive(Clone, Debug)]
struct CartSim {
    location: CartLocation,
    /// In-flight movement target (valid while moving).
    movement: Option<(EndpointId, EndpointId, Bytes)>,
    trips: u64,
}

#[derive(Clone, Debug, Default)]
struct TrackState {
    direction: Option<Direction>,
    in_flight: u32,
    last_launch: f64,
    busy_accum: f64,
    last_update: f64,
}

impl TrackState {
    fn update_busy(&mut self, now: f64) {
        if self.in_flight > 0 {
            self.busy_accum += now - self.last_update;
        }
        self.last_update = now;
    }
}

enum LaunchCheck {
    Free,
    Headway(f64),
    BusyOpposite,
}

#[derive(Debug, Default)]
struct RackDemand {
    endpoint: EndpointId,
    bytes_remaining: Bytes,
    deliveries_done: u64,
}

#[derive(Debug, Default)]
struct Mission {
    total_deliveries: u64,
    scheduled: u64,
    done: u64,
    demands: Vec<RackDemand>,
    delivered: Bytes,
    completion_time: Option<f64>,
}

/// Errors from running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The event budget was exhausted (runaway simulation).
    EventBudgetExhausted {
        /// Events processed before giving up.
        events: u64,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::EventBudgetExhausted { events } => {
                write!(f, "simulation exceeded its event budget after {events} events")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::EventBudgetExhausted { .. } => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

fn cfg_reliability_rng(cfg: &SimConfig) -> Option<StdRng> {
    cfg.reliability
        .as_ref()
        .map(|r| StdRng::seed_from_u64(r.seed))
}

/// The DHL system simulator.
///
/// # Examples
///
/// Reproducing the paper's doubled-trip bulk transfer with a strictly serial
/// system (one cart, one rack dock):
///
/// ```rust
/// use dhl_sim::{DhlSystem, SimConfig};
/// use dhl_units::Bytes;
///
/// let report = DhlSystem::new(SimConfig::paper_serial())
///     .unwrap()
///     .run_bulk_transfer(Bytes::from_petabytes(29.0))
///     .unwrap();
/// assert_eq!(report.deliveries, 114);
/// assert_eq!(report.movements, 228); // every delivery also returns
/// // 228 × 8.6 s = 1960.8 s — the analytical model's doubled accounting.
/// assert!((report.completion_time.seconds() - 1960.8).abs() < 1.0);
/// ```
pub struct DhlSystem {
    cfg: SimConfig,
    queue: EventQueue<Ev>,
    carts: Vec<CartSim>,
    dock_used: Vec<u32>,
    tracks: Vec<TrackState>,
    pending: VecDeque<Movement>,
    mission: Mission,
    wakeup_scheduled: bool,
    total_energy: Joules,
    movements: u64,
    max_in_flight: u32,
    event_budget: u64,
    trace: Option<Trace>,
    reliability_rng: Option<StdRng>,
    ssd_failures: u64,
    data_loss_events: u64,
}

impl DhlSystem {
    /// Builds a simulator over a validated configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let carts = vec![
            CartSim {
                location: CartLocation::Docked(0),
                movement: None,
                trips: 0,
            };
            cfg.num_carts as usize
        ];
        let mut dock_used = vec![0u32; cfg.endpoints.len()];
        dock_used[0] = cfg.num_carts;
        let tracks = if cfg.dual_track {
            vec![TrackState::default(), TrackState::default()]
        } else {
            vec![TrackState::default()]
        };
        let reliability_rng = cfg_reliability_rng(&cfg);
        Ok(Self {
            cfg,
            queue: EventQueue::new(),
            carts,
            dock_used,
            tracks,
            pending: VecDeque::new(),
            mission: Mission::default(),
            wakeup_scheduled: false,
            total_energy: Joules::ZERO,
            movements: 0,
            max_in_flight: 0,
            event_budget: 50_000_000,
            reliability_rng,
            trace: None,
            ssd_failures: 0,
            data_loss_events: 0,
        })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Enables event tracing, retaining at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    fn record(&mut self, kind: TraceEventKind) {
        let now = self.queue.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.record(now, kind);
        }
    }

    /// Current location of a cart (for tests and live inspection).
    #[must_use]
    pub fn cart_location(&self, cart: CartId) -> Option<CartLocation> {
        self.carts.get(cart).map(|c| c.location)
    }

    fn track_index(&self, dir: Direction) -> usize {
        if self.cfg.dual_track && dir == Direction::Inbound {
            1
        } else {
            0
        }
    }

    fn direction_of(from: EndpointId, to: EndpointId) -> Direction {
        if to > from {
            Direction::Outbound
        } else {
            Direction::Inbound
        }
    }

    fn check_track(&self, dir: Direction, now: f64) -> LaunchCheck {
        let track = &self.tracks[self.track_index(dir)];
        if track.in_flight == 0 {
            return LaunchCheck::Free;
        }
        if track.direction != Some(dir) {
            return LaunchCheck::BusyOpposite;
        }
        let available = track.last_launch + self.cfg.launch_headway().seconds();
        if now >= available {
            LaunchCheck::Free
        } else {
            LaunchCheck::Headway(available)
        }
    }

    fn movement_cost(&self, from: EndpointId, to: EndpointId) -> MovementCost {
        let d = (self.cfg.endpoints[to].position - self.cfg.endpoints[from].position).abs();
        MovementCost::for_distance(&self.cfg, d)
    }

    fn launch(&mut self, m: Movement) {
        let now = self.queue.now().seconds();
        let dir = Self::direction_of(m.from, m.to);
        let idx = self.track_index(dir);
        let cost = self.movement_cost(m.from, m.to);

        self.dock_used[m.to] += 1; // reserve the destination dock now
        let track = &mut self.tracks[idx];
        track.update_busy(now);
        track.direction = Some(dir);
        track.in_flight += 1;
        track.last_launch = now;
        self.max_in_flight = self.max_in_flight.max(self.total_in_flight());

        self.total_energy += cost.energy;
        self.movements += 1;

        let cart = &mut self.carts[m.cart];
        cart.location = CartLocation::Moving {
            from: m.from,
            to: m.to,
        };
        cart.movement = Some((m.from, m.to, m.payload));
        cart.trips += 1;

        self.queue.schedule(self.cfg.undock_time, Ev::UndockDone { cart: m.cart });
        self.record(TraceEventKind::Launch {
            cart: m.cart,
            from: m.from,
            to: m.to,
        });
    }

    fn total_in_flight(&self) -> u32 {
        self.tracks.iter().map(|t| t.in_flight).sum()
    }

    fn try_launch(&mut self) {
        let now = self.queue.now().seconds();
        let mut wakeup: Option<f64> = None;
        loop {
            let mut launched = None;
            for (i, m) in self.pending.iter().enumerate() {
                if self.dock_used[m.to] >= self.cfg.endpoints[m.to].docks {
                    continue; // destination full
                }
                match self.check_track(Self::direction_of(m.from, m.to), now) {
                    LaunchCheck::Free => {
                        launched = Some(i);
                        break;
                    }
                    LaunchCheck::Headway(at) => {
                        wakeup = Some(wakeup.map_or(at, |w: f64| w.min(at)));
                    }
                    LaunchCheck::BusyOpposite => {}
                }
            }
            match launched {
                Some(i) => {
                    let m = self.pending.remove(i).expect("index valid");
                    self.launch(m);
                    // A launch we just made imposes headway on the rest;
                    // re-scan (some may still be launchable on the other
                    // track when dual).
                }
                None => break,
            }
        }
        if let Some(at) = wakeup {
            if !self.wakeup_scheduled {
                self.wakeup_scheduled = true;
                self.queue
                    .schedule_at(Seconds::new(at), Ev::TryLaunch);
            }
        }
    }

    fn processing_time(&self) -> Seconds {
        match self.cfg.processing {
            ProcessingModel::Instant => Seconds::ZERO,
            ProcessingModel::PcieRead {
                bandwidth_bytes_per_second,
            } => Seconds::new(self.cfg.cart_capacity.as_f64() / bandwidth_bytes_per_second),
            ProcessingModel::Fixed(t) => t,
        }
    }

    fn schedule_delivery_for(&mut self, cart: CartId) {
        // Assign the next shard to this library cart, targeting the rack
        // with the most data still owed (greedy balance across racks).
        let Some(demand) = self
            .mission
            .demands
            .iter_mut()
            .filter(|d| !d.bytes_remaining.is_zero())
            .max_by_key(|d| d.bytes_remaining)
        else {
            return;
        };
        let shard = demand.bytes_remaining.min(self.cfg.cart_capacity);
        demand.bytes_remaining -= shard;
        let rack = demand.endpoint;
        self.mission.scheduled += 1;
        self.pending.push_back(Movement {
            cart,
            from: 0,
            to: rack,
            payload: shard,
        });
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::TryLaunch => {
                self.wakeup_scheduled = false;
                self.try_launch();
            }
            Ev::UndockDone { cart } => {
                let (from, _, _) = self.carts[cart].movement.expect("moving cart");
                self.dock_used[from] -= 1;
                let (f, t, _) = self.carts[cart].movement.expect("moving cart");
                let cost = self.movement_cost(f, t);
                self.queue.schedule(cost.motion_time, Ev::Arrived { cart });
                self.record(TraceEventKind::EnterTube { cart });
                self.try_launch();
            }
            Ev::Arrived { cart } => {
                self.queue.schedule(self.cfg.dock_time, Ev::DockDone { cart });
                self.record(TraceEventKind::BeginDock { cart });
            }
            Ev::DockDone { cart } => {
                let (from, to, payload) = self.carts[cart].movement.take().expect("moving cart");
                let dir = Self::direction_of(from, to);
                let idx = self.track_index(dir);
                let now = self.queue.now().seconds();
                let track = &mut self.tracks[idx];
                track.update_busy(now);
                track.in_flight -= 1;
                if track.in_flight == 0 {
                    track.direction = None;
                }
                self.carts[cart].location = CartLocation::Docked(to);
                self.record(TraceEventKind::Docked { cart, endpoint: to });
                self.sample_in_flight_failures(from, to);

                if self.cfg.endpoints[to].kind == EndpointKind::Rack {
                    self.mission.done += 1;
                    self.mission.delivered += payload;
                    if let Some(d) = self.mission.demands.iter_mut().find(|d| d.endpoint == to) {
                        d.deliveries_done += 1;
                    }
                    self.queue
                        .schedule(self.processing_time(), Ev::ProcessingDone { cart });
                } else {
                    // Returned to the library: reuse for the next shard, or
                    // check completion.
                    if self.mission.scheduled < self.mission.total_deliveries {
                        self.schedule_delivery_for(cart);
                    }
                    self.check_completion();
                }
                self.try_launch();
            }
            Ev::ProcessingDone { cart } => {
                self.record(TraceEventKind::ProcessingDone { cart });
                let CartLocation::Docked(ep) = self.carts[cart].location else {
                    unreachable!("processing cart is docked");
                };
                self.pending.push_back(Movement {
                    cart,
                    from: ep,
                    to: 0,
                    payload: Bytes::ZERO,
                });
                self.try_launch();
            }
        }
    }

    fn sample_in_flight_failures(&mut self, from: EndpointId, to: EndpointId) {
        let Some(spec) = self.cfg.reliability.clone() else {
            return;
        };
        let rng = self.reliability_rng.as_mut().expect("rng exists with spec");
        let exposure = {
            let d =
                (self.cfg.endpoints[to].position - self.cfg.endpoints[from].position).abs();
            MovementCost::for_distance(&self.cfg, d).total_time
        };
        let failed = spec
            .failure
            .sample_failures(rng, spec.ssds_per_cart, exposure);
        self.ssd_failures += u64::from(failed);
        if !spec.raid.tolerates(failed) {
            self.data_loss_events += 1;
        }
    }

    fn check_completion(&mut self) {
        if self.mission.completion_time.is_some() {
            return;
        }
        let all_home = self
            .carts
            .iter()
            .all(|c| matches!(c.location, CartLocation::Docked(0)));
        if self.mission.done >= self.mission.total_deliveries
            && all_home
            && self.pending.is_empty()
        {
            self.mission.completion_time = Some(self.queue.now().seconds());
        }
    }

    /// Simulates delivering `dataset` from the library to the first rack
    /// endpoint, returning every cart home afterwards (the paper's §V-B
    /// accounting).
    ///
    /// # Errors
    ///
    /// [`SimError::EventBudgetExhausted`] if the simulation fails to
    /// converge (defensive bound; does not occur for valid configurations).
    pub fn run_bulk_transfer(&mut self, dataset: Bytes) -> Result<BulkTransferReport, SimError> {
        let rack = self
            .cfg
            .endpoints
            .iter()
            .position(|e| e.kind == EndpointKind::Rack)
            .expect("validated config has a rack");
        self.run_multi_rack(&[(rack, dataset)])
    }

    /// Simulates serving several racks at once (§VI multi-stop): each entry
    /// is `(rack endpoint index, bytes owed to it)`. Shards are assigned
    /// greedily to the rack with the most data outstanding.
    ///
    /// # Errors
    ///
    /// - [`SimError::Config`] if any endpoint index is out of range or not
    ///   a rack;
    /// - [`SimError::EventBudgetExhausted`] as for
    ///   [`DhlSystem::run_bulk_transfer`].
    pub fn run_multi_rack(
        &mut self,
        demands: &[(EndpointId, Bytes)],
    ) -> Result<BulkTransferReport, SimError> {
        for (ep, _) in demands {
            match self.cfg.endpoints.get(*ep) {
                Some(spec) if spec.kind == EndpointKind::Rack => {}
                _ => {
                    return Err(SimError::Config(ConfigError::BadEndpoints(format!(
                        "endpoint {ep} is not a rack endpoint"
                    ))))
                }
            }
        }
        let deliveries: u64 = demands
            .iter()
            .map(|(_, bytes)| {
                if bytes.is_zero() {
                    0
                } else {
                    bytes.div_ceil(self.cfg.cart_capacity)
                }
            })
            .sum();
        self.mission = Mission {
            total_deliveries: deliveries,
            scheduled: 0,
            done: 0,
            demands: demands
                .iter()
                .map(|&(endpoint, bytes_remaining)| RackDemand {
                    endpoint,
                    bytes_remaining,
                    deliveries_done: 0,
                })
                .collect(),
            delivered: Bytes::ZERO,
            completion_time: (deliveries == 0).then_some(0.0),
        };

        // Seed: every library cart takes a shard (up to the delivery count).
        for cart in 0..self.carts.len() {
            if self.mission.scheduled < deliveries {
                self.schedule_delivery_for(cart);
            }
        }
        self.try_launch();

        while let Some((_, ev)) = self.queue.pop() {
            self.handle(ev);
            if self.queue.events_processed() > self.event_budget {
                return Err(SimError::EventBudgetExhausted {
                    events: self.queue.events_processed(),
                });
            }
        }
        self.check_completion();

        let completion = Seconds::new(self.mission.completion_time.unwrap_or(0.0));
        let average_power = if completion.seconds() > 0.0 {
            self.total_energy / completion
        } else {
            Watts::ZERO
        };
        Ok(BulkTransferReport {
            completion_time: completion,
            delivered: self.mission.delivered,
            deliveries: self.mission.done,
            deliveries_by_endpoint: self
                .mission
                .demands
                .iter()
                .map(|d| (d.endpoint, d.deliveries_done))
                .collect(),
            movements: self.movements,
            total_energy: self.total_energy,
            average_power,
            embodied_bandwidth: self.mission.delivered / completion,
            track_busy_time: self
                .tracks
                .iter()
                .map(|t| Seconds::new(t.busy_accum))
                .collect(),
            max_carts_in_flight: self.max_in_flight,
            events_processed: self.queue.events_processed(),
            ssd_failures: self.ssd_failures,
            data_loss_events: self.data_loss_events,
        })
    }
}

impl core::fmt::Debug for DhlSystem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DhlSystem")
            .field("now", &self.queue.now())
            .field("carts", &self.carts.len())
            .field("pending", &self.pending.len())
            .field("movements", &self.movements)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EndpointSpec;
    use dhl_units::Metres;

    fn run(cfg: SimConfig, pb: f64) -> BulkTransferReport {
        DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(pb))
            .unwrap()
    }

    #[test]
    fn serial_transfer_matches_analytical_doubling() {
        let report = run(SimConfig::paper_serial(), 29.0);
        assert_eq!(report.deliveries, 114);
        assert_eq!(report.movements, 228);
        assert!((report.completion_time.seconds() - 228.0 * 8.6).abs() < 1e-6);
        // Energy: 228 launches at ≈15.19 kJ (launch + drag + stabilisation).
        let per_movement = report.total_energy.value() / 228.0;
        assert!((per_movement - 15_040.0).abs() < 200.0);
        assert_eq!(report.delivered, Bytes::from_petabytes(29.0));
    }

    #[test]
    fn pipelined_fleet_beats_serial() {
        let serial = run(SimConfig::paper_serial(), 29.0);
        let pipelined = run(SimConfig::paper_default(), 29.0);
        assert!(
            pipelined.completion_time < serial.completion_time,
            "pipelined {} vs serial {}",
            pipelined.completion_time.seconds(),
            serial.completion_time.seconds()
        );
        // Same physical work, so same number of movements and energy.
        assert_eq!(pipelined.movements, serial.movements);
        assert!((pipelined.total_energy.value() - serial.total_energy.value()).abs() < 1.0);
    }

    #[test]
    fn dual_track_beats_single_track() {
        let mut cfg = SimConfig::paper_default();
        cfg.dual_track = true;
        let dual = run(cfg, 29.0);
        let single = run(SimConfig::paper_default(), 29.0);
        assert!(
            dual.completion_time < single.completion_time,
            "dual {} vs single {}",
            dual.completion_time.seconds(),
            single.completion_time.seconds()
        );
        assert_eq!(dual.track_busy_time.len(), 2);
    }

    #[test]
    fn zero_dataset_is_trivial() {
        let report = run(SimConfig::paper_default(), 0.0);
        assert_eq!(report.deliveries, 0);
        assert_eq!(report.movements, 0);
        assert_eq!(report.completion_time.seconds(), 0.0);
        assert_eq!(report.total_energy, Joules::ZERO);
    }

    #[test]
    fn partial_cart_still_takes_a_full_trip() {
        // 100 TB < one 256 TB cart: one delivery out, one return.
        let report = run(SimConfig::paper_serial(), 0.0001); // 0.1 TB
        assert_eq!(report.deliveries, 1);
        assert_eq!(report.movements, 2);
        assert!((report.completion_time.seconds() - 17.2).abs() < 1e-6);
    }

    #[test]
    fn delivered_bytes_match_dataset_exactly() {
        for pb in [0.1, 1.0, 5.3] {
            let report = run(SimConfig::paper_default(), pb);
            assert_eq!(report.delivered, Bytes::from_petabytes(pb));
        }
    }

    #[test]
    fn carts_all_end_at_library() {
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        sys.run_bulk_transfer(Bytes::from_petabytes(2.0)).unwrap();
        for cart in 0..sys.config().num_carts as usize {
            assert_eq!(sys.cart_location(cart), Some(CartLocation::Docked(0)));
        }
    }

    #[test]
    fn track_never_holds_more_than_dock_limited_carts() {
        let report = run(SimConfig::paper_default(), 29.0);
        // 4 rack docks bound the outbound pipeline depth.
        assert!(report.max_carts_in_flight <= 4);
        assert!(report.max_carts_in_flight >= 2, "pipelining should overlap carts");
    }

    #[test]
    fn processing_dwell_slows_completion_but_not_energy() {
        let mut cfg = SimConfig::paper_default();
        cfg.processing = crate::config::ProcessingModel::Fixed(Seconds::new(100.0));
        let slow = run(cfg, 2.0);
        let fast = run(SimConfig::paper_default(), 2.0);
        assert!(slow.completion_time > fast.completion_time);
        assert!((slow.total_energy.value() - fast.total_energy.value()).abs() < 1.0);
    }

    #[test]
    fn multi_stop_track_reaches_far_endpoint() {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints = vec![
            EndpointSpec {
                position: Metres::ZERO,
                docks: cfg.num_carts,
                kind: EndpointKind::Library,
            },
            EndpointSpec {
                position: Metres::new(250.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
            EndpointSpec {
                position: Metres::new(500.0),
                docks: 2,
                kind: EndpointKind::Rack,
            },
        ];
        // Deliveries go to the *first* rack (250 m): shorter hop, less time
        // than the 500 m system.
        let multi = run(cfg, 2.0);
        let single = run(SimConfig::paper_default(), 2.0);
        assert!(multi.completion_time < single.completion_time);
    }

    fn two_rack_config() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.endpoints = vec![
            EndpointSpec {
                position: Metres::ZERO,
                docks: cfg.num_carts,
                kind: EndpointKind::Library,
            },
            EndpointSpec {
                position: Metres::new(250.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
            EndpointSpec {
                position: Metres::new(500.0),
                docks: 4,
                kind: EndpointKind::Rack,
            },
        ];
        cfg
    }

    #[test]
    fn multi_rack_distributes_deliveries() {
        let mut sys = DhlSystem::new(two_rack_config()).unwrap();
        let report = sys
            .run_multi_rack(&[
                (1, Bytes::from_petabytes(2.0)),
                (2, Bytes::from_petabytes(1.0)),
            ])
            .unwrap();
        // 2 PB → 8 carts, 1 PB → 4 carts.
        assert_eq!(report.deliveries, 12);
        assert_eq!(report.movements, 24);
        let by_ep: std::collections::HashMap<usize, u64> =
            report.deliveries_by_endpoint.iter().copied().collect();
        assert_eq!(by_ep[&1], 8);
        assert_eq!(by_ep[&2], 4);
        assert_eq!(report.delivered, Bytes::from_petabytes(3.0));
    }

    #[test]
    fn multi_rack_rejects_non_rack_destinations() {
        let mut sys = DhlSystem::new(two_rack_config()).unwrap();
        assert!(sys.run_multi_rack(&[(0, Bytes::new(1))]).is_err()); // library
        assert!(sys.run_multi_rack(&[(9, Bytes::new(1))]).is_err()); // missing
    }

    #[test]
    fn multi_rack_matches_single_rack_when_one_demand() {
        let single = run(SimConfig::paper_default(), 2.0);
        let mut sys = DhlSystem::new(SimConfig::paper_default()).unwrap();
        let multi = sys
            .run_multi_rack(&[(1, Bytes::from_petabytes(2.0))])
            .unwrap();
        assert_eq!(single.completion_time, multi.completion_time);
        assert_eq!(single.movements, multi.movements);
    }

    #[test]
    fn embodied_bandwidth_is_terabytes_per_second_scale() {
        let report = run(SimConfig::paper_default(), 29.0);
        let tbps = report.embodied_bandwidth.terabytes_per_second();
        assert!(tbps > 10.0, "got {tbps}");
    }

    #[test]
    fn average_power_is_kilowatt_scale() {
        // §V-C anchors DHL average power near 1.75 kW for the serial case.
        let report = run(SimConfig::paper_serial(), 29.0);
        let kw = report.average_power.kilowatts();
        assert!((kw - 1.77).abs() < 0.1, "got {kw}");
    }
}

#[cfg(test)]
mod reliability_tests {
    use super::*;
    use crate::config::ReliabilitySpec;
    use dhl_storage::failure::{FailureModel, RaidConfig};

    #[test]
    fn typical_reliability_sees_no_losses_over_29pb() {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec::typical());
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(29.0))
            .unwrap();
        // 456 movements × 32 SSDs × ~3e-9 per-trip probability: failures
        // are vanishingly rare and RAID absorbs any that occur.
        assert_eq!(report.data_loss_events, 0);
        assert!(report.ssd_failures <= 1);
    }

    #[test]
    fn hostile_reliability_reports_losses() {
        let mut cfg = SimConfig::paper_serial();
        cfg.dock_time = Seconds::new(500_000.0); // half-AFR-year per dock
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.9),
            raid: RaidConfig::none(32),
            ssds_per_cart: 32,
            seed: 1,
        });
        let report = DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_terabytes(512.0))
            .unwrap();
        assert!(report.ssd_failures > 0);
        assert!(report.data_loss_events > 0);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut cfg = SimConfig::paper_default();
        cfg.dock_time = Seconds::new(10_000.0);
        cfg.reliability = Some(ReliabilitySpec {
            failure: FailureModel::new(0.5),
            raid: RaidConfig::new(28, 4).unwrap(),
            ssds_per_cart: 32,
            seed: 7,
        });
        let run = |cfg: SimConfig| {
            DhlSystem::new(cfg)
                .unwrap()
                .run_bulk_transfer(Bytes::from_petabytes(1.0))
                .unwrap()
        };
        let a = run(cfg.clone());
        let b = run(cfg.clone());
        assert_eq!(a.ssd_failures, b.ssd_failures);
        assert_eq!(a.data_loss_events, b.data_loss_events);
        let mut other = cfg;
        other.reliability.as_mut().unwrap().seed = 8;
        let c = run(other);
        // Different seed, (almost surely) different sample.
        assert!(c.ssd_failures != a.ssd_failures || c.data_loss_events == a.data_loss_events);
    }

    #[test]
    fn no_reliability_means_no_failures() {
        let report = DhlSystem::new(SimConfig::paper_default())
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(5.0))
            .unwrap();
        assert_eq!(report.ssd_failures, 0);
        assert_eq!(report.data_loss_events, 0);
    }
}
