//! Checkpoint/restore for crash-recoverable simulations.
//!
//! A [`Checkpoint`] is a point-in-time capture of everything a
//! [`DhlSystem`] needs to continue a run as if nothing happened: the
//! simulation clock, the pending event queue, every cart and delivery state
//! machine, wear counters, the RNG streams, the trace buffer, and the
//! deterministic metrics state. Resuming from a checkpoint and running to
//! completion produces **bit-identical** reports, traces, and
//! (deterministic) metrics to the uninterrupted run — the property the
//! replica engine's retry-with-resume and the kill-and-resume CI job build
//! on.
//!
//! Checkpoints serialize to JSON through [`dhl_obs::json`], the workspace's
//! zero-dependency codec. Exactness matters: `u64` counters ride the
//! codec's lossless `UInt` path, and `f64` times rely on Rust's
//! shortest-round-trip `Display` plus exact `str::parse::<f64>`, so a
//! decode(encode(x)) trip reproduces every bit.
//!
//! The configuration itself is *not* serialized — checkpoints are state,
//! not provenance. [`DhlSystem::resume`] takes the configuration separately
//! and refuses (with [`SimError::CheckpointMismatch`]) to marry a
//! checkpoint to a configuration other than the one it was captured under,
//! via an FNV-1a fingerprint over the configuration's debug form.

use std::collections::BTreeMap;

use dhl_obs::json::{self, JsonError, JsonValue};
use dhl_obs::{Histogram, MetricsRegistry, Stopwatch};
use dhl_rng::DeterministicRng;
use dhl_storage::{CartWear, DockingConnector};
use dhl_units::{Bytes, Joules, MetresPerSecond, Seconds};

use crate::config::SimConfig;
use crate::engine::EventQueue;
use crate::movement::MovementCost;
use crate::system::{
    ActiveMovement, CartLocation, DhlSystem, Direction, EndpointId, Ev, Mission, Movement,
    PendingVerify, RackDemand, SimError, TrackState,
};
use crate::trace::{Trace, TraceEvent, TraceEventKind, TraceSink};

/// Serialization format version; bumped when the JSON layout changes.
const FORMAT_VERSION: u64 = 2;

/// Every metric name the simulator records, so restoring a serialized
/// checkpoint can hand the registry the `&'static str` keys it requires
/// without leaking in the common case.
const METRIC_NAMES: &[&str] = &[
    "sim.events",
    "sim.completion_s",
    "sim.wall_time_s",
    "sim.sim_seconds_per_wall_second",
    "sim.events_per_wall_second",
    "sim.carts_launched",
    "sim.transit_s",
    "sim.queue_depth",
    "sim.deliveries",
    "sim.ssd_failures",
    "sim.data_loss_events",
    "sim.delivery_failures",
    "sim.redeliveries",
    "sim.cart_stalls",
    "sim.connector_replacements",
    "sim.repressurisations",
    "sim.dock_controller_crashes",
    "sim.dock_recovery_s",
    "sim.shards_scanned",
    "sim.verify_s",
    "sim.deliveries_verified",
    "sim.shards_corrupted",
    "sim.shards_reconstructed",
    "sim.reconstruction_s",
    "sim.deliveries_reshipped",
    "sim.events_clamped",
    "engine.events_processed",
];

fn intern_metric(name: &str) -> &'static str {
    METRIC_NAMES
        .iter()
        .copied()
        .find(|n| *n == name)
        .unwrap_or_else(|| Box::leak(name.to_owned().into_boxed_str()))
}

/// FNV-1a over the configuration's debug representation: stable across
/// processes (unlike `DefaultHasher`) and sensitive to every field the
/// simulator reads, since they all appear in `Debug` output.
#[must_use]
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    let repr = format!("{cfg:?}");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in repr.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Portable per-cart state. Connector and wear objects are reduced to the
/// counters that define them — `resume` rebuilds the live objects from the
/// configuration plus these counters, which is exact because
/// [`DockingConnector::mate`] and [`CartWear::record_write`] are pure
/// accumulations.
#[derive(Clone, PartialEq, Debug)]
struct CartState {
    location: CartLocation,
    movement: Option<ActiveMovement>,
    trips: u64,
    connector_cycles: Option<u32>,
    wear_written: Option<u64>,
    matings: u32,
    verify: Option<PendingVerify>,
}

#[derive(Clone, PartialEq, Debug)]
struct TraceState {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

#[derive(Clone, PartialEq, Debug)]
struct HistogramState {
    count: u64,
    sum: f64,
    /// Raw minimum; `+∞` when the histogram is empty (encoded as `null`).
    min: f64,
    /// Raw maximum; `-∞` when the histogram is empty (encoded as `null`).
    max: f64,
    buckets: Vec<(u32, u64)>,
}

#[derive(Clone, PartialEq, Debug)]
struct MetricsState {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistogramState)>,
}

/// Fault-injection and integrity accounting captured mid-run.
#[derive(Clone, PartialEq, Debug, Default)]
struct Counters {
    ssd_failures: u64,
    data_loss_events: u64,
    redeliveries: u64,
    retry_time_s: f64,
    cart_stalls: u64,
    connector_replacements: u64,
    repressurisations: u64,
    dock_crashes: u64,
    dock_recovery_time_s: f64,
    dock_downtime: Vec<f64>,
    shards_scanned: u64,
    shards_corrupted: u64,
    shards_reconstructed: u64,
    deliveries_verified: u64,
    deliveries_reshipped: u64,
    verification_time_s: f64,
    reconstruction_time_s: f64,
    verification_energy_j: f64,
}

/// A point-in-time capture of a running [`DhlSystem`].
///
/// Obtained from [`DhlSystem::checkpoint`]; turned back into a live system
/// by [`DhlSystem::resume`]. Serializes losslessly to JSON via
/// [`Checkpoint::to_json`] / [`Checkpoint::from_json`].
#[derive(Clone, PartialEq, Debug)]
pub struct Checkpoint {
    fingerprint: u64,
    now: f64,
    next_seq: u64,
    events_processed: u64,
    events_clamped: u64,
    events_at_mission_start: u64,
    queue: Vec<(f64, u64, Ev)>,
    carts: Vec<CartState>,
    dock_used: Vec<u32>,
    tracks: Vec<TrackState>,
    pending: Vec<Movement>,
    redelivery_queue: Vec<(EndpointId, Bytes, u32)>,
    mission: Mission,
    wakeup_scheduled: bool,
    total_energy_j: f64,
    movements: u64,
    max_in_flight: u32,
    event_budget: u64,
    trace: Option<TraceState>,
    reliability_rng: Option<[u64; 4]>,
    fault_rng: Option<[u64; 4]>,
    integrity_rng: Option<[u64; 4]>,
    counters: Counters,
    abandoned: Option<(EndpointId, u32)>,
    watch_running: bool,
    metrics: Option<MetricsState>,
}

impl Checkpoint {
    /// Simulation time at which this checkpoint was captured.
    #[must_use]
    pub fn time(&self) -> Seconds {
        Seconds::new(self.now)
    }

    /// Events the engine had processed at capture time.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Fingerprint of the configuration this checkpoint belongs to.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl DhlSystem {
    /// Captures the complete simulation state at the current instant.
    ///
    /// The capture is non-destructive: the system keeps running
    /// afterwards, and resuming the checkpoint elsewhere replays the
    /// remainder of the run bit-identically.
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            fingerprint: config_fingerprint(&self.cfg),
            now: self.queue.now().seconds(),
            next_seq: self.queue.next_seq(),
            events_processed: self.queue.events_processed(),
            events_clamped: self.queue.clamped(),
            events_at_mission_start: self.events_at_mission_start,
            queue: self
                .queue
                .pending_entries()
                .into_iter()
                .map(|(t, s, e)| (t.seconds(), s, *e))
                .collect(),
            carts: (0..self.carts.len())
                .map(|i| CartState {
                    location: self.carts.locations[i],
                    movement: self.carts.movements[i],
                    trips: self.carts.trips[i],
                    connector_cycles: self.carts.connectors[i]
                        .as_ref()
                        .map(DockingConnector::cycles_used),
                    wear_written: self.carts.wear[i].as_ref().map(|w| w.written().as_u64()),
                    matings: self.carts.matings[i],
                    verify: self.carts.verify[i],
                })
                .collect(),
            dock_used: self.dock_used.clone(),
            tracks: self.tracks.clone(),
            pending: self.pending.iter().copied().collect(),
            redelivery_queue: self.redelivery_queue.iter().copied().collect(),
            mission: self.mission.clone(),
            wakeup_scheduled: self.wakeup_scheduled,
            total_energy_j: self.total_energy.value(),
            movements: self.movements,
            max_in_flight: self.max_in_flight,
            event_budget: self.event_budget,
            trace: match &self.trace {
                TraceSink::Disabled => None,
                TraceSink::Buffered(t) => Some(TraceState {
                    events: t.events().to_vec(),
                    capacity: t.capacity(),
                    dropped: t.dropped(),
                }),
            },
            reliability_rng: self.reliability_rng.as_ref().map(DeterministicRng::state),
            fault_rng: self.fault_rng.as_ref().map(DeterministicRng::state),
            integrity_rng: self.integrity_rng.as_ref().map(DeterministicRng::state),
            counters: Counters {
                ssd_failures: self.ssd_failures,
                data_loss_events: self.data_loss_events,
                redeliveries: self.redeliveries,
                retry_time_s: self.retry_time_s,
                cart_stalls: self.cart_stalls,
                connector_replacements: self.connector_replacements,
                repressurisations: self.repressurisations,
                dock_crashes: self.dock_crashes,
                dock_recovery_time_s: self.dock_recovery_time_s,
                dock_downtime: self.dock_downtime.clone(),
                shards_scanned: self.shards_scanned,
                shards_corrupted: self.shards_corrupted,
                shards_reconstructed: self.shards_reconstructed,
                deliveries_verified: self.deliveries_verified,
                deliveries_reshipped: self.deliveries_reshipped,
                verification_time_s: self.verification_time_s,
                reconstruction_time_s: self.reconstruction_time_s,
                verification_energy_j: self.verification_energy.value(),
            },
            abandoned: self.abandoned,
            watch_running: self.run_watch.is_some(),
            metrics: if self.metrics.is_enabled() {
                Some(MetricsState {
                    counters: self
                        .metrics
                        .counters()
                        .map(|(n, v)| (n.to_string(), v))
                        .collect(),
                    gauges: self
                        .metrics
                        .gauges()
                        .map(|(n, v)| (n.to_string(), v))
                        .collect(),
                    histograms: self
                        .metrics
                        .histograms()
                        .map(|(n, h)| {
                            (
                                n.to_string(),
                                HistogramState {
                                    count: h.count(),
                                    sum: h.sum(),
                                    min: h.raw_min(),
                                    max: h.raw_max(),
                                    buckets: h.sparse_buckets(),
                                },
                            )
                        })
                        .collect(),
                })
            } else {
                None
            },
        }
    }

    /// Rebuilds a live system from a checkpoint, ready to continue the run.
    ///
    /// # Errors
    ///
    /// - [`SimError::Config`] if `cfg` fails validation.
    /// - [`SimError::CheckpointMismatch`] if `cfg` is not the configuration
    ///   the checkpoint was captured under.
    pub fn resume(cfg: SimConfig, cp: &Checkpoint) -> Result<Self, SimError> {
        let mut sys = Self::new(cfg)?;
        let actual = config_fingerprint(&sys.cfg);
        if actual != cp.fingerprint {
            return Err(SimError::CheckpointMismatch {
                expected: cp.fingerprint,
                actual,
            });
        }
        sys.queue = EventQueue::from_entries(
            Seconds::new(cp.now),
            cp.next_seq,
            cp.events_processed,
            cp.queue.iter().map(|&(t, s, e)| (Seconds::new(t), s, e)),
        );
        sys.queue.set_clamped(cp.events_clamped);
        let connector_kind = sys
            .cfg
            .faults
            .as_ref()
            .and_then(|f| f.docking_connector.as_ref())
            .map(|c| c.kind);
        let endurance = sys.cfg.integrity.as_ref().map(|i| i.endurance.clone());
        let cart_capacity = sys.cfg.cart_capacity;
        let generation = sys.carts.begin_rebuild();
        for c in &cp.carts {
            let connector = match (connector_kind, c.connector_cycles) {
                (Some(kind), Some(cycles)) => {
                    let mut conn = DockingConnector::new(kind);
                    for _ in 0..cycles {
                        let _ = conn.mate();
                    }
                    Some(conn)
                }
                _ => None,
            };
            let wear = match (&endurance, c.wear_written) {
                (Some(endurance), Some(written)) => {
                    let mut wear = CartWear::new(endurance.clone(), cart_capacity);
                    wear.record_write(Bytes::new(written));
                    Some(wear)
                }
                _ => None,
            };
            sys.carts.push_cart(
                generation, c.location, c.movement, c.trips, connector, wear, c.matings, c.verify,
            );
        }
        sys.dock_used = cp.dock_used.clone();
        sys.tracks = cp.tracks.clone();
        sys.pending = cp.pending.iter().copied().collect();
        sys.redelivery_queue = cp.redelivery_queue.iter().copied().collect();
        sys.mission = cp.mission.clone();
        sys.wakeup_scheduled = cp.wakeup_scheduled;
        sys.total_energy = Joules::new(cp.total_energy_j);
        sys.movements = cp.movements;
        sys.max_in_flight = cp.max_in_flight;
        sys.event_budget = cp.event_budget;
        sys.trace = match &cp.trace {
            None => TraceSink::Disabled,
            Some(t) => {
                TraceSink::Buffered(Trace::from_parts(t.events.clone(), t.capacity, t.dropped))
            }
        };
        sys.reliability_rng = cp.reliability_rng.map(DeterministicRng::from_state);
        sys.fault_rng = cp.fault_rng.map(DeterministicRng::from_state);
        sys.integrity_rng = cp.integrity_rng.map(DeterministicRng::from_state);
        sys.ssd_failures = cp.counters.ssd_failures;
        sys.data_loss_events = cp.counters.data_loss_events;
        sys.redeliveries = cp.counters.redeliveries;
        sys.retry_time_s = cp.counters.retry_time_s;
        sys.cart_stalls = cp.counters.cart_stalls;
        sys.connector_replacements = cp.counters.connector_replacements;
        sys.repressurisations = cp.counters.repressurisations;
        sys.dock_crashes = cp.counters.dock_crashes;
        sys.dock_recovery_time_s = cp.counters.dock_recovery_time_s;
        sys.dock_downtime = cp.counters.dock_downtime.clone();
        sys.shards_scanned = cp.counters.shards_scanned;
        sys.shards_corrupted = cp.counters.shards_corrupted;
        sys.shards_reconstructed = cp.counters.shards_reconstructed;
        sys.deliveries_verified = cp.counters.deliveries_verified;
        sys.deliveries_reshipped = cp.counters.deliveries_reshipped;
        sys.verification_time_s = cp.counters.verification_time_s;
        sys.reconstruction_time_s = cp.counters.reconstruction_time_s;
        sys.verification_energy = Joules::new(cp.counters.verification_energy_j);
        sys.abandoned = cp.abandoned;
        sys.events_at_mission_start = cp.events_at_mission_start;
        sys.run_watch = cp.watch_running.then(Stopwatch::start);
        sys.metrics = match &cp.metrics {
            None => MetricsRegistry::disabled(),
            Some(m) => {
                let mut reg = MetricsRegistry::enabled();
                for (name, value) in &m.counters {
                    reg.set_counter(intern_metric(name), *value);
                }
                for (name, value) in &m.gauges {
                    reg.set_gauge(intern_metric(name), *value);
                }
                for (name, h) in &m.histograms {
                    reg.restore_histogram(
                        intern_metric(name),
                        Histogram::from_parts(h.count, h.sum, h.min, h.max, &h.buckets),
                    );
                }
                reg
            }
        };
        // The restored registry issued no ids: re-intern the handle bundle
        // so hot-path recording resumes against valid slots.
        sys.handles = crate::metrics::SimMetrics::register(&mut sys.metrics);
        Ok(sys)
    }
}

/// Why a serialized checkpoint failed to decode.
#[derive(Debug)]
pub enum CheckpointError {
    /// The JSON text itself was malformed.
    Json(JsonError),
    /// The JSON was well-formed but is not a checkpoint this version reads.
    Shape(String),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "invalid checkpoint JSON: {e}"),
            Self::Shape(msg) => write!(f, "invalid checkpoint structure: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

fn bad(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Shape(msg.into())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn uint(v: u64) -> JsonValue {
    JsonValue::UInt(v)
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

/// Non-finite sentinels (empty-histogram min/max) encode as `null`; the
/// field-specific decoders reinstate the correct infinity.
fn num_or_null(v: f64) -> JsonValue {
    if v.is_finite() {
        num(v)
    } else {
        JsonValue::Null
    }
}

fn string(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn opt<T>(v: Option<T>, f: impl FnOnce(T) -> JsonValue) -> JsonValue {
    v.map_or(JsonValue::Null, f)
}

fn ev_to_json(ev: Ev) -> JsonValue {
    let (tag, cart) = match ev {
        Ev::TryLaunch => ("try_launch", None),
        Ev::UndockDone { cart } => ("undock_done", Some(cart)),
        Ev::Arrived { cart } => ("arrived", Some(cart)),
        Ev::DockDone { cart } => ("dock_done", Some(cart)),
        Ev::VerifyDone { cart } => ("verify_done", Some(cart)),
        Ev::ProcessingDone { cart } => ("processing_done", Some(cart)),
    };
    match cart {
        None => obj(vec![("t", string(tag))]),
        Some(cart) => obj(vec![("t", string(tag)), ("cart", uint(cart as u64))]),
    }
}

fn location_to_json(loc: CartLocation) -> JsonValue {
    match loc {
        CartLocation::Docked(ep) => {
            obj(vec![("t", string("docked")), ("endpoint", uint(ep as u64))])
        }
        CartLocation::Moving { from, to } => obj(vec![
            ("t", string("moving")),
            ("from", uint(from as u64)),
            ("to", uint(to as u64)),
        ]),
    }
}

fn cost_to_json(cost: MovementCost) -> JsonValue {
    obj(vec![
        ("speed", num(cost.speed.value())),
        ("total_time", num(cost.total_time.seconds())),
        ("motion_time", num(cost.motion_time.seconds())),
        ("energy", num(cost.energy.value())),
    ])
}

fn active_movement_to_json(m: ActiveMovement) -> JsonValue {
    obj(vec![
        ("from", uint(m.from as u64)),
        ("to", uint(m.to as u64)),
        ("payload", uint(m.payload.as_u64())),
        ("attempt", uint(u64::from(m.attempt))),
        ("cost", cost_to_json(m.cost)),
        ("stalled", JsonValue::Bool(m.stalled)),
    ])
}

fn movement_to_json(m: Movement) -> JsonValue {
    obj(vec![
        ("cart", uint(m.cart as u64)),
        ("from", uint(m.from as u64)),
        ("to", uint(m.to as u64)),
        ("payload", uint(m.payload.as_u64())),
        ("attempt", uint(u64::from(m.attempt))),
    ])
}

fn verify_to_json(v: PendingVerify) -> JsonValue {
    obj(vec![
        ("to", uint(v.to as u64)),
        ("payload", uint(v.payload.as_u64())),
        ("attempt", uint(u64::from(v.attempt))),
        ("trip_time", num(v.trip_time.seconds())),
        ("shards", uint(v.shards)),
    ])
}

fn track_to_json(t: &TrackState) -> JsonValue {
    obj(vec![
        (
            "direction",
            opt(t.direction, |d| {
                string(match d {
                    Direction::Outbound => "out",
                    Direction::Inbound => "in",
                })
            }),
        ),
        ("in_flight", uint(u64::from(t.in_flight))),
        ("last_launch", num(t.last_launch)),
        ("busy_accum", num(t.busy_accum)),
        ("last_update", num(t.last_update)),
        ("blocked_by", opt(t.blocked_by, |c| uint(c as u64))),
        ("blocked_since", num(t.blocked_since)),
        ("downtime_accum", num(t.downtime_accum)),
        ("degraded_until", num(t.degraded_until)),
    ])
}

fn mission_to_json(m: &Mission) -> JsonValue {
    obj(vec![
        ("total_deliveries", uint(m.total_deliveries)),
        ("scheduled", uint(m.scheduled)),
        ("done", uint(m.done)),
        (
            "demands",
            JsonValue::Array(
                m.demands
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("endpoint", uint(d.endpoint as u64)),
                            ("bytes_remaining", uint(d.bytes_remaining.as_u64())),
                            ("deliveries_done", uint(d.deliveries_done)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("delivered", uint(m.delivered.as_u64())),
        ("gross_delivered", uint(m.gross_delivered.as_u64())),
        ("completion_time", opt(m.completion_time, num)),
    ])
}

fn trace_kind_to_json(kind: TraceEventKind) -> JsonValue {
    match kind {
        TraceEventKind::Launch { cart, from, to } => obj(vec![
            ("t", string("launch")),
            ("cart", uint(cart as u64)),
            ("from", uint(from as u64)),
            ("to", uint(to as u64)),
        ]),
        TraceEventKind::EnterTube { cart } => obj(vec![
            ("t", string("enter_tube")),
            ("cart", uint(cart as u64)),
        ]),
        TraceEventKind::BeginDock { cart } => obj(vec![
            ("t", string("begin_dock")),
            ("cart", uint(cart as u64)),
        ]),
        TraceEventKind::Docked { cart, endpoint } => obj(vec![
            ("t", string("docked")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
        ]),
        TraceEventKind::ProcessingDone { cart } => obj(vec![
            ("t", string("processing_done")),
            ("cart", uint(cart as u64)),
        ]),
        TraceEventKind::DeliveryFailed {
            cart,
            endpoint,
            attempt,
        } => obj(vec![
            ("t", string("delivery_failed")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
            ("attempt", uint(u64::from(attempt))),
        ]),
        TraceEventKind::VerifyStarted {
            cart,
            endpoint,
            shards,
        } => obj(vec![
            ("t", string("verify_started")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
            ("shards", uint(shards)),
        ]),
        TraceEventKind::PayloadVerified {
            cart,
            endpoint,
            shards,
        } => obj(vec![
            ("t", string("payload_verified")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
            ("shards", uint(shards)),
        ]),
        TraceEventKind::PayloadCorrupted {
            cart,
            endpoint,
            corrupted,
            attempt,
        } => obj(vec![
            ("t", string("payload_corrupted")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
            ("corrupted", uint(corrupted)),
            ("attempt", uint(u64::from(attempt))),
        ]),
        TraceEventKind::ShardsReconstructed { cart, shards } => obj(vec![
            ("t", string("shards_reconstructed")),
            ("cart", uint(cart as u64)),
            ("shards", uint(shards)),
        ]),
        TraceEventKind::CartStalled { cart, track } => obj(vec![
            ("t", string("cart_stalled")),
            ("cart", uint(cart as u64)),
            ("track", uint(track as u64)),
        ]),
        TraceEventKind::DockControllerCrashed { cart, endpoint } => obj(vec![
            ("t", string("dock_controller_crashed")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
        ]),
        TraceEventKind::DockControllerRecovered {
            cart,
            endpoint,
            downtime,
        } => obj(vec![
            ("t", string("dock_controller_recovered")),
            ("cart", uint(cart as u64)),
            ("endpoint", uint(endpoint as u64)),
            ("downtime", num(downtime.seconds())),
        ]),
        TraceEventKind::TrackRestored { track } => obj(vec![
            ("t", string("track_restored")),
            ("track", uint(track as u64)),
        ]),
    }
}

fn rng_to_json(state: [u64; 4]) -> JsonValue {
    JsonValue::Array(state.iter().map(|w| uint(*w)).collect())
}

impl Checkpoint {
    /// Serializes the checkpoint to a deterministic JSON string.
    ///
    /// Keys are emitted in sorted order and every number takes the codec's
    /// lossless path, so equal checkpoints produce byte-equal JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let metrics = self.metrics.as_ref().map(|m| {
            obj(vec![
                (
                    "counters",
                    JsonValue::Object(
                        m.counters
                            .iter()
                            .map(|(n, v)| (n.clone(), uint(*v)))
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    JsonValue::Object(m.gauges.iter().map(|(n, v)| (n.clone(), num(*v))).collect()),
                ),
                (
                    "histograms",
                    JsonValue::Object(
                        m.histograms
                            .iter()
                            .map(|(n, h)| {
                                (
                                    n.clone(),
                                    obj(vec![
                                        ("count", uint(h.count)),
                                        ("sum", num(h.sum)),
                                        ("min", num_or_null(h.min)),
                                        ("max", num_or_null(h.max)),
                                        (
                                            "buckets",
                                            JsonValue::Array(
                                                h.buckets
                                                    .iter()
                                                    .map(|(b, c)| {
                                                        JsonValue::Array(vec![
                                                            uint(u64::from(*b)),
                                                            uint(*c),
                                                        ])
                                                    })
                                                    .collect(),
                                            ),
                                        ),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
            ])
        });
        let counters = obj(vec![
            ("ssd_failures", uint(self.counters.ssd_failures)),
            ("data_loss_events", uint(self.counters.data_loss_events)),
            ("redeliveries", uint(self.counters.redeliveries)),
            ("retry_time_s", num(self.counters.retry_time_s)),
            ("cart_stalls", uint(self.counters.cart_stalls)),
            (
                "connector_replacements",
                uint(self.counters.connector_replacements),
            ),
            ("repressurisations", uint(self.counters.repressurisations)),
            ("dock_crashes", uint(self.counters.dock_crashes)),
            (
                "dock_recovery_time_s",
                num(self.counters.dock_recovery_time_s),
            ),
            (
                "dock_downtime",
                JsonValue::Array(
                    self.counters
                        .dock_downtime
                        .iter()
                        .map(|s| num(*s))
                        .collect(),
                ),
            ),
            ("shards_scanned", uint(self.counters.shards_scanned)),
            ("shards_corrupted", uint(self.counters.shards_corrupted)),
            (
                "shards_reconstructed",
                uint(self.counters.shards_reconstructed),
            ),
            (
                "deliveries_verified",
                uint(self.counters.deliveries_verified),
            ),
            (
                "deliveries_reshipped",
                uint(self.counters.deliveries_reshipped),
            ),
            (
                "verification_time_s",
                num(self.counters.verification_time_s),
            ),
            (
                "reconstruction_time_s",
                num(self.counters.reconstruction_time_s),
            ),
            (
                "verification_energy_j",
                num(self.counters.verification_energy_j),
            ),
        ]);
        obj(vec![
            ("version", uint(FORMAT_VERSION)),
            ("fingerprint", uint(self.fingerprint)),
            ("now", num(self.now)),
            ("next_seq", uint(self.next_seq)),
            ("events_processed", uint(self.events_processed)),
            ("events_clamped", uint(self.events_clamped)),
            (
                "events_at_mission_start",
                uint(self.events_at_mission_start),
            ),
            (
                "queue",
                JsonValue::Array(
                    self.queue
                        .iter()
                        .map(|&(t, s, e)| JsonValue::Array(vec![num(t), uint(s), ev_to_json(e)]))
                        .collect(),
                ),
            ),
            (
                "carts",
                JsonValue::Array(
                    self.carts
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("location", location_to_json(c.location)),
                                ("movement", opt(c.movement, active_movement_to_json)),
                                ("trips", uint(c.trips)),
                                (
                                    "connector_cycles",
                                    opt(c.connector_cycles, |n| uint(u64::from(n))),
                                ),
                                ("wear_written", opt(c.wear_written, uint)),
                                ("matings", uint(u64::from(c.matings))),
                                ("verify", opt(c.verify, verify_to_json)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "dock_used",
                JsonValue::Array(self.dock_used.iter().map(|n| uint(u64::from(*n))).collect()),
            ),
            (
                "tracks",
                JsonValue::Array(self.tracks.iter().map(track_to_json).collect()),
            ),
            (
                "pending",
                JsonValue::Array(self.pending.iter().map(|m| movement_to_json(*m)).collect()),
            ),
            (
                "redelivery_queue",
                JsonValue::Array(
                    self.redelivery_queue
                        .iter()
                        .map(|&(ep, bytes, attempt)| {
                            obj(vec![
                                ("endpoint", uint(ep as u64)),
                                ("payload", uint(bytes.as_u64())),
                                ("attempt", uint(u64::from(attempt))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("mission", mission_to_json(&self.mission)),
            ("wakeup_scheduled", JsonValue::Bool(self.wakeup_scheduled)),
            ("total_energy_j", num(self.total_energy_j)),
            ("movements", uint(self.movements)),
            ("max_in_flight", uint(u64::from(self.max_in_flight))),
            ("event_budget", uint(self.event_budget)),
            (
                "trace",
                opt(self.trace.as_ref(), |t| {
                    obj(vec![
                        (
                            "events",
                            JsonValue::Array(
                                t.events
                                    .iter()
                                    .map(|e| {
                                        obj(vec![
                                            ("time", num(e.time.seconds())),
                                            ("kind", trace_kind_to_json(e.kind)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("capacity", uint(t.capacity as u64)),
                        ("dropped", uint(t.dropped)),
                    ])
                }),
            ),
            ("reliability_rng", opt(self.reliability_rng, rng_to_json)),
            ("fault_rng", opt(self.fault_rng, rng_to_json)),
            ("integrity_rng", opt(self.integrity_rng, rng_to_json)),
            ("counters", counters),
            (
                "abandoned",
                opt(self.abandoned, |(ep, attempts)| {
                    obj(vec![
                        ("endpoint", uint(ep as u64)),
                        ("attempts", uint(u64::from(attempts))),
                    ])
                }),
            ),
            ("watch_running", JsonValue::Bool(self.watch_running)),
            ("metrics", metrics.unwrap_or(JsonValue::Null)),
        ])
        .to_json_string()
    }

    /// Parses a checkpoint previously produced by [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Json`] on malformed JSON,
    /// [`CheckpointError::Shape`] when the structure is not a
    /// version-compatible checkpoint.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let root = json::parse(text)?;
        let version = req_u64(&root, "version")?;
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected {FORMAT_VERSION})"
            )));
        }
        Ok(Self {
            fingerprint: req_u64(&root, "fingerprint")?,
            now: req_f64(&root, "now")?,
            next_seq: req_u64(&root, "next_seq")?,
            events_processed: req_u64(&root, "events_processed")?,
            events_clamped: req_u64(&root, "events_clamped")?,
            events_at_mission_start: req_u64(&root, "events_at_mission_start")?,
            queue: req_array(&root, "queue")?
                .iter()
                .map(queue_entry_from_json)
                .collect::<Result<_, _>>()?,
            carts: req_array(&root, "carts")?
                .iter()
                .map(cart_from_json)
                .collect::<Result<_, _>>()?,
            dock_used: req_array(&root, "dock_used")?
                .iter()
                .map(|v| value_u32(v, "dock_used entry"))
                .collect::<Result<_, _>>()?,
            tracks: req_array(&root, "tracks")?
                .iter()
                .map(track_from_json)
                .collect::<Result<_, _>>()?,
            pending: req_array(&root, "pending")?
                .iter()
                .map(movement_from_json)
                .collect::<Result<_, _>>()?,
            redelivery_queue: req_array(&root, "redelivery_queue")?
                .iter()
                .map(|v| {
                    Ok((
                        req_usize(v, "endpoint")?,
                        Bytes::new(req_u64(v, "payload")?),
                        req_u32(v, "attempt")?,
                    ))
                })
                .collect::<Result<_, CheckpointError>>()?,
            mission: mission_from_json(req(&root, "mission")?)?,
            wakeup_scheduled: req_bool(&root, "wakeup_scheduled")?,
            total_energy_j: req_f64(&root, "total_energy_j")?,
            movements: req_u64(&root, "movements")?,
            max_in_flight: req_u32(&root, "max_in_flight")?,
            event_budget: req_u64(&root, "event_budget")?,
            trace: match req(&root, "trace")? {
                JsonValue::Null => None,
                t => Some(TraceState {
                    events: req_array(t, "events")?
                        .iter()
                        .map(trace_event_from_json)
                        .collect::<Result<_, _>>()?,
                    capacity: req_usize(t, "capacity")?,
                    dropped: req_u64(t, "dropped")?,
                }),
            },
            reliability_rng: rng_from_json(req(&root, "reliability_rng")?)?,
            fault_rng: rng_from_json(req(&root, "fault_rng")?)?,
            integrity_rng: rng_from_json(req(&root, "integrity_rng")?)?,
            counters: counters_from_json(req(&root, "counters")?)?,
            abandoned: match req(&root, "abandoned")? {
                JsonValue::Null => None,
                a => Some((req_usize(a, "endpoint")?, req_u32(a, "attempts")?)),
            },
            watch_running: req_bool(&root, "watch_running")?,
            metrics: match req(&root, "metrics")? {
                JsonValue::Null => None,
                m => Some(metrics_from_json(m)?),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn req<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, CheckpointError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field `{key}`")))
}

fn value_u64(v: &JsonValue, what: &str) -> Result<u64, CheckpointError> {
    v.as_u64()
        .ok_or_else(|| bad(format!("{what} is not a u64")))
}

fn value_f64(v: &JsonValue, what: &str) -> Result<f64, CheckpointError> {
    v.as_f64()
        .ok_or_else(|| bad(format!("{what} is not a number")))
}

fn value_u32(v: &JsonValue, what: &str) -> Result<u32, CheckpointError> {
    u32::try_from(value_u64(v, what)?).map_err(|_| bad(format!("{what} overflows u32")))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, CheckpointError> {
    value_u64(req(v, key)?, key)
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, CheckpointError> {
    value_f64(req(v, key)?, key)
}

fn req_u32(v: &JsonValue, key: &str) -> Result<u32, CheckpointError> {
    value_u32(req(v, key)?, key)
}

fn req_usize(v: &JsonValue, key: &str) -> Result<usize, CheckpointError> {
    usize::try_from(req_u64(v, key)?).map_err(|_| bad(format!("`{key}` overflows usize")))
}

fn req_bool(v: &JsonValue, key: &str) -> Result<bool, CheckpointError> {
    match req(v, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(bad(format!("`{key}` is not a boolean"))),
    }
}

fn req_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], CheckpointError> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| bad(format!("`{key}` is not an array")))
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, CheckpointError> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| bad(format!("`{key}` is not a string")))
}

fn opt_f64(v: &JsonValue, key: &str) -> Result<Option<f64>, CheckpointError> {
    match req(v, key)? {
        JsonValue::Null => Ok(None),
        n => Ok(Some(value_f64(n, key)?)),
    }
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, CheckpointError> {
    match req(v, key)? {
        JsonValue::Null => Ok(None),
        n => Ok(Some(value_u64(n, key)?)),
    }
}

fn ev_from_json(v: &JsonValue) -> Result<Ev, CheckpointError> {
    let tag = req_str(v, "t")?;
    if tag == "try_launch" {
        return Ok(Ev::TryLaunch);
    }
    let cart = req_usize(v, "cart")?;
    match tag {
        "undock_done" => Ok(Ev::UndockDone { cart }),
        "arrived" => Ok(Ev::Arrived { cart }),
        "dock_done" => Ok(Ev::DockDone { cart }),
        "verify_done" => Ok(Ev::VerifyDone { cart }),
        "processing_done" => Ok(Ev::ProcessingDone { cart }),
        other => Err(bad(format!("unknown event tag `{other}`"))),
    }
}

fn queue_entry_from_json(v: &JsonValue) -> Result<(f64, u64, Ev), CheckpointError> {
    let entry = v
        .as_array()
        .ok_or_else(|| bad("queue entry is not an array"))?;
    if entry.len() != 3 {
        return Err(bad("queue entry is not a [time, seq, event] triple"));
    }
    Ok((
        value_f64(&entry[0], "queue entry time")?,
        value_u64(&entry[1], "queue entry seq")?,
        ev_from_json(&entry[2])?,
    ))
}

fn location_from_json(v: &JsonValue) -> Result<CartLocation, CheckpointError> {
    match req_str(v, "t")? {
        "docked" => Ok(CartLocation::Docked(req_usize(v, "endpoint")?)),
        "moving" => Ok(CartLocation::Moving {
            from: req_usize(v, "from")?,
            to: req_usize(v, "to")?,
        }),
        other => Err(bad(format!("unknown cart location tag `{other}`"))),
    }
}

fn cost_from_json(v: &JsonValue) -> Result<MovementCost, CheckpointError> {
    Ok(MovementCost {
        speed: MetresPerSecond::new(req_f64(v, "speed")?),
        total_time: Seconds::new(req_f64(v, "total_time")?),
        motion_time: Seconds::new(req_f64(v, "motion_time")?),
        energy: Joules::new(req_f64(v, "energy")?),
    })
}

fn active_movement_from_json(v: &JsonValue) -> Result<ActiveMovement, CheckpointError> {
    Ok(ActiveMovement {
        from: req_usize(v, "from")?,
        to: req_usize(v, "to")?,
        payload: Bytes::new(req_u64(v, "payload")?),
        attempt: req_u32(v, "attempt")?,
        cost: cost_from_json(req(v, "cost")?)?,
        stalled: req_bool(v, "stalled")?,
    })
}

fn movement_from_json(v: &JsonValue) -> Result<Movement, CheckpointError> {
    Ok(Movement {
        cart: req_usize(v, "cart")?,
        from: req_usize(v, "from")?,
        to: req_usize(v, "to")?,
        payload: Bytes::new(req_u64(v, "payload")?),
        attempt: req_u32(v, "attempt")?,
    })
}

fn verify_from_json(v: &JsonValue) -> Result<PendingVerify, CheckpointError> {
    Ok(PendingVerify {
        to: req_usize(v, "to")?,
        payload: Bytes::new(req_u64(v, "payload")?),
        attempt: req_u32(v, "attempt")?,
        trip_time: Seconds::new(req_f64(v, "trip_time")?),
        shards: req_u64(v, "shards")?,
    })
}

fn cart_from_json(v: &JsonValue) -> Result<CartState, CheckpointError> {
    Ok(CartState {
        location: location_from_json(req(v, "location")?)?,
        movement: match req(v, "movement")? {
            JsonValue::Null => None,
            m => Some(active_movement_from_json(m)?),
        },
        trips: req_u64(v, "trips")?,
        connector_cycles: match req(v, "connector_cycles")? {
            JsonValue::Null => None,
            n => Some(value_u32(n, "connector_cycles")?),
        },
        wear_written: opt_u64(v, "wear_written")?,
        matings: req_u32(v, "matings")?,
        verify: match req(v, "verify")? {
            JsonValue::Null => None,
            p => Some(verify_from_json(p)?),
        },
    })
}

fn track_from_json(v: &JsonValue) -> Result<TrackState, CheckpointError> {
    Ok(TrackState {
        direction: match req(v, "direction")? {
            JsonValue::Null => None,
            d => Some(match d.as_str() {
                Some("out") => Direction::Outbound,
                Some("in") => Direction::Inbound,
                _ => return Err(bad("unknown track direction")),
            }),
        },
        in_flight: req_u32(v, "in_flight")?,
        last_launch: req_f64(v, "last_launch")?,
        busy_accum: req_f64(v, "busy_accum")?,
        last_update: req_f64(v, "last_update")?,
        blocked_by: match req(v, "blocked_by")? {
            JsonValue::Null => None,
            c => Some(
                usize::try_from(value_u64(c, "blocked_by")?)
                    .map_err(|_| bad("`blocked_by` overflows usize"))?,
            ),
        },
        blocked_since: req_f64(v, "blocked_since")?,
        downtime_accum: req_f64(v, "downtime_accum")?,
        degraded_until: req_f64(v, "degraded_until")?,
    })
}

fn mission_from_json(v: &JsonValue) -> Result<Mission, CheckpointError> {
    Ok(Mission {
        total_deliveries: req_u64(v, "total_deliveries")?,
        scheduled: req_u64(v, "scheduled")?,
        done: req_u64(v, "done")?,
        demands: req_array(v, "demands")?
            .iter()
            .map(|d| {
                Ok(RackDemand {
                    endpoint: req_usize(d, "endpoint")?,
                    bytes_remaining: Bytes::new(req_u64(d, "bytes_remaining")?),
                    deliveries_done: req_u64(d, "deliveries_done")?,
                })
            })
            .collect::<Result<_, CheckpointError>>()?,
        delivered: Bytes::new(req_u64(v, "delivered")?),
        gross_delivered: Bytes::new(req_u64(v, "gross_delivered")?),
        completion_time: opt_f64(v, "completion_time")?,
    })
}

fn trace_kind_from_json(v: &JsonValue) -> Result<TraceEventKind, CheckpointError> {
    match req_str(v, "t")? {
        "launch" => Ok(TraceEventKind::Launch {
            cart: req_usize(v, "cart")?,
            from: req_usize(v, "from")?,
            to: req_usize(v, "to")?,
        }),
        "enter_tube" => Ok(TraceEventKind::EnterTube {
            cart: req_usize(v, "cart")?,
        }),
        "begin_dock" => Ok(TraceEventKind::BeginDock {
            cart: req_usize(v, "cart")?,
        }),
        "docked" => Ok(TraceEventKind::Docked {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
        }),
        "processing_done" => Ok(TraceEventKind::ProcessingDone {
            cart: req_usize(v, "cart")?,
        }),
        "delivery_failed" => Ok(TraceEventKind::DeliveryFailed {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
            attempt: req_u32(v, "attempt")?,
        }),
        "verify_started" => Ok(TraceEventKind::VerifyStarted {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
            shards: req_u64(v, "shards")?,
        }),
        "payload_verified" => Ok(TraceEventKind::PayloadVerified {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
            shards: req_u64(v, "shards")?,
        }),
        "payload_corrupted" => Ok(TraceEventKind::PayloadCorrupted {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
            corrupted: req_u64(v, "corrupted")?,
            attempt: req_u32(v, "attempt")?,
        }),
        "shards_reconstructed" => Ok(TraceEventKind::ShardsReconstructed {
            cart: req_usize(v, "cart")?,
            shards: req_u64(v, "shards")?,
        }),
        "cart_stalled" => Ok(TraceEventKind::CartStalled {
            cart: req_usize(v, "cart")?,
            track: req_usize(v, "track")?,
        }),
        "dock_controller_crashed" => Ok(TraceEventKind::DockControllerCrashed {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
        }),
        "dock_controller_recovered" => Ok(TraceEventKind::DockControllerRecovered {
            cart: req_usize(v, "cart")?,
            endpoint: req_usize(v, "endpoint")?,
            downtime: Seconds::new(req_f64(v, "downtime")?),
        }),
        "track_restored" => Ok(TraceEventKind::TrackRestored {
            track: req_usize(v, "track")?,
        }),
        other => Err(bad(format!("unknown trace event tag `{other}`"))),
    }
}

fn trace_event_from_json(v: &JsonValue) -> Result<TraceEvent, CheckpointError> {
    Ok(TraceEvent {
        time: Seconds::new(req_f64(v, "time")?),
        kind: trace_kind_from_json(req(v, "kind")?)?,
    })
}

fn rng_from_json(v: &JsonValue) -> Result<Option<[u64; 4]>, CheckpointError> {
    match v {
        JsonValue::Null => Ok(None),
        _ => {
            let words = v
                .as_array()
                .ok_or_else(|| bad("RNG state is not an array"))?;
            if words.len() != 4 {
                return Err(bad("RNG state is not 4 words"));
            }
            let mut state = [0u64; 4];
            for (slot, word) in state.iter_mut().zip(words) {
                *slot = value_u64(word, "RNG state word")?;
            }
            Ok(Some(state))
        }
    }
}

fn counters_from_json(v: &JsonValue) -> Result<Counters, CheckpointError> {
    Ok(Counters {
        ssd_failures: req_u64(v, "ssd_failures")?,
        data_loss_events: req_u64(v, "data_loss_events")?,
        redeliveries: req_u64(v, "redeliveries")?,
        retry_time_s: req_f64(v, "retry_time_s")?,
        cart_stalls: req_u64(v, "cart_stalls")?,
        connector_replacements: req_u64(v, "connector_replacements")?,
        repressurisations: req_u64(v, "repressurisations")?,
        dock_crashes: req_u64(v, "dock_crashes")?,
        dock_recovery_time_s: req_f64(v, "dock_recovery_time_s")?,
        dock_downtime: req_array(v, "dock_downtime")?
            .iter()
            .map(|s| value_f64(s, "dock_downtime entry"))
            .collect::<Result<_, _>>()?,
        shards_scanned: req_u64(v, "shards_scanned")?,
        shards_corrupted: req_u64(v, "shards_corrupted")?,
        shards_reconstructed: req_u64(v, "shards_reconstructed")?,
        deliveries_verified: req_u64(v, "deliveries_verified")?,
        deliveries_reshipped: req_u64(v, "deliveries_reshipped")?,
        verification_time_s: req_f64(v, "verification_time_s")?,
        reconstruction_time_s: req_f64(v, "reconstruction_time_s")?,
        verification_energy_j: req_f64(v, "verification_energy_j")?,
    })
}

fn sorted_metric_entries(
    v: &JsonValue,
    key: &str,
) -> Result<Vec<(String, JsonValue)>, CheckpointError> {
    let map: &BTreeMap<String, JsonValue> = req(v, key)?
        .as_object()
        .ok_or_else(|| bad(format!("`{key}` is not an object")))?;
    Ok(map
        .iter()
        .map(|(k, val)| (k.clone(), val.clone()))
        .collect())
}

fn metrics_from_json(v: &JsonValue) -> Result<MetricsState, CheckpointError> {
    Ok(MetricsState {
        counters: sorted_metric_entries(v, "counters")?
            .into_iter()
            .map(|(name, val)| Ok((name.clone(), value_u64(&val, &name)?)))
            .collect::<Result<_, CheckpointError>>()?,
        gauges: sorted_metric_entries(v, "gauges")?
            .into_iter()
            .map(|(name, val)| Ok((name.clone(), value_f64(&val, &name)?)))
            .collect::<Result<_, CheckpointError>>()?,
        histograms: sorted_metric_entries(v, "histograms")?
            .into_iter()
            .map(|(name, val)| {
                let buckets = req_array(&val, "buckets")?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_array()
                            .ok_or_else(|| bad("histogram bucket is not a pair"))?;
                        if pair.len() != 2 {
                            return Err(bad("histogram bucket is not a [bucket, count] pair"));
                        }
                        Ok((
                            value_u32(&pair[0], "histogram bucket index")?,
                            value_u64(&pair[1], "histogram bucket count")?,
                        ))
                    })
                    .collect::<Result<_, CheckpointError>>()?;
                Ok((
                    name,
                    HistogramState {
                        count: req_u64(&val, "count")?,
                        sum: req_f64(&val, "sum")?,
                        // An empty histogram's raw bounds are the infinities
                        // the codec cannot carry; reinstate them from null.
                        min: opt_f64(&val, "min")?.unwrap_or(f64::INFINITY),
                        max: opt_f64(&val, "max")?.unwrap_or(f64::NEG_INFINITY),
                        buckets,
                    },
                ))
            })
            .collect::<Result<_, CheckpointError>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        DockControllerFaultSpec, DockRecoveryPolicy, FaultSpec, IntegritySpec, ReliabilitySpec,
    };
    use crate::report::BulkTransferReport;

    const PB2: f64 = 2.0;

    fn faulty_config() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec {
            seed: 7,
            ..ReliabilitySpec::typical()
        });
        cfg.faults = Some(FaultSpec::stress());
        cfg
    }

    fn integrity_config() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec {
            seed: 11,
            ..ReliabilitySpec::typical()
        });
        cfg.integrity = Some(IntegritySpec::typical());
        cfg
    }

    fn crashing_dock_config() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.reliability = Some(ReliabilitySpec {
            seed: 13,
            ..ReliabilitySpec::typical()
        });
        cfg.faults = Some(FaultSpec {
            dock_controller: Some(DockControllerFaultSpec {
                crash_probability_per_docking: 0.5,
                recovery: DockRecoveryPolicy::RebuildFromScan,
                ..DockControllerFaultSpec::journal_replay()
            }),
            ..FaultSpec::recovery_only()
        });
        cfg
    }

    /// Runs to completion uninterrupted; returns the report and trace.
    fn run_clean(cfg: &SimConfig, dataset: Bytes) -> (BulkTransferReport, Option<Trace>) {
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.enable_trace(1 << 14);
        sys.begin_bulk_transfer(dataset).expect("begin");
        let drained = sys.run_until(Seconds::new(f64::INFINITY)).expect("run");
        assert!(drained);
        let report = sys.finish();
        (report, sys.take_trace())
    }

    /// Runs to `checkpoint_at`, captures, resumes (optionally through JSON),
    /// and completes the run on the resumed system.
    fn run_with_checkpoint(
        cfg: &SimConfig,
        dataset: Bytes,
        checkpoint_at: Seconds,
        through_json: bool,
    ) -> (BulkTransferReport, Option<Trace>) {
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.enable_trace(1 << 14);
        sys.begin_bulk_transfer(dataset).expect("begin");
        let _ = sys.run_until(checkpoint_at).expect("run to checkpoint");
        let cp = sys.checkpoint();
        let cp = if through_json {
            Checkpoint::from_json(&cp.to_json()).expect("JSON roundtrip")
        } else {
            cp
        };
        drop(sys); // the "crash"
        let mut resumed = DhlSystem::resume(cfg.clone(), &cp).expect("resume");
        let drained = resumed
            .run_until(Seconds::new(f64::INFINITY))
            .expect("run after resume");
        assert!(drained);
        let report = resumed.finish();
        (report, resumed.take_trace())
    }

    /// Deterministic (non-wall-clock) metrics projection for comparisons.
    #[allow(clippy::type_complexity)]
    fn deterministic_metrics(r: &BulkTransferReport) -> (Vec<(String, u64)>, Vec<(String, f64)>) {
        let counters = r.metrics.counters.clone();
        let gauges = r
            .metrics
            .gauges
            .iter()
            .filter(|(n, _)| !n.contains("wall"))
            .cloned()
            .collect();
        (counters, gauges)
    }

    fn assert_resume_equivalent(cfg: &SimConfig, dataset: Bytes, checkpoint_at: f64) {
        let (clean, clean_trace) = run_clean(cfg, dataset);
        for through_json in [false, true] {
            let (resumed, resumed_trace) =
                run_with_checkpoint(cfg, dataset, Seconds::new(checkpoint_at), through_json);
            assert_eq!(
                clean, resumed,
                "report must be bit-identical (checkpoint at {checkpoint_at}s, json={through_json})"
            );
            assert_eq!(
                clean_trace, resumed_trace,
                "trace must be bit-identical (checkpoint at {checkpoint_at}s, json={through_json})"
            );
            assert_eq!(
                deterministic_metrics(&clean),
                deterministic_metrics(&resumed),
                "deterministic metrics must match (checkpoint at {checkpoint_at}s, json={through_json})"
            );
            assert_eq!(clean.integrity, resumed.integrity);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_config_sensitive() {
        let a = SimConfig::paper_default();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
        let mut b = SimConfig::paper_default();
        b.num_carts += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn baseline_resume_is_bit_identical_at_randomized_times() {
        let cfg = SimConfig::paper_default();
        // A cheap LCG stands in for property-test shrinking: spread capture
        // points across the whole run, including t=0 (nothing processed yet)
        // and far past completion (queue already drained).
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut times = vec![0.0, 1e9];
        for _ in 0..6 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            times.push((x >> 40) as f64 / 16.0); // 0 .. ~1048s
        }
        for t in times {
            assert_resume_equivalent(&cfg, Bytes::from_petabytes(PB2), t);
        }
    }

    #[test]
    fn faulty_resume_is_bit_identical() {
        let cfg = faulty_config();
        for t in [0.0, 33.3, 250.0, 777.7] {
            assert_resume_equivalent(&cfg, Bytes::from_petabytes(PB2), t);
        }
    }

    #[test]
    fn integrity_resume_is_bit_identical() {
        let cfg = integrity_config();
        for t in [15.0, 444.4] {
            assert_resume_equivalent(&cfg, Bytes::from_petabytes(PB2), t);
        }
    }

    #[test]
    fn dock_crash_resume_is_bit_identical() {
        let cfg = crashing_dock_config();
        for t in [9.9, 500.0] {
            assert_resume_equivalent(&cfg, Bytes::from_petabytes(PB2), t);
        }
    }

    #[test]
    fn mid_bucket_checkpoint_resumes_bit_identical() {
        // Capture instants chosen to fall strictly *between* event times of
        // the paper-default run (movements complete every 8.6 s), so the
        // calendar queue is caught mid-bucket: cursor advanced, current
        // bucket partially drained, later buckets still populated. The
        // serialized view must be the logical (time, seq) order, not the
        // bucket layout, for the resumed run to replay bit-identically.
        let cfg = SimConfig::paper_default();
        for t in [8.61, 17.3, 43.05, 300.2] {
            assert_resume_equivalent(&cfg, Bytes::from_petabytes(PB2), t);
        }
    }

    #[test]
    fn far_future_overflow_events_survive_checkpoint() {
        // An event far beyond the calendar window lives in the queue's
        // unsorted overflow tier. It must serialize, JSON round-trip, and
        // restore losslessly alongside the bucketed near-term events.
        let cfg = SimConfig::paper_default();
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(60.0)).expect("run");
        // A stray wakeup in the deep future (a no-op when nothing is
        // pending) — 1e9 s is ~11 500 days past any bucket window.
        sys.queue.schedule_at(Seconds::new(1e9), Ev::TryLaunch);
        let cp = sys.checkpoint();
        let decoded = Checkpoint::from_json(&cp.to_json()).expect("JSON roundtrip");
        assert_eq!(decoded, cp);
        let resumed = DhlSystem::resume(cfg.clone(), &decoded).expect("resume");
        assert_eq!(resumed.checkpoint(), cp);
        // The far-future event is still there and still pops last.
        let mut drained = DhlSystem::resume(cfg, &decoded).expect("resume");
        let _ = drained.run_until(Seconds::new(f64::INFINITY)).expect("run");
        assert!(drained.queue.is_empty());
        assert_eq!(drained.now(), Seconds::new(1e9));
    }

    #[test]
    fn clamp_counter_survives_checkpoint_and_json() {
        let cfg = SimConfig::paper_default();
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(30.0)).expect("run");
        sys.queue.set_clamped(5);
        let cp = sys.checkpoint();
        let decoded = Checkpoint::from_json(&cp.to_json()).expect("JSON roundtrip");
        let resumed = DhlSystem::resume(cfg, &decoded).expect("resume");
        assert_eq!(resumed.queue.clamped(), 5);
        assert_eq!(resumed.checkpoint(), cp);
    }

    #[test]
    fn checkpoint_of_resumed_system_is_idempotent() {
        let cfg = faulty_config();
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.enable_trace(256);
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(120.0)).expect("run");
        let cp = sys.checkpoint();
        let resumed = DhlSystem::resume(cfg, &cp).expect("resume");
        assert_eq!(resumed.checkpoint(), cp);
    }

    #[test]
    fn json_roundtrip_is_exact_and_deterministic() {
        let cfg = integrity_config();
        let mut sys = DhlSystem::new(cfg).expect("valid config");
        sys.enable_trace(256);
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(60.0)).expect("run");
        let cp = sys.checkpoint();
        let text = cp.to_json();
        let decoded = Checkpoint::from_json(&text).expect("decode");
        assert_eq!(decoded, cp);
        // Equal checkpoints serialize to byte-equal JSON.
        assert_eq!(decoded.to_json(), text);
    }

    #[test]
    fn resume_rejects_a_different_configuration() {
        let cfg = SimConfig::paper_default();
        let mut sys = DhlSystem::new(cfg).expect("valid config");
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(50.0)).expect("run");
        let cp = sys.checkpoint();
        let mut other = SimConfig::paper_default();
        other.dock_time = Seconds::new(other.dock_time.seconds() + 1.0);
        match DhlSystem::resume(other, &cp) {
            Err(SimError::CheckpointMismatch { expected, actual }) => {
                assert_eq!(expected, cp.fingerprint());
                assert_ne!(expected, actual);
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(matches!(
            Checkpoint::from_json("not json"),
            Err(CheckpointError::Json(_))
        ));
        assert!(matches!(
            Checkpoint::from_json("{\"version\": 99}"),
            Err(CheckpointError::Shape(_))
        ));
        assert!(matches!(
            Checkpoint::from_json("{}"),
            Err(CheckpointError::Shape(_))
        ));
    }

    #[test]
    fn checkpoint_accessors_report_capture_state() {
        let cfg = SimConfig::paper_default();
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(100.0)).expect("run");
        let cp = sys.checkpoint();
        assert_eq!(cp.time(), sys.now());
        assert!(cp.events_processed() > 0);
        assert_eq!(cp.fingerprint(), config_fingerprint(&cfg));
    }

    #[test]
    fn disabled_metrics_and_trace_stay_disabled_across_resume() {
        let cfg = SimConfig::paper_default();
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.set_metrics_enabled(false);
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(100.0)).expect("run");
        let cp = sys.checkpoint();
        let mut resumed = DhlSystem::resume(cfg, &cp).expect("resume");
        assert!(!resumed.metrics().is_enabled());
        assert!(resumed.take_trace().is_none());
        let _ = resumed.run_until(Seconds::new(f64::INFINITY)).expect("run");
        let report = resumed.finish();
        assert!(report.metrics.counters.is_empty());
    }

    #[test]
    fn worn_connectors_and_wear_counters_survive_resume() {
        // Dock-controller crashes keep the fault RNG and energy paths hot;
        // integrity adds connector matings and NAND wear counters on top.
        let mut cfg = crashing_dock_config();
        cfg.integrity = Some(IntegritySpec::typical());
        cfg.validate().expect("valid test config");
        let mut sys = DhlSystem::new(cfg.clone()).expect("valid config");
        sys.begin_bulk_transfer(Bytes::from_petabytes(PB2))
            .expect("begin");
        let _ = sys.run_until(Seconds::new(400.0)).expect("run");
        let cp = sys.checkpoint();
        let resumed = DhlSystem::resume(cfg, &cp).expect("resume");
        assert_eq!(resumed.checkpoint(), cp);
    }
}
