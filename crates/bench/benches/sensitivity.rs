//! Bench + regeneration for the sensitivity sweeps and training-campaign
//! amortisation (DESIGN.md's ablation list).

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_core::{acceleration_sweep, density_scaling, docking_time_sweep, DhlConfig};
use dhl_units::{MetresPerSecondSquared, Seconds};

fn main() {
    println!("{}", dhl_bench::render_sensitivity());
    let base = DhlConfig::paper_default();
    let docks: Vec<Seconds> = (0..=100)
        .map(|i| Seconds::new(f64::from(i) * 0.1))
        .collect();
    bench_function("sensitivity/docking_sweep_101_points", || {
        docking_time_sweep(black_box(&base), &docks).len()
    });
    let accels: Vec<MetresPerSecondSquared> = (1..=100)
        .map(|i| MetresPerSecondSquared::new(f64::from(i) * 100.0))
        .collect();
    bench_function("sensitivity/acceleration_sweep_100_points", || {
        acceleration_sweep(black_box(&base), &accels).len()
    });
    let factors: Vec<f64> = (1..=64).map(f64::from).collect();
    bench_function("sensitivity/density_projection_64_points", || {
        density_scaling(black_box(&base), &factors).len()
    });
}
