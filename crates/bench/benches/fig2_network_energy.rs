//! Bench + regeneration for Fig. 2 (right): route energies for 29 PB.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dhl_core::paper_dataset;
use dhl_net::route::Route;

fn bench(c: &mut Criterion) {
    println!("{}", dhl_bench::render_fig2());
    c.bench_function("fig2/route_energies_29pb", |b| {
        b.iter(|| {
            Route::all()
                .into_iter()
                .map(|r| r.transfer_energy(black_box(paper_dataset())).value())
                .sum::<f64>()
        });
    });
    c.bench_function("fig2/fat_tree_derived_routes", |b| {
        use dhl_net::topology::{FatTree, NodeAddress};
        let tree = FatTree::figure_2();
        b.iter(|| {
            let route = tree
                .route_between(
                    black_box(NodeAddress::new(0, 0, 0)),
                    black_box(NodeAddress::new(1, 1, 1)),
                )
                .unwrap();
            route.transfer_energy(paper_dataset()).value()
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
