//! Bench + regeneration for Fig. 2 (right): route energies for 29 PB.

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_core::paper_dataset;
use dhl_net::route::Route;

fn main() {
    println!("{}", dhl_bench::render_fig2());
    bench_function("fig2/route_energies_29pb", || {
        Route::all()
            .into_iter()
            .map(|r| r.transfer_energy(black_box(paper_dataset())).value())
            .sum::<f64>()
    });
    bench_function("fig2/fat_tree_derived_routes", || {
        use dhl_net::topology::{FatTree, NodeAddress};
        let tree = FatTree::figure_2();
        let route = tree
            .route_between(
                black_box(NodeAddress::new(0, 0, 0)),
                black_box(NodeAddress::new(1, 1, 1)),
            )
            .unwrap();
        route.transfer_energy(paper_dataset()).value()
    });
}
