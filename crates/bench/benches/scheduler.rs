//! Bench for the §III-D management-software layer: placement + list
//! scheduling of a multi-tenant request mix.

use dhl_bench::harness::bench_function;
use dhl_sched::admission::{AdmissionSpec, OverloadPolicy, TenantId};
use dhl_sched::placement::Placement;
use dhl_sched::scheduler::{FaultAwareness, Priority, Scheduler, TransferRequest};
use dhl_sim::{ArrivalGenerator, ArrivalSpec, SimConfig};
use dhl_storage::datasets;
use dhl_units::{Bytes, Seconds};

fn main() {
    bench_function("sched/place_29pb", || {
        let mut p = Placement::new(Bytes::from_terabytes(256.0));
        p.store(datasets::meta_dlrm_29pb()).0
    });

    bench_function("sched/multi_tenant_mix", || {
        let mut p = Placement::new(Bytes::from_terabytes(256.0));
        let a = p.store(datasets::laion_5b());
        let bb = p.store(datasets::common_crawl());
        let cc = p.store(datasets::genomics_17pb());
        let mut sched = Scheduler::new(SimConfig::paper_default(), p).unwrap();
        sched.submit(TransferRequest::new(
            cc,
            1,
            Priority::Background,
            Seconds::ZERO,
        ));
        sched.submit(TransferRequest::new(bb, 1, Priority::Normal, Seconds::ZERO));
        sched.submit(TransferRequest::new(
            a,
            1,
            Priority::Urgent,
            Seconds::new(5.0),
        ));
        sched.run().makespan.seconds()
    });

    bench_function("sched/multi_tenant_mix_with_losses", || {
        let mut p = Placement::new(Bytes::from_terabytes(256.0));
        let a = p.store(datasets::laion_5b());
        let bb = p.store(datasets::common_crawl());
        let mut sched = Scheduler::new(SimConfig::paper_default(), p)
            .unwrap()
            .with_faults(FaultAwareness {
                loss_probability: 0.05,
                max_attempts: 8,
                seed: 42,
                downtime: vec![(Seconds::new(100.0), Seconds::new(200.0))],
            });
        sched.submit(TransferRequest::new(bb, 1, Priority::Normal, Seconds::ZERO));
        sched.submit(TransferRequest::new(
            a,
            1,
            Priority::Urgent,
            Seconds::new(5.0),
        ));
        sched.run().makespan.seconds()
    });

    // Open-loop overload sweep: 96 Poisson arrivals at 4x the track's
    // saturation rate, pushed through admission control (bounded queues,
    // shed-lowest-priority, budgeted retries with backoff).
    bench_function("sched/overload_sweep", || {
        let mut p = Placement::new(Bytes::from_terabytes(256.0));
        let a = p.store(datasets::laion_5b());
        let bb = p.store(datasets::genomics_17pb());
        let ids = [a, bb];
        let arrival_spec = ArrivalSpec::poisson(4.0 / 17.2, Seconds::new(1e12), 7).with_tenants(2);
        let mut sched = Scheduler::new(SimConfig::paper_default(), p)
            .unwrap()
            .with_admission(AdmissionSpec {
                max_pending_global: 16,
                max_pending_per_tenant: 12,
                policy: OverloadPolicy::ShedLowestPriority,
                ..AdmissionSpec::default()
            })
            .with_faults(FaultAwareness {
                loss_probability: 0.05,
                max_attempts: 8,
                seed: 42,
                downtime: Vec::new(),
            });
        for arrival in ArrivalGenerator::new(&arrival_spec).take(96) {
            sched.submit(
                TransferRequest::new(
                    ids[arrival.tenant as usize % 2],
                    1,
                    if arrival.tenant == 0 {
                        Priority::Urgent
                    } else {
                        Priority::Normal
                    },
                    Seconds::new(arrival.at.seconds()),
                )
                .with_tenant(TenantId(arrival.tenant)),
            );
        }
        let out = sched.run();
        out.admission.expect("open loop").goodput_bytes_per_s
    });
}
