//! Engine event-throughput benches: queue churn against the reference
//! heap, full-system steady state, and the checkpoint-heavy variant. The
//! same cases run inside `report --json`, where the CI gate checks them
//! under the `sim/events_per_sec` prefix.

fn main() {
    let cases = dhl_bench::events_per_sec_cases();
    assert!(cases.iter().all(|c| c.result.mean_ns > 0.0));
}
