//! Scheduler serving-throughput benches: service-queue churn against the
//! pinned reference scan (the ≥5× gate) and end-to-end open-loop sweeps
//! (Poisson mix, high tenant count, retry-heavy, shortest-job-first). The
//! same cases run inside `report --json`, where the CI gate checks them
//! under the `sched/requests_per_sec` prefix.

fn main() {
    let cases = dhl_bench::requests_per_sec_cases();
    assert!(cases.iter().all(|c| c.result.mean_ns > 0.0));
}
