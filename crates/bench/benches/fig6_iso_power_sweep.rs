//! Bench + regeneration for Fig. 6: iteration time vs communication power.

use dhl_bench::harness::bench_function;
use dhl_core::DhlConfig;
use dhl_mlsim::{fig6, DlrmWorkload};
use dhl_net::route::RouteId;
use dhl_units::{Metres, MetresPerSecond, Watts};

fn main() {
    println!("{}", dhl_bench::render_fig6());
    let workload = DlrmWorkload::paper_dlrm();
    let configs = [
        DhlConfig::with_ssd_count(MetresPerSecond::new(100.0), Metres::new(500.0), 16),
        DhlConfig::paper_default(),
        DhlConfig::with_ssd_count(MetresPerSecond::new(300.0), Metres::new(500.0), 64),
    ];
    let grid: Vec<Watts> = (1..=64).map(|i| Watts::new(f64::from(i) * 500.0)).collect();

    bench_function("fig6/full_sweep", || {
        fig6(
            &workload,
            &configs,
            &[
                RouteId::A0,
                RouteId::A1,
                RouteId::A2,
                RouteId::B,
                RouteId::C,
            ],
            &grid,
            16,
        )
        .len()
    });
}
