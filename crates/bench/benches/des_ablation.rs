//! Bench + regeneration for the DES ablations: the discrete-event system
//! simulator vs the analytical model, across the §VI design alternatives.

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_sim::{DhlSystem, SimConfig};
use dhl_units::Bytes;

fn main() {
    println!("{}", dhl_bench::render_des_ablation());
    bench_function("des/serial_29pb", || {
        DhlSystem::new(black_box(SimConfig::paper_serial()))
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(29.0))
            .unwrap()
            .movements
    });
    bench_function("des/pipelined_29pb", || {
        DhlSystem::new(black_box(SimConfig::paper_default()))
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(29.0))
            .unwrap()
            .movements
    });
    bench_function("des/dual_track_29pb", || {
        let mut cfg = SimConfig::paper_default();
        cfg.dual_track = true;
        DhlSystem::new(cfg)
            .unwrap()
            .run_bulk_transfer(Bytes::from_petabytes(29.0))
            .unwrap()
            .movements
    });
}
