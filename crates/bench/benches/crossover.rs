//! Bench + regeneration for the §V-E minimum-specification analysis.

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_core::{crossover, paper_minimal_dhl};

fn main() {
    println!("{}", dhl_bench::render_crossover());
    let cfg = paper_minimal_dhl();
    bench_function("crossover/minimal_dhl", || {
        crossover(black_box(&cfg)).breakeven_dataset.as_u64()
    });
}
