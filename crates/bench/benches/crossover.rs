//! Bench + regeneration for the §V-E minimum-specification analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dhl_core::{crossover, paper_minimal_dhl};

fn bench(c: &mut Criterion) {
    println!("{}", dhl_bench::render_crossover());
    let cfg = paper_minimal_dhl();
    c.bench_function("crossover/minimal_dhl", |b| {
        b.iter(|| crossover(black_box(&cfg)).breakeven_dataset.as_u64());
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
