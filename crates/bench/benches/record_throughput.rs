//! Observability recording-throughput benches: counter/gauge/histogram
//! hot-path ops through pre-interned handles against the pinned map-walk
//! reference registry (the ≥5× gate), the disabled-registry no-op floor,
//! and metrics-on vs metrics-off deltas for the engine and scheduler
//! end-to-end workloads. The same cases run inside `report --json`, where
//! the CI gate checks them under the `obs/record_throughput` prefix.

fn main() {
    let cases = dhl_bench::record_throughput_cases();
    assert!(cases.iter().all(|c| c.result.mean_ns > 0.0));
}
