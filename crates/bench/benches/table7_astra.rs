//! Bench + regeneration for Table VII: iso-power and iso-time DLRM
//! iteration comparisons.

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_core::DhlConfig;
use dhl_mlsim::{iso_power, iso_time, DhlFabric, DlrmWorkload};

fn main() {
    println!("{}", dhl_bench::render_table7());
    let workload = DlrmWorkload::paper_dlrm();
    let dhl = DhlConfig::paper_default();
    let budget = DhlFabric::new(dhl.clone(), 1).track_power();

    bench_function("table7/iso_power", || {
        iso_power(black_box(&workload), black_box(&dhl), budget)
            .rows
            .len()
    });
    bench_function("table7/iso_time", || {
        iso_time(black_box(&workload), black_box(&dhl)).rows.len()
    });
}
