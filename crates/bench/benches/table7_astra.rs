//! Bench + regeneration for Table VII: iso-power and iso-time DLRM
//! iteration comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dhl_core::DhlConfig;
use dhl_mlsim::{iso_power, iso_time, DhlFabric, DlrmWorkload};

fn bench(c: &mut Criterion) {
    println!("{}", dhl_bench::render_table7());
    let workload = DlrmWorkload::paper_dlrm();
    let dhl = DhlConfig::paper_default();
    let budget = DhlFabric::new(dhl.clone(), 1).track_power();

    c.bench_function("table7/iso_power", |b| {
        b.iter(|| iso_power(black_box(&workload), black_box(&dhl), budget).rows.len());
    });
    c.bench_function("table7/iso_time", |b| {
        b.iter(|| iso_time(black_box(&workload), black_box(&dhl)).rows.len());
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
