//! Bench + regeneration for Table VI: the design-space exploration.

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_core::{paper_dataset, paper_table_vi, sweep, sweep_parallel};
use dhl_units::{Metres, MetresPerSecond};

fn main() {
    println!("{}", dhl_bench::render_table6());
    bench_function("table6/paper_13_rows", || black_box(paper_table_vi()).len());

    // A much larger grid than the paper's, exercising the sweep drivers.
    let speeds: Vec<MetresPerSecond> = (4..=30)
        .map(|v| MetresPerSecond::new(f64::from(v) * 10.0))
        .collect();
    let lengths: Vec<Metres> = (1..=10)
        .map(|l| Metres::new(f64::from(l) * 100.0))
        .collect();
    let counts: Vec<u32> = vec![8, 16, 32, 64, 128];

    bench_function("table6/sweep_serial_1350_points", || {
        sweep(&speeds, &lengths, &counts, paper_dataset()).len()
    });
    bench_function("table6/sweep_parallel_1350_points", || {
        sweep_parallel(&speeds, &lengths, &counts, paper_dataset(), 8).len()
    });
}
