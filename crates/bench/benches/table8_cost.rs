//! Bench + regeneration for Table VIII: the commodity cost model.

use std::hint::black_box;

use dhl_bench::harness::bench_function;
use dhl_core::CostModel;
use dhl_units::{Metres, MetresPerSecond};

fn main() {
    println!("{}", dhl_bench::render_table8());
    let model = CostModel::paper();
    bench_function("table8/full_grid", || {
        let mut total = 0.0;
        for d in [100.0, 500.0, 1000.0] {
            for v in [100.0, 200.0, 300.0] {
                total += model
                    .total_cost(
                        black_box(Metres::new(d)),
                        black_box(MetresPerSecond::new(v)),
                    )
                    .value();
            }
        }
        total
    });
}
