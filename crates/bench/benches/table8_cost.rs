//! Bench + regeneration for Table VIII: the commodity cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dhl_core::CostModel;
use dhl_units::{Metres, MetresPerSecond};

fn bench(c: &mut Criterion) {
    println!("{}", dhl_bench::render_table8());
    let model = CostModel::paper();
    c.bench_function("table8/full_grid", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for d in [100.0, 500.0, 1000.0] {
                for v in [100.0, 200.0, 300.0] {
                    total += model
                        .total_cost(black_box(Metres::new(d)), black_box(MetresPerSecond::new(v)))
                        .value();
                }
            }
            total
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
