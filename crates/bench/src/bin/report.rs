//! Regenerates every table and figure from the paper's evaluation section,
//! and drives the machine-readable benchmark suite.
//!
//! ```text
//! cargo run -p dhl-bench --bin report                    # every table/figure
//! cargo run -p dhl-bench --bin report table6             # one table
//! cargo run -p dhl-bench --bin report -- --json BENCH_report.json
//! cargo run -p dhl-bench --bin report -- --check BENCH_baseline.json \
//!     --tolerance 0.25 --json BENCH_report.json
//! ```
//!
//! `--json` runs the benchmark suite and writes a `dhl-bench-report/v1`
//! document; `--check` additionally compares against a baseline report and
//! exits non-zero on any regression (mean beyond the tolerance) or dropped
//! case. `--filter PREFIX` restricts the run to case families whose names
//! match the prefix — both the measured cases and the baseline are
//! filtered, so a focused gate (e.g. `--filter sim/events_per_sec`) never
//! reports unrelated baseline cases as missing. Set `DHL_BENCH_FAST=1`
//! for the ~10× shorter CI smoke windows.

use dhl_bench::report_file;

struct Cli {
    json_path: Option<String>,
    check_path: Option<String>,
    tolerance: f64,
    filter: Option<String>,
    reports: Vec<String>,
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        json_path: None,
        check_path: None,
        tolerance: 0.25,
        filter: None,
        reports: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--json" => cli.json_path = Some(value_of("--json")?),
            "--check" => cli.check_path = Some(value_of("--check")?),
            "--filter" => cli.filter = Some(value_of("--filter")?),
            "--tolerance" => {
                cli.tolerance = value_of("--tolerance")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !cli.tolerance.is_finite() || cli.tolerance < 0.0 {
                    return Err("--tolerance must be a non-negative number".into());
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            name => cli.reports.push(name.to_string()),
        }
    }
    Ok(cli)
}

fn run_suite(cli: &Cli) -> i32 {
    let cases = dhl_bench::run_bench_suite_filtered(cli.filter.as_deref());
    let text = report_file::render_report(&cases);
    if let Some(path) = &cli.json_path {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cannot write {path}: {e}");
            return 2;
        }
        println!("wrote {path} ({} cases)", cases.len());
    }
    let Some(baseline_path) = &cli.check_path else {
        return 0;
    };
    let mut baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| report_file::parse_report(&t))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    if let Some(prefix) = &cli.filter {
        // Compare inside the filtered family only: unmeasured baseline
        // cases outside it are out of scope, not missing.
        baseline.retain(|c| c.case.starts_with(prefix.as_str()));
    }
    let current = report_file::parse_report(&text).expect("own report is valid");
    let outcome = report_file::compare(&current, &baseline, cli.tolerance);
    println!(
        "perf check vs {baseline_path} (tolerance {:.0}%): {} passed, {} regressed, {} missing",
        cli.tolerance * 100.0,
        outcome.passed,
        outcome.regressions.len(),
        outcome.missing.len(),
    );
    for r in &outcome.regressions {
        println!(
            "  REGRESSION {:<44} {:>10.0} ns -> {:>10.0} ns ({:.2}x)",
            r.case, r.baseline_ns, r.current_ns, r.ratio
        );
    }
    for name in &outcome.missing {
        println!("  MISSING    {name} (in baseline but not measured)");
    }
    i32::from(!outcome.is_ok())
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    if cli.json_path.is_some() || cli.check_path.is_some() || cli.filter.is_some() {
        std::process::exit(run_suite(&cli));
    }

    let reports = dhl_bench::all_reports();
    let wanted: Vec<&str> = if cli.reports.is_empty() {
        reports.iter().map(|(n, _)| *n).collect()
    } else {
        cli.reports.iter().map(String::as_str).collect()
    };
    for name in wanted {
        match reports.iter().find(|(n, _)| *n == name) {
            Some((_, render)) => {
                println!("{}", "=".repeat(78));
                println!("{}", render());
            }
            None => {
                eprintln!(
                    "unknown report '{name}'; available: {}",
                    reports
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
