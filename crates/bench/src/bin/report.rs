//! Regenerates every table and figure from the paper's evaluation section.
//!
//! ```text
//! cargo run -p dhl-bench --bin report            # everything
//! cargo run -p dhl-bench --bin report table6     # one table
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reports = dhl_bench::all_reports();
    let wanted: Vec<&str> = if args.is_empty() {
        reports.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in wanted {
        match reports.iter().find(|(n, _)| *n == name) {
            Some((_, render)) => {
                println!("{}", "=".repeat(78));
                println!("{}", render());
            }
            None => {
                eprintln!(
                    "unknown report '{name}'; available: {}",
                    reports
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
