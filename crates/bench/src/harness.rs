//! A minimal wall-clock benchmark harness.
//!
//! Stands in for Criterion in the offline build: each `[[bench]]` target is
//! a plain `fn main()` (`harness = false`) that calls [`bench_function`] for
//! every case. The harness warms the case up, picks an iteration count that
//! fills a fixed measurement window, and prints the mean wall-clock time per
//! iteration. No statistics beyond the mean are attempted — the targets
//! exist to regenerate the paper's tables and to catch gross performance
//! regressions, not to resolve microsecond-level noise.

use std::time::{Duration, Instant};

/// How long each case is measured for (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(250);

/// Upper bound on measured iterations, so trivially cheap cases terminate.
const MAX_ITERS: u32 = 100_000;

/// Measures `f`'s mean wall-clock time and prints one summary line.
///
/// The closure's return value is passed through [`std::hint::black_box`] so
/// the computation cannot be optimised away.
pub fn bench_function<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up (also calibrates the per-iteration cost).
    let start = Instant::now();
    std::hint::black_box(f());
    let first = start.elapsed();

    let iters = (MEASURE_WINDOW.as_secs_f64() / first.as_secs_f64().max(1e-9))
        .ceil()
        .min(f64::from(MAX_ITERS))
        .max(1.0) as u32;

    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per_iter = total.as_secs_f64() / f64::from(iters);
    println!("bench {name:<44} {:>12} /iter ({iters} iters)", format_time(per_iter));
}

/// Renders a duration in the most readable unit.
fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_does_not_panic() {
        bench_function("noop", || 1 + 1);
    }

    #[test]
    fn times_format_in_sensible_units() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
