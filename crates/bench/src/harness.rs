//! A minimal wall-clock benchmark harness.
//!
//! Stands in for Criterion in the offline build: each `[[bench]]` target is
//! a plain `fn main()` (`harness = false`) that calls [`bench_function`] for
//! every case. The harness warms the case up over a short window (so
//! calibration never hinges on one cold first call), picks an iteration
//! count that fills a fixed measurement window, and measures in batches to
//! report min/mean/p50/p95 per iteration. Results are also pushed to a
//! process-wide collector ([`take_results`]) so the `report` binary can
//! export them as machine-readable JSON.
//!
//! Setting `DHL_BENCH_FAST=1` shrinks both windows ~10× for CI smoke runs;
//! the statistics get noisier but every case still executes.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long each case is measured for (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(250);

/// How long the warm-up/calibration loop runs.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Upper bound on measured iterations, so trivially cheap cases terminate.
pub const MAX_ITERS: u32 = 100_000;

/// Upper bound on warm-up calls (cheap cases would otherwise spin the whole
/// warm-up window through the clock).
const MAX_WARMUP_CALLS: u32 = 1_024;

/// How many timed batches the measurement window is split into; percentiles
/// are computed over per-batch means.
const MAX_SAMPLES: u32 = 50;

/// One measured case: iteration count plus per-iteration statistics in
/// nanoseconds.
#[derive(Clone, PartialEq, Debug)]
pub struct CaseResult {
    /// Case name as passed to [`bench_function`].
    pub name: String,
    /// Iterations actually measured.
    pub iters: u32,
    /// Mean wall-clock time per iteration.
    pub mean_ns: f64,
    /// Fastest batch's per-iteration time.
    pub min_ns: f64,
    /// Median per-iteration time across batches.
    pub p50_ns: f64,
    /// 95th-percentile per-iteration time across batches.
    pub p95_ns: f64,
}

static RESULTS: Mutex<Vec<CaseResult>> = Mutex::new(Vec::new());

/// Whether `DHL_BENCH_FAST` is set (to anything but `0`): ~10× shorter
/// warm-up and measurement windows for CI smoke runs.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var_os("DHL_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Drains every [`CaseResult`] recorded by [`bench_function`] so far, in
/// execution order.
#[must_use]
pub fn take_results() -> Vec<CaseResult> {
    std::mem::take(&mut *RESULTS.lock().expect("results lock"))
}

/// Picks the iteration count that fills `window` given the warm-up's mean
/// per-call time, clamped into `[1, MAX_ITERS]`.
fn calibrate(window: Duration, mean_call: Duration) -> u32 {
    let per_call = mean_call.as_secs_f64().max(1e-9);
    let raw = (window.as_secs_f64() / per_call).ceil();
    if raw < 1.0 {
        1
    } else if raw >= f64::from(MAX_ITERS) {
        MAX_ITERS
    } else {
        raw as u32
    }
}

/// Nearest-rank quantile over an unsorted sample set (`q` in `[0, 1]`).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = (q.clamp(0.0, 1.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank]
}

/// Measures `f`'s wall-clock time, prints one summary line, and records a
/// [`CaseResult`] in the process-wide collector.
///
/// Calibration runs the closure repeatedly for a short warm-up window (not
/// a single cold first call, which over-estimated the per-call cost of
/// anything with lazily initialised state and so under-iterated), then the
/// measurement window is split into up to [`MAX_SAMPLES`] timed batches so
/// p50/p95 can be reported alongside the mean.
///
/// The closure's return value is passed through [`std::hint::black_box`] so
/// the computation cannot be optimised away.
pub fn bench_function<T>(name: &str, mut f: impl FnMut() -> T) -> CaseResult {
    let (warmup_window, measure_window) = if fast_mode() {
        (WARMUP_WINDOW / 10, MEASURE_WINDOW / 10)
    } else {
        (WARMUP_WINDOW, MEASURE_WINDOW)
    };

    // Warm-up + calibration: keep calling until the window (or call cap) is
    // reached, and derive the per-call estimate from the whole window.
    let start = Instant::now();
    let mut warm_calls = 0u32;
    loop {
        std::hint::black_box(f());
        warm_calls += 1;
        if start.elapsed() >= warmup_window || warm_calls >= MAX_WARMUP_CALLS {
            break;
        }
    }
    let mean_call = start.elapsed() / warm_calls;
    let iters = calibrate(measure_window, mean_call);

    // Measure in batches: `samples` per-batch per-iteration means.
    let batch = iters.div_ceil(MAX_SAMPLES);
    let batches = iters.div_ceil(batch);
    let iters = batch * batches; // actually executed
    let mut samples = Vec::with_capacity(batches as usize);
    let mut total = Duration::ZERO;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        total += elapsed;
        samples.push(elapsed.as_secs_f64() * 1e9 / f64::from(batch));
    }

    let mean_ns = total.as_secs_f64() * 1e9 / f64::from(iters);
    let min_ns = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let p50_ns = percentile(&mut samples, 0.50);
    let p95_ns = percentile(&mut samples, 0.95);
    println!(
        "bench {name:<44} {:>12} /iter (p50 {:>10}, p95 {:>10}, {iters} iters)",
        format_time(mean_ns * 1e-9),
        format_time(p50_ns * 1e-9),
        format_time(p95_ns * 1e-9),
    );

    let result = CaseResult {
        name: name.to_string(),
        iters,
        mean_ns,
        min_ns,
        p50_ns,
        p95_ns,
    };
    RESULTS.lock().expect("results lock").push(result.clone());
    result
}

/// Renders a duration in the most readable unit.
fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_consistent_statistics() {
        let r = bench_function("noop", || 1 + 1);
        assert!(r.iters >= 1);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.p50_ns);
        assert!(r.p50_ns <= r.p95_ns);
        // The collector saw the same case.
        let collected = take_results();
        assert!(collected.iter().any(|c| c == &r));
    }

    #[test]
    fn calibration_clamps_into_the_iteration_range() {
        // A per-call cost far above the window → exactly one iteration.
        assert_eq!(
            calibrate(Duration::from_millis(250), Duration::from_secs(10)),
            1
        );
        // A zero-cost call → the cap, not infinity.
        assert_eq!(
            calibrate(Duration::from_millis(250), Duration::ZERO),
            MAX_ITERS
        );
        // A mid-range cost lands in between.
        let mid = calibrate(Duration::from_millis(250), Duration::from_micros(50));
        assert!(mid > 1 && mid < MAX_ITERS, "{mid}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut s, 0.50), 3.0);
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut s, 1.0), 5.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn times_format_in_sensible_units() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
