//! Table and figure regeneration for every result in the paper's
//! evaluation section.
//!
//! Each `render_*` function recomputes one table or figure from the models
//! and returns it as formatted text with the paper's reference values
//! alongside, so `cargo run -p dhl-bench --bin report` regenerates the whole
//! evaluation and the bench targets (one per table/figure, timed by
//! [`harness`]) both measure and print them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report_file;

use std::fmt::Write as _;

use dhl_core::{crossover, paper_dataset, paper_minimal_dhl, paper_table_vi, CostModel, DhlConfig};
use dhl_mlsim::{fig6, iso_power, iso_time, DesDhlFabric, DhlFabric, DlrmWorkload};
use dhl_net::route::{Route, RouteId};
use dhl_physics::{BrakingSystem, TimeModel};
use dhl_sim::{
    default_threads, parallel_map, run_replicas, Checkpoint, DhlSystem, IntegritySpec,
    ReliabilitySpec, SimConfig,
};
use dhl_units::{Bytes, Metres, MetresPerSecond, Watts};

use dhl_mlsim::CommFabric as _;

/// Renders Fig. 2 (right): the energy to move 29 PB over routes A0–C.
#[must_use]
pub fn render_fig2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2 (right): energy to move 29 PB over 400 Gb/s routes"
    );
    let _ = writeln!(
        out,
        "{:<6} {:>10} {:>14} {:>14}",
        "route", "power W", "energy MJ", "paper MJ"
    );
    let paper = [13.92, 22.97, 50.05, 174.75, 299.45];
    for (route, want) in Route::all().into_iter().zip(paper) {
        let e = route.transfer_energy(paper_dataset());
        let _ = writeln!(
            out,
            "{:<6} {:>10.2} {:>14.2} {:>14.2}",
            route.name(),
            route.power().value(),
            e.megajoules(),
            want
        );
    }
    out
}

/// Renders Table VI: the design-space exploration (left) and the 29 PB
/// comparison (right).
#[must_use]
pub fn render_table6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VI: DHL design space exploration (29 PB vs 400 Gb/s optical)"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>5} {:>5} | {:>8} {:>8} {:>6} {:>7} {:>8} | {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "m/s",
        "m",
        "TB",
        "kJ",
        "GB/J",
        "s",
        "TB/s",
        "kW",
        "speedup",
        "vsA0",
        "vsA1",
        "vsA2",
        "vsB",
        "vsC"
    );
    for p in paper_table_vi() {
        let l = &p.launch;
        let c = &p.comparison;
        let _ = writeln!(
            out,
            "{:>5.0} {:>5.0} {:>5.0} | {:>8.1} {:>8.1} {:>6.2} {:>7.1} {:>8.1} | {:>8.1}x {:>6.1}x {:>6.1}x {:>6.1}x {:>6.1}x {:>6.1}x",
            p.config.max_speed.value(),
            p.config.track_length.value(),
            p.config.cart_capacity.terabytes(),
            l.energy.kilojoules(),
            l.efficiency.value(),
            l.trip_time.seconds(),
            l.bandwidth.terabytes_per_second(),
            l.peak_power.kilowatts(),
            c.time_speedup,
            c.reduction_vs(RouteId::A0),
            c.reduction_vs(RouteId::A1),
            c.reduction_vs(RouteId::A2),
            c.reduction_vs(RouteId::B),
            c.reduction_vs(RouteId::C),
        );
    }
    out
}

/// Renders Table VII (a) iso-power and (b) iso-time comparisons.
#[must_use]
pub fn render_table7() -> String {
    let workload = DlrmWorkload::paper_dlrm();
    let dhl = DhlConfig::paper_default();
    let budget = DhlFabric::new(dhl.clone(), 1).track_power();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VII(a): time per DLRM iteration at fixed {:.2} kW",
        budget.kilowatts()
    );
    let paper_a = [1.0, 5.7, 9.3, 19.9, 69.1, 118.0];
    let a = iso_power(&workload, &dhl, budget);
    let _ = writeln!(
        out,
        "{:<6} {:>10} {:>12} {:>12} {:>12}",
        "scheme", "kW", "s/iter", "slowdown", "paper"
    );
    for (row, want) in a.rows.iter().zip(paper_a) {
        let _ = writeln!(
            out,
            "{:<6} {:>10.2} {:>12.0} {:>11.1}x {:>11.1}x",
            row.scheme,
            row.power.kilowatts(),
            row.time_per_iteration.seconds(),
            row.factor_vs_dhl,
            want
        );
    }

    let b = iso_time(&workload, &dhl);
    let paper_b = [1.0, 6.4, 10.5, 22.8, 79.4, 135.0];
    let _ = writeln!(
        out,
        "\nTable VII(b): communication power at fixed {:.0} s/iter",
        b.target_time.seconds()
    );
    let _ = writeln!(
        out,
        "{:<6} {:>10} {:>12} {:>12} {:>12}",
        "scheme", "kW", "s/iter", "power x", "paper"
    );
    for (row, want) in b.rows.iter().zip(paper_b) {
        let _ = writeln!(
            out,
            "{:<6} {:>10.2} {:>12.0} {:>11.1}x {:>11.1}x",
            row.scheme,
            row.power.kilowatts(),
            row.time_per_iteration.seconds(),
            row.factor_vs_dhl,
            want
        );
    }
    out
}

/// Renders Table VIII: the commodity cost model.
#[must_use]
pub fn render_table8() -> String {
    let m = CostModel::paper();
    let mut out = String::new();
    let _ = writeln!(out, "Table VIII(a): rail cost by distance");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "m", "aluminium", "pvc rail", "pvc tube", "total"
    );
    for d in [100.0, 500.0, 1000.0] {
        let c = m.rail_cost(Metres::new(d));
        let _ = writeln!(
            out,
            "{:>8.0} {:>12} {:>12} {:>12} {:>12}",
            d,
            c.aluminium.display_dollars(),
            c.pvc_rail.display_dollars(),
            c.pvc_tube.display_dollars(),
            c.total().display_dollars()
        );
    }
    let _ = writeln!(out, "\nTable VIII(b): accelerator cost by top speed");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "m/s", "copper", "vfd", "total"
    );
    for v in [100.0, 200.0, 300.0] {
        let c = m.lim_cost(MetresPerSecond::new(v));
        let _ = writeln!(
            out,
            "{:>8.0} {:>12} {:>12} {:>12}",
            v,
            c.copper.display_dollars(),
            c.vfd.display_dollars(),
            c.total().display_dollars()
        );
    }
    let _ = writeln!(out, "\nTable VIII(c): overall total cost");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "m \\ m/s", "100", "200", "300"
    );
    for d in [100.0, 500.0, 1000.0] {
        let mut row = format!("{d:>8.0}");
        for v in [100.0, 200.0, 300.0] {
            let _ = write!(
                row,
                " {:>12}",
                m.total_cost(Metres::new(d), MetresPerSecond::new(v))
                    .display_dollars()
            );
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders Fig. 6: iteration time vs communication power for DHL designs
/// and network baselines.
#[must_use]
pub fn render_fig6() -> String {
    let workload = DlrmWorkload::paper_dlrm();
    let configs = [
        DhlConfig::with_ssd_count(MetresPerSecond::new(100.0), Metres::new(500.0), 16),
        DhlConfig::paper_default(),
        DhlConfig::with_ssd_count(MetresPerSecond::new(300.0), Metres::new(500.0), 64),
    ];
    let grid: Vec<Watts> = (1..=32)
        .map(|i| Watts::new(f64::from(i) * 1_000.0))
        .collect();
    let series = fig6(
        &workload,
        &configs,
        &[RouteId::A0, RouteId::B, RouteId::C],
        &grid,
        8,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6: time per iteration (s) vs communication power (kW), log-scale data"
    );
    for s in &series {
        let _ = writeln!(out, "  {}:", s.scheme);
        for (p, t) in &s.points {
            let _ = writeln!(
                out,
                "    {:>8.2} kW  {:>12.1} s",
                p.kilowatts(),
                t.seconds()
            );
        }
    }
    out
}

/// Renders the §V-E crossover analysis.
#[must_use]
pub fn render_crossover() -> String {
    let c = crossover(&paper_minimal_dhl());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Minimum specifications for DHL to outperform optical (§V-E)"
    );
    let _ = writeln!(out, "  minimal DHL (10 m, 10 m/s, 360 GB cart):");
    let _ = writeln!(
        out,
        "    one-way trip time  {:>8.3} s   (paper: 7.2 s)",
        c.dhl_time.seconds()
    );
    let _ = writeln!(
        out,
        "    launch energy      {:>8.2} J   (paper: 'minuscule')",
        c.dhl_energy.value()
    );
    let _ = writeln!(
        out,
        "    breakeven dataset  {:>8.1} GB  (paper: 360 GB)",
        c.breakeven_dataset.gigabytes()
    );
    let _ = writeln!(
        out,
        "    optical A0 energy  {:>8.1} J   (paper: 144 J; 24 W for the full trip gives {:.1} J)",
        c.optical_energy.value(),
        c.optical_energy.value()
    );
    out
}

/// Renders the DES ablations: analytical vs simulated bulk transfer,
/// time-model, braking, fleet/dock pipelining, and dual-track variants.
#[must_use]
pub fn render_des_ablation() -> String {
    let dataset = Bytes::from_petabytes(29.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DES ablations: 29 PB bulk transfer (analytical model vs simulator)"
    );
    let _ = writeln!(
        out,
        "{:<42} {:>12} {:>12} {:>10}",
        "variant", "time s", "energy MJ", "avg kW"
    );

    let analytical = dhl_core::BulkTransfer::evaluate(&DhlConfig::paper_default(), dataset);
    let _ = writeln!(
        out,
        "{:<42} {:>12.1} {:>12.3} {:>10.2}",
        "analytical (serial round trips)",
        analytical.time.seconds(),
        analytical.energy.megajoules(),
        analytical.energy.value() / analytical.time.seconds() / 1000.0
    );

    let variants: Vec<(String, SimConfig)> = vec![
        (
            "DES serial (1 cart, 1 dock)".into(),
            SimConfig::paper_serial(),
        ),
        (
            "DES pipelined (8 carts, 4 docks)".into(),
            SimConfig::paper_default(),
        ),
        ("DES pipelined + dual track".into(), {
            let mut c = SimConfig::paper_default();
            c.dual_track = true;
            c
        }),
        ("DES pipelined + eddy-current braking".into(), {
            let mut c = SimConfig::paper_default();
            c.dual_track = true;
            c.braking = BrakingSystem::EddyCurrent;
            c
        }),
        ("DES pipelined + regenerative braking".into(), {
            let mut c = SimConfig::paper_default();
            c.braking = BrakingSystem::regenerative(0.5).expect("0.5 in range");
            c
        }),
        ("DES full-trapezoid time model".into(), {
            let mut c = SimConfig::paper_default();
            c.time_model = TimeModel::FullTrapezoid;
            c
        }),
        ("DES 16 carts, 8 docks".into(), {
            let mut c = SimConfig::paper_default();
            c.num_carts = 16;
            c.endpoints[0].docks = 16;
            c.endpoints[1].docks = 8;
            c
        }),
    ];
    // Fan the independent DES variants across worker threads; results come
    // back in input order, so the table is identical to the serial loop.
    let rows = parallel_map(variants, default_threads(), |(name, cfg)| {
        let report = DhlSystem::new(cfg)
            .expect("valid variant")
            .run_bulk_transfer(dataset)
            .expect("converges");
        (name, report)
    });
    for (name, report) in rows {
        let _ = writeln!(
            out,
            "{:<42} {:>12.1} {:>12.3} {:>10.2}",
            name,
            report.completion_time.seconds(),
            report.total_energy.megajoules(),
            report.average_power.kilowatts()
        );
    }

    let des_fabric = DesDhlFabric::paper_default();
    let ideal = DhlFabric::paper_default();
    let _ = writeln!(
        out,
        "\nmlsim delivery-time check: idealised link {:.0} s vs DES {:.0} s",
        ideal.delivery_time(dataset).seconds(),
        des_fabric.delivery_time(dataset).seconds()
    );
    out
}

fn sensitivity_docking() -> String {
    use dhl_core::docking_time_sweep;
    use dhl_units::Seconds;

    let base = DhlConfig::paper_default();
    let mut out = String::new();
    let _ = writeln!(out, "Sensitivity: dock/undock time (§V-A observation a)");
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>12}",
        "dock s", "trip s", "TB/s", "dock frac"
    );
    for row in docking_time_sweep(&base, &[0.0, 1.0, 2.0, 3.0, 5.0].map(Seconds::new)) {
        let _ = writeln!(
            out,
            "{:>8.1} {:>10.2} {:>10.1} {:>11.1}%",
            row.dock_time.seconds(),
            row.metrics.trip_time.seconds(),
            row.metrics.bandwidth.terabytes_per_second(),
            row.docking_fraction * 100.0
        );
    }
    out
}

fn sensitivity_acceleration() -> String {
    use dhl_core::acceleration_sweep;
    use dhl_units::MetresPerSecondSquared;

    let base = DhlConfig::paper_default();
    let mut out = String::new();
    let _ = writeln!(out, "\nSensitivity: acceleration rate (§V-A note)");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10}",
        "m/s^2", "peak kW", "LIM m", "trip s"
    );
    for row in acceleration_sweep(
        &base,
        &[250.0, 500.0, 1000.0, 2000.0].map(MetresPerSecondSquared::new),
    ) {
        let _ = writeln!(
            out,
            "{:>10.0} {:>10.1} {:>10.1} {:>10.2}",
            row.acceleration.value(),
            row.metrics.peak_power.kilowatts(),
            row.lim_length.value(),
            row.metrics.trip_time.seconds()
        );
    }
    out
}

fn sensitivity_density() -> String {
    use dhl_core::density_scaling;

    let base = DhlConfig::paper_default();
    let mut out = String::new();
    let _ = writeln!(out, "\nProjection: NAND density scaling (§II-A)");
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>10} {:>10}",
        "x", "cart TB", "TB/s", "GB/J"
    );
    for row in density_scaling(&base, &[1.0, 2.0, 4.0, 8.0]) {
        let _ = writeln!(
            out,
            "{:>6.0} {:>12.0} {:>10.1} {:>10.1}",
            row.density_factor,
            row.cart_capacity.terabytes(),
            row.metrics.bandwidth.terabytes_per_second(),
            row.metrics.efficiency.value()
        );
    }
    out
}

fn sensitivity_campaigns() -> String {
    use dhl_mlsim::{OpticalFabric, TrainingCampaign};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nTraining campaigns: comm energy, DHL vs route B at 1.75 kW (§II-D.3)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>14} {:>14} {:>8}",
        "models", "iters", "DHL MJ", "optical MJ", "saving"
    );
    let optical = OpticalFabric::max_for_power(dhl_net::route::Route::b(), Watts::new(1_750.0));
    for (models, iters) in [(1u32, 1u32), (5, 10), (20, 100)] {
        let campaign = TrainingCampaign::paper_default(models, iters);
        let d = campaign.evaluate(&DhlFabric::paper_default());
        let o = campaign.evaluate(&optical);
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>14.2} {:>14.2} {:>7.1}x",
            models,
            iters,
            d.comm_energy.megajoules(),
            o.comm_energy.megajoules(),
            o.comm_energy.value() / d.comm_energy.value()
        );
    }
    out
}

/// Renders the sensitivity sweeps (§V-A observations, §II-A scaling) and
/// the §II-D.3 training-campaign amortisation. The four independent
/// sections run on the parallel driver and concatenate in order, so the
/// output is identical to the serial composition.
#[must_use]
pub fn render_sensitivity() -> String {
    let sections: Vec<fn() -> String> = vec![
        sensitivity_docking,
        sensitivity_acceleration,
        sensitivity_density,
        sensitivity_campaigns,
    ];
    parallel_map(sections, default_threads(), |f| f()).concat()
}

/// Renders the fleet-sizing / total-cost-of-ownership analysis (beyond the
/// paper: Table VIII plus carts).
#[must_use]
pub fn render_fleet() -> String {
    use dhl_core::{plan_for_bandwidth, CartCostModel, PipelineModel};
    use dhl_units::BytesPerSecond;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet sizing: dollars per sustained TB/s (Table VIII + carts)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "pipeline model", "tracks", "carts", "TB/s", "infra", "carts $", "$ per TB/s"
    );
    for (name, model) in [
        ("serial round trips", PipelineModel::SerialRoundTrips),
        ("pipelined one-way", PipelineModel::PipelinedOneWay),
        ("headway limited", PipelineModel::HeadwayLimited),
    ] {
        let plan = plan_for_bandwidth(
            BytesPerSecond::from_terabytes_per_second(100.0),
            &DhlConfig::paper_default(),
            model,
            &CostModel::paper(),
            &CartCostModel::paper_era(),
        );
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>10.1} {:>12} {:>12} {:>12.0}",
            name,
            plan.tracks,
            plan.carts_per_track * plan.tracks,
            plan.sustained_bandwidth.terabytes_per_second(),
            plan.infrastructure_cost.display_dollars(),
            plan.cart_cost.display_dollars(),
            plan.usd_per_terabyte_per_second()
        );
    }
    out
}

/// A table/figure renderer, as listed by [`all_reports`].
pub type ReportFn = fn() -> String;

/// All renderers, keyed by the names the `report` binary accepts.
#[must_use]
pub fn all_reports() -> Vec<(&'static str, ReportFn)> {
    vec![
        ("fig2", render_fig2 as ReportFn),
        ("table6", render_table6),
        ("table7", render_table7),
        ("table8", render_table8),
        ("fig6", render_fig6),
        ("crossover", render_crossover),
        ("ablation", render_des_ablation),
        ("sensitivity", render_sensitivity),
        ("fleet", render_fleet),
    ]
}

/// Runs the engine event-throughput family: the `sim/events_per_sec`
/// prefix the CI throughput gate filters on.
///
/// Three workload shapes:
///
/// - **queue churn** — a classic hold model (constant events in flight,
///   every operation pops the head and schedules a replacement) on the
///   calendar [`dhl_sim::engine::EventQueue`], isolating the queue from
///   the rest of the simulator. The identical workload also runs on the
///   retired `BinaryHeap`-backed [`dhl_sim::engine::ReferenceQueue`], so
///   the speedup is measured live on every run rather than claimed from a
///   historical baseline;
/// - **steady state** — a full 2 PB bulk-transfer mission;
/// - **checkpoint heavy** — the same mission interrupted every 60
///   simulated seconds by a checkpoint → JSON → parse → resume round trip.
///
/// The derived events/sec rates are printed to stderr alongside the
/// recorded ns/iter cases.
#[must_use]
pub fn events_per_sec_cases() -> Vec<report_file::BenchCase> {
    use dhl_sim::engine::{EventQueue, ReferenceQueue};
    use dhl_units::Seconds;
    use report_file::BenchCase;

    // Held-in-flight event count for the churn cases: deep enough that
    // the reference heap's O(log n) sift chases dependent loads through
    // cache- and TLB-missing levels — the regime the calendar queue's
    // O(1) buckets are built for. Fast mode holds a shallower backlog so
    // CI smoke runs spend their time measuring, not seeding.
    let pending: u32 = if harness::fast_mode() {
        1_048_576
    } else {
        12_582_912
    };

    fn lcg_delay(x: &mut u64) -> f64 {
        *x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((*x >> 11) as f64) / (1u64 << 53) as f64 // uniform [0, 1)
    }

    let mut cases = Vec::new();

    let mut q: EventQueue<u32> = EventQueue::new();
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..pending {
        q.schedule(Seconds::new(lcg_delay(&mut seed)), i);
    }
    let churn = harness::bench_function("sim/events_per_sec/queue_churn", || {
        let (_, id) = q.pop().expect("hold model never drains");
        q.schedule(Seconds::new(lcg_delay(&mut seed)), id);
        id
    });
    cases.push(BenchCase {
        result: churn.clone(),
        metrics: None,
    });

    let mut r: ReferenceQueue<u32> = ReferenceQueue::new();
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..pending {
        r.schedule(Seconds::new(lcg_delay(&mut seed)), i);
    }
    let reference = harness::bench_function("sim/events_per_sec/queue_churn_reference", || {
        let (_, id) = r.pop().expect("hold model never drains");
        r.schedule(Seconds::new(lcg_delay(&mut seed)), id);
        id
    });
    cases.push(BenchCase {
        result: reference.clone(),
        metrics: None,
    });
    eprintln!(
        "sim/events_per_sec: calendar queue {:.1} ns/event ({:.2}M ev/s) vs reference heap {:.1} ns/event — {:.2}x on queue churn",
        churn.mean_ns,
        1e3 / churn.mean_ns,
        reference.mean_ns,
        reference.mean_ns / churn.mean_ns
    );

    let steady_events = DhlSystem::new(SimConfig::paper_default())
        .expect("valid paper config")
        .run_bulk_transfer(Bytes::from_petabytes(2.0))
        .expect("converges")
        .events_processed;
    let steady = harness::bench_function("sim/events_per_sec/steady_state", || {
        DhlSystem::new(SimConfig::paper_default())
            .expect("valid paper config")
            .run_bulk_transfer(Bytes::from_petabytes(2.0))
            .expect("converges")
            .events_processed
    });
    eprintln!(
        "sim/events_per_sec: steady state {} events per mission, {:.2}M ev/s end to end",
        steady_events,
        f64::from(u32::try_from(steady_events).unwrap_or(u32::MAX)) * 1e3 / steady.mean_ns
    );
    cases.push(BenchCase {
        result: steady,
        metrics: None,
    });

    let checkpoint_cfg = SimConfig::paper_default();
    let heavy = harness::bench_function("sim/events_per_sec/checkpoint_heavy", || {
        let mut sys = DhlSystem::new(checkpoint_cfg.clone()).expect("valid paper config");
        sys.begin_bulk_transfer(Bytes::from_petabytes(2.0))
            .expect("mission accepted");
        let mut horizon = 60.0;
        loop {
            let drained = sys.run_until(Seconds::new(horizon)).expect("runs");
            if drained {
                break;
            }
            let json = sys.checkpoint().to_json();
            let restored = Checkpoint::from_json(&json).expect("own output parses");
            sys = DhlSystem::resume(checkpoint_cfg.clone(), &restored)
                .expect("same configuration fingerprint");
            horizon += 60.0;
        }
        sys.finish().events_processed
    });
    eprintln!(
        "sim/events_per_sec: checkpoint-heavy mission {:.2}M ev/s including serialise/resume every 60 sim-seconds",
        f64::from(u32::try_from(steady_events).unwrap_or(u32::MAX)) * 1e3 / heavy.mean_ns
    );
    cases.push(BenchCase {
        result: heavy,
        metrics: None,
    });
    cases
}

/// Runs the scheduler serving-throughput family: the `sched/requests_per_sec`
/// prefix the CI scheduler gate filters on.
///
/// Two kinds of case:
///
/// - **service churn** — a hold model on the indexed
///   [`dhl_sched::service_queue::ServiceQueue`] (constant pending set;
///   every operation serves the best entry and admits a replacement with a
///   later arrival), isolating the service structure from the rest of the
///   scheduler. The identical operation stream also runs on the retired
///   O(n)-scan [`dhl_sched::reference_service::ReferenceServiceQueue`], so
///   the speedup is measured live on every run — and asserted ≥5× — rather
///   than claimed from a historical number;
/// - **end-to-end open-loop runs** — full `Scheduler::try_run` sweeps under
///   admission control: a saturating Poisson mix (1 M arrivals, 100 k in
///   fast mode), a high-tenant-count variant, a retry-heavy variant with
///   in-transit losses, and a shortest-job-first variant over mixed cart
///   counts.
///
/// The derived requests/sec rates are printed to stderr alongside the
/// recorded ns/iter cases.
///
/// # Panics
///
/// Panics if the indexed structure fails to beat the reference pin by ≥5×
/// on the churn case — the regression this family exists to catch.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn requests_per_sec_cases() -> Vec<report_file::BenchCase> {
    use dhl_sched::admission::{AdmissionSpec, OverloadPolicy, RetryBudgetSpec, TenantId};
    use dhl_sched::placement::{DatasetId, Placement};
    use dhl_sched::reference_service::{ReferencePending, ReferenceServiceQueue};
    use dhl_sched::scheduler::{
        FaultAwareness, Policy, Priority, RequestId, ScheduleOutcome, Scheduler, TransferRequest,
    };
    use dhl_sched::service_queue::{ServiceEntry, ServiceQueue};
    use dhl_sim::{ArrivalGenerator, ArrivalSpec};
    use dhl_storage::datasets;
    use dhl_units::Seconds;
    use report_file::BenchCase;

    fn lcg(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        *x >> 11
    }

    /// The next admitted entry for the hold model: arrivals advance
    /// monotonically (the open-loop admission invariant), priorities and
    /// cart counts mix across classes.
    fn churn_entry(id: u64, rng: &mut u64, arrival: &mut f64) -> ServiceEntry {
        *arrival += (lcg(rng) % 1000) as f64 * 0.017;
        let priority = match lcg(rng) % 3 {
            0 => Priority::Background,
            1 => Priority::Normal,
            _ => Priority::Urgent,
        };
        let carts = 1 + (lcg(rng) % 36) as usize;
        let service_s = carts as f64 * 17.2;
        ServiceEntry {
            id: RequestId(id),
            req: TransferRequest {
                dataset: DatasetId(lcg(rng) % 3),
                destination: 1,
                priority,
                arrival: Seconds::new(*arrival),
                dwell: Seconds::ZERO,
                tenant: TenantId((lcg(rng) % 64) as u32),
                deadline: None,
            },
            carts,
            service_s,
        }
    }

    let mut cases = Vec::new();

    // Held-pending size for the churn pair: deep enough that the retired
    // scan's O(n) walk per service decision (and the Vec::remove shift
    // behind it) dominates — the regime the per-class rings and B-trees
    // are built for. Fast mode holds a shallower backlog for CI smoke.
    let held: u64 = if harness::fast_mode() {
        131_072
    } else {
        1_048_576
    };

    let mut q = ServiceQueue::new(Policy::PriorityFifo);
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut arrival = 0.0f64;
    let mut next_id = 0u64;
    for _ in 0..held {
        q.push(churn_entry(next_id, &mut rng, &mut arrival));
        next_id += 1;
    }
    let churn = harness::bench_function("sched/requests_per_sec/service_churn", || {
        let served = q.pop_next().expect("hold model never drains");
        q.push(churn_entry(next_id, &mut rng, &mut arrival));
        next_id += 1;
        served.id.0
    });
    cases.push(BenchCase {
        result: churn.clone(),
        metrics: None,
    });

    let mut r = ReferenceServiceQueue::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut arrival = 0.0f64;
    let mut next_id = 0u64;
    for _ in 0..held {
        let e = churn_entry(next_id, &mut rng, &mut arrival);
        r.push(ReferencePending {
            id: e.id,
            req: e.req,
            carts: e.carts,
            service_s: e.service_s,
        });
        next_id += 1;
    }
    let reference =
        harness::bench_function("sched/requests_per_sec/service_churn_reference", || {
            let served = r
                .pop_next(Policy::PriorityFifo)
                .expect("hold model never drains");
            let e = churn_entry(next_id, &mut rng, &mut arrival);
            r.push(ReferencePending {
                id: e.id,
                req: e.req,
                carts: e.carts,
                service_s: e.service_s,
            });
            next_id += 1;
            served.id.0
        });
    cases.push(BenchCase {
        result: reference.clone(),
        metrics: None,
    });
    let ratio = reference.mean_ns / churn.mean_ns;
    eprintln!(
        "sched/requests_per_sec: indexed service queue {:.1} ns/op ({:.2}M req/s) vs reference scan {:.1} ns/op — {:.2}x on service churn ({held} pending)",
        churn.mean_ns,
        1e3 / churn.mean_ns,
        reference.mean_ns,
        ratio
    );
    assert!(
        ratio >= 5.0,
        "indexed service queue must beat the reference pin by ≥5x on churn \
         (measured {ratio:.2}x at {held} pending)"
    );

    // End-to-end open-loop sweeps: saturating Poisson arrival streams
    // pushed through the full admission controller and serving loop.
    let open_loop_run = |policy: Policy,
                         arrivals: usize,
                         tenants: u32,
                         spec: AdmissionSpec,
                         faults: Option<FaultAwareness>,
                         mixed_sizes: bool|
     -> ScheduleOutcome {
        let mut p = Placement::new(Bytes::from_terabytes(256.0));
        let small = p.store(datasets::laion_5b()); // 1 cart
        let big = p.store(datasets::common_crawl()); // 36 carts
        let mut sched = Scheduler::new(SimConfig::paper_default(), p)
            .expect("valid")
            .with_policy(policy)
            .with_admission(spec);
        if let Some(f) = faults {
            sched = sched.with_faults(f);
        }
        // Metrics off for the timed runs: the family measures the serving
        // path, not the observability registry's hash maps.
        sched.set_metrics_enabled(false);
        let arrival_spec =
            ArrivalSpec::poisson(4.0 / 17.2, Seconds::new(1e15), 11).with_tenants(tenants);
        for (i, arrival) in ArrivalGenerator::new(&arrival_spec)
            .take(arrivals)
            .enumerate()
        {
            let dataset = if mixed_sizes && i % 7 == 0 {
                big
            } else {
                small
            };
            let priority = match i % 3 {
                0 => Priority::Background,
                1 => Priority::Normal,
                _ => Priority::Urgent,
            };
            sched.submit(
                TransferRequest::new(dataset, 1, priority, Seconds::new(arrival.at.seconds()))
                    .with_tenant(TenantId(arrival.tenant)),
            );
        }
        sched.run()
    };
    let report_rate = |case: &harness::CaseResult, arrivals: usize| {
        eprintln!(
            "sched/requests_per_sec: {} admits+serves {:.2}M arrivals/s end to end",
            case.name,
            arrivals as f64 * 1e3 / case.mean_ns
        );
    };

    // Saturating Poisson mix: a deep pending queue (the churn regime) with
    // rejection at the rim.
    let arrivals = if harness::fast_mode() {
        100_000
    } else {
        1_000_000
    };
    let poisson = harness::bench_function("sched/requests_per_sec/poisson_mix", || {
        open_loop_run(
            Policy::PriorityFifo,
            arrivals,
            64,
            AdmissionSpec {
                max_pending_global: 1 << 16,
                max_pending_per_tenant: 1 << 16,
                policy: OverloadPolicy::Reject,
                ..AdmissionSpec::default()
            },
            None,
            false,
        )
        .admission
        .expect("open loop")
        .served
    });
    report_rate(&poisson, arrivals);
    cases.push(BenchCase {
        result: poisson,
        metrics: None,
    });

    // High tenant count: thousands of per-tenant pending counters and
    // small per-tenant caps, the regime the O(n) filter count collapsed in.
    let tenant_arrivals = if harness::fast_mode() {
        32_768
    } else {
        262_144
    };
    let high_tenant = harness::bench_function("sched/requests_per_sec/high_tenant_mix", || {
        open_loop_run(
            Policy::PriorityFifo,
            tenant_arrivals,
            4_096,
            AdmissionSpec {
                max_pending_global: 16_384,
                max_pending_per_tenant: 8,
                policy: OverloadPolicy::ShedLowestPriority,
                ..AdmissionSpec::default()
            },
            None,
            false,
        )
        .admission
        .expect("open loop")
        .served
    });
    report_rate(&high_tenant, tenant_arrivals);
    cases.push(BenchCase {
        result: high_tenant,
        metrics: None,
    });

    // Retry heavy: in-transit losses burn budgeted, backed-off retries on
    // every serviced request.
    let retry_arrivals = if harness::fast_mode() {
        16_384
    } else {
        131_072
    };
    let retry_heavy = harness::bench_function("sched/requests_per_sec/retry_heavy", || {
        open_loop_run(
            Policy::PriorityFifo,
            retry_arrivals,
            64,
            AdmissionSpec {
                max_pending_global: 8_192,
                max_pending_per_tenant: 1_024,
                policy: OverloadPolicy::Reject,
                retry: RetryBudgetSpec {
                    tokens_per_tenant: 1 << 20,
                    max_attempts_per_request: 6,
                    ..RetryBudgetSpec::default()
                },
                ..AdmissionSpec::default()
            },
            Some(FaultAwareness {
                loss_probability: 0.3,
                max_attempts: 6,
                seed: 42,
                downtime: Vec::new(),
            }),
            false,
        )
        .admission
        .expect("open loop")
        .retries
    });
    report_rate(&retry_heavy, retry_arrivals);
    cases.push(BenchCase {
        result: retry_heavy,
        metrics: None,
    });

    // Shortest-job-first over mixed cart counts: exercises the (carts, id)
    // B-tree index instead of the FIFO rings.
    let sjf_arrivals = if harness::fast_mode() {
        32_768
    } else {
        262_144
    };
    let sjf = harness::bench_function("sched/requests_per_sec/sjf_mix", || {
        open_loop_run(
            Policy::ShortestJobFirst,
            sjf_arrivals,
            64,
            AdmissionSpec {
                max_pending_global: 1 << 15,
                max_pending_per_tenant: 1 << 15,
                policy: OverloadPolicy::Reject,
                ..AdmissionSpec::default()
            },
            None,
            true,
        )
        .admission
        .expect("open loop")
        .served
    });
    report_rate(&sjf, sjf_arrivals);
    cases.push(BenchCase {
        result: sjf,
        metrics: None,
    });

    cases
}

/// Runs the observability recording-throughput family: the
/// `obs/record_throughput` prefix the CI observability gate filters on.
///
/// Three kinds of case:
///
/// - **hot-path record ops** — tight counter/gauge/histogram recording
///   loops on the dense-slot [`dhl_obs::MetricsRegistry`] through
///   pre-interned handles, cycling a pool of realistic metric names. The
///   identical operation stream also runs on the retired map-walk
///   [`dhl_obs::reference_registry::ReferenceRegistry`], so the speedup is
///   measured live on every run — and asserted ≥5× for counters and
///   histograms — rather than claimed from a historical number;
/// - **disabled no-op** — the same handle ops against a disabled registry,
///   quantifying the floor a metrics-off run pays per call site;
/// - **metrics-on vs metrics-off deltas** — the `sim/events_per_sec`
///   steady-state mission and a `sched/requests_per_sec`-shaped open-loop
///   sweep, each run with the registry enabled and disabled, with the
///   measured observability tax printed to stderr.
///
/// # Panics
///
/// Panics if the handle path fails to beat the reference pin by ≥5× on the
/// counter or histogram record case — the regression this family exists to
/// catch.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn record_throughput_cases() -> Vec<report_file::BenchCase> {
    use dhl_obs::reference_registry::ReferenceRegistry;
    use dhl_obs::MetricsRegistry;
    use dhl_sched::admission::{AdmissionSpec, OverloadPolicy, TenantId};
    use dhl_sched::placement::Placement;
    use dhl_sched::scheduler::{Priority, Scheduler, TransferRequest};
    use dhl_sim::{ArrivalGenerator, ArrivalSpec};
    use dhl_storage::datasets;
    use dhl_units::Seconds;
    use report_file::BenchCase;

    // A realistic name pool: the shared `sim.` / `sched.` prefixes are
    // exactly what the retired registry's per-record string comparisons
    // paid for on every hot-path call, so the reference side of each pair
    // walks representative keys, not toy ones.
    const COUNTERS: [&str; 16] = [
        "sim.deliveries",
        "sim.cart_stalls",
        "sim.carts_launched",
        "sim.repressurisations",
        "sim.ssd_failures",
        "sim.redeliveries",
        "sim.shards_scanned",
        "sim.events",
        "sched.requests",
        "sched.deliveries",
        "sched.offered",
        "sched.admitted",
        "sched.shed",
        "sched.retries",
        "sched.deadline_hits",
        "sched.deadline_misses",
    ];
    const GAUGES: [&str; 16] = [
        "sim.completion_s",
        "sim.wall_time_s",
        "sim.sim_seconds_per_wall_second",
        "sim.events_per_wall_second",
        "sched.makespan_s",
        "sched.track_utilisation",
        "sched.track_downtime_s",
        "sched.dock_downtime_s",
        "sched.wall_time_s",
        "sched.goodput_bytes_per_s",
        "net.phase.wake_s",
        "net.phase.transfer_s",
        "net.phase.idle_s",
        "net.phase.wake_j",
        "net.phase.transfer_j",
        "net.phase.idle_j",
    ];
    const HISTOGRAMS: [&str; 16] = [
        "sim.transit_s",
        "sim.queue_depth",
        "sim.dock_recovery_s",
        "sim.verify_s",
        "sim.reconstruction_s",
        "sched.placement_latency_s",
        "sched.delivery_latency_s",
        "sched.retry_backoff_s",
        "sim.a.transit_s",
        "sim.b.transit_s",
        "sim.c.transit_s",
        "sim.d.transit_s",
        "sched.a.latency_s",
        "sched.b.latency_s",
        "sched.c.latency_s",
        "sched.d.latency_s",
    ];

    fn lcg(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        *x >> 11
    }

    /// A positive, finite value spanning several histogram buckets.
    fn lcg_value(x: &mut u64) -> f64 {
        (lcg(x) % 1_000_000) as f64 * 1e-3 + 1e-3
    }

    // Value stream for the gauge/histogram pairs, generated outside the
    // timed loops so each pair measures recording cost, not the RNG.
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    let values: Vec<f64> = (0..1024).map(|_| lcg_value(&mut seed)).collect();

    let mut cases = Vec::new();

    // Counter pair: handle add vs reference name-walk inc.
    let mut reg = MetricsRegistry::enabled();
    let counter_ids: Vec<_> = COUNTERS
        .into_iter()
        .map(|name| reg.register_counter(name))
        .collect();
    let mut n = 0u64;
    let counter = harness::bench_function("obs/record_throughput/counter_add", || {
        let i = (n & 15) as usize;
        n += 1;
        reg.add(counter_ids[i], 1);
        i
    });
    cases.push(BenchCase {
        result: counter.clone(),
        metrics: None,
    });

    let mut r = ReferenceRegistry::enabled();
    let mut n = 0u64;
    let counter_ref = harness::bench_function("obs/record_throughput/counter_reference", || {
        let i = (n & 15) as usize;
        n += 1;
        r.inc(COUNTERS[i], 1);
        i
    });
    cases.push(BenchCase {
        result: counter_ref.clone(),
        metrics: None,
    });
    // Ratios come from the median-of-batches, not the mean: a single
    // preemption spike on a shared runner can multiply a ~2 ns op's mean
    // several-fold, and the assert below must gate the code, not the
    // scheduler.
    let counter_ratio = counter_ref.p50_ns / counter.p50_ns;
    eprintln!(
        "obs/record_throughput: counter add {:.1} ns/op ({:.0}M rec/s) vs reference {:.1} ns/op — {:.2}x",
        counter.p50_ns,
        1e3 / counter.p50_ns,
        counter_ref.p50_ns,
        counter_ratio
    );

    // Gauge pair: handle set vs reference name-walk set.
    let mut reg = MetricsRegistry::enabled();
    let gauge_ids: Vec<_> = GAUGES
        .into_iter()
        .map(|name| reg.register_gauge(name))
        .collect();
    let mut n = 0u64;
    let gauge = harness::bench_function("obs/record_throughput/gauge_set", || {
        let i = (n & 1023) as usize;
        n += 1;
        reg.set(gauge_ids[i & 15], values[i]);
        i
    });
    cases.push(BenchCase {
        result: gauge.clone(),
        metrics: None,
    });

    let mut r = ReferenceRegistry::enabled();
    let mut n = 0u64;
    let gauge_ref = harness::bench_function("obs/record_throughput/gauge_reference", || {
        let i = (n & 1023) as usize;
        n += 1;
        r.set_gauge(GAUGES[i & 15], values[i]);
        i
    });
    cases.push(BenchCase {
        result: gauge_ref.clone(),
        metrics: None,
    });
    eprintln!(
        "obs/record_throughput: gauge set {:.1} ns/op vs reference {:.1} ns/op — {:.2}x",
        gauge.p50_ns,
        gauge_ref.p50_ns,
        gauge_ref.p50_ns / gauge.p50_ns
    );

    // Histogram pair: handle record (to_bits exponent bucketing) vs
    // reference name walk plus float-log bucketing.
    let mut reg = MetricsRegistry::enabled();
    let histogram_ids: Vec<_> = HISTOGRAMS
        .into_iter()
        .map(|name| reg.register_histogram(name))
        .collect();
    let mut n = 0u64;
    let histogram = harness::bench_function("obs/record_throughput/histogram_record", || {
        let i = (n & 1023) as usize;
        n += 1;
        reg.record(histogram_ids[i & 15], values[i]);
        i
    });
    cases.push(BenchCase {
        result: histogram.clone(),
        metrics: None,
    });

    let mut r = ReferenceRegistry::enabled();
    let mut n = 0u64;
    let histogram_ref =
        harness::bench_function("obs/record_throughput/histogram_reference", || {
            let i = (n & 1023) as usize;
            n += 1;
            r.observe(HISTOGRAMS[i & 15], values[i]);
            i
        });
    cases.push(BenchCase {
        result: histogram_ref.clone(),
        metrics: None,
    });
    let histogram_ratio = histogram_ref.p50_ns / histogram.p50_ns;
    eprintln!(
        "obs/record_throughput: histogram record {:.1} ns/op ({:.0}M rec/s) vs reference {:.1} ns/op — {:.2}x",
        histogram.p50_ns,
        1e3 / histogram.p50_ns,
        histogram_ref.p50_ns,
        histogram_ratio
    );
    assert!(
        counter_ratio >= 5.0,
        "handle-path counter add must beat the reference pin by ≥5x \
         (measured {counter_ratio:.2}x)"
    );
    assert!(
        histogram_ratio >= 5.0,
        "handle-path histogram record must beat the reference pin by ≥5x \
         (measured {histogram_ratio:.2}x)"
    );

    // Disabled floor: the same three handle ops against a metrics-off
    // registry — the cost every instrumented call site pays when
    // observability is switched off.
    let mut reg = MetricsRegistry::disabled();
    let c = reg.register_counter("sim.deliveries");
    let g = reg.register_gauge("sim.completion_s");
    let h = reg.register_histogram("sim.transit_s");
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    let disabled = harness::bench_function("obs/record_throughput/disabled_noop", || {
        let v = lcg_value(&mut seed);
        reg.add(c, 1);
        reg.set(g, v);
        reg.record(h, v);
        v
    });
    eprintln!(
        "obs/record_throughput: disabled registry {:.1} ns for a counter+gauge+histogram triple",
        disabled.mean_ns
    );
    cases.push(BenchCase {
        result: disabled,
        metrics: None,
    });

    // Metrics tax on the engine: the `sim/events_per_sec` steady-state
    // mission with the registry enabled vs disabled.
    let sim_mission = |metrics_on: bool| {
        let mut sys = DhlSystem::new(SimConfig::paper_default()).expect("valid paper config");
        sys.set_metrics_enabled(metrics_on);
        sys.run_bulk_transfer(Bytes::from_petabytes(2.0))
            .expect("converges")
            .events_processed
    };
    let sim_on = harness::bench_function("obs/record_throughput/sim_mission_metrics_on", || {
        sim_mission(true)
    });
    let sim_off = harness::bench_function("obs/record_throughput/sim_mission_metrics_off", || {
        sim_mission(false)
    });
    eprintln!(
        "obs/record_throughput: sim/events_per_sec steady-state mission {:.0} ns with metrics vs {:.0} ns without — {:+.2}% observability tax",
        sim_on.mean_ns,
        sim_off.mean_ns,
        (sim_on.mean_ns / sim_off.mean_ns - 1.0) * 100.0
    );
    cases.push(BenchCase {
        result: sim_on,
        metrics: None,
    });
    cases.push(BenchCase {
        result: sim_off,
        metrics: None,
    });

    // Metrics tax on the scheduler: a `sched/requests_per_sec`-shaped
    // open-loop Poisson sweep with the registry enabled vs disabled.
    let sched_arrivals = if harness::fast_mode() {
        32_768
    } else {
        262_144
    };
    let open_loop = |metrics_on: bool| {
        let mut p = Placement::new(Bytes::from_terabytes(256.0));
        let dataset = p.store(datasets::laion_5b());
        let mut sched = Scheduler::new(SimConfig::paper_default(), p)
            .expect("valid")
            .with_admission(AdmissionSpec {
                max_pending_global: 1 << 16,
                max_pending_per_tenant: 1 << 16,
                policy: OverloadPolicy::Reject,
                ..AdmissionSpec::default()
            });
        sched.set_metrics_enabled(metrics_on);
        let arrival_spec =
            ArrivalSpec::poisson(4.0 / 17.2, Seconds::new(1e15), 11).with_tenants(64);
        for (i, arrival) in ArrivalGenerator::new(&arrival_spec)
            .take(sched_arrivals)
            .enumerate()
        {
            let priority = match i % 3 {
                0 => Priority::Background,
                1 => Priority::Normal,
                _ => Priority::Urgent,
            };
            sched.submit(
                TransferRequest::new(dataset, 1, priority, Seconds::new(arrival.at.seconds()))
                    .with_tenant(TenantId(arrival.tenant)),
            );
        }
        sched.run().admission.expect("open loop").served
    };
    let sched_on =
        harness::bench_function("obs/record_throughput/sched_open_loop_metrics_on", || {
            open_loop(true)
        });
    let sched_off =
        harness::bench_function("obs/record_throughput/sched_open_loop_metrics_off", || {
            open_loop(false)
        });
    eprintln!(
        "obs/record_throughput: sched/requests_per_sec open-loop sweep ({sched_arrivals} arrivals) {:.0} ns with metrics vs {:.0} ns without — {:+.2}% observability tax",
        sched_on.mean_ns,
        sched_off.mean_ns,
        (sched_on.mean_ns / sched_off.mean_ns - 1.0) * 100.0
    );
    cases.push(BenchCase {
        result: sched_on,
        metrics: None,
    });
    cases.push(BenchCase {
        result: sched_off,
        metrics: None,
    });

    cases
}

/// Runs the full machine-readable benchmark suite: every renderer timed
/// under [`harness::bench_function`], plus simulator- and scheduler-backed
/// cases that attach their [`dhl_obs`] metrics snapshots.
///
/// Honours `DHL_BENCH_FAST` (see [`harness::fast_mode`]) for CI smoke runs.
#[must_use]
pub fn run_bench_suite() -> Vec<report_file::BenchCase> {
    run_bench_suite_filtered(None)
}

/// [`run_bench_suite`] restricted to case families matching a name prefix
/// (e.g. `sim/events_per_sec`): non-matching families are skipped
/// entirely, not run-and-discarded, so a focused CI gate pays only for
/// the cases it checks. `None` runs everything.
#[must_use]
pub fn run_bench_suite_filtered(prefix: Option<&str>) -> Vec<report_file::BenchCase> {
    use dhl_sched::placement::Placement;
    use dhl_sched::scheduler::{Priority, Scheduler, TransferRequest};
    use dhl_storage::datasets;
    use dhl_units::Seconds;
    use report_file::BenchCase;

    // A family runs when the filter and the family name agree on their
    // common prefix: `--filter sim` selects every `sim/…` family, and
    // `--filter sim/events_per_sec/queue_churn` still runs the (whole)
    // events-per-sec family that contains that case.
    let want = |family: &str| prefix.is_none_or(|p| family.starts_with(p) || p.starts_with(family));

    let mut cases = Vec::new();
    for (name, render) in all_reports() {
        let case_name = format!("render/{name}");
        if !want(&case_name) {
            continue;
        }
        cases.push(BenchCase {
            result: harness::bench_function(&case_name, render),
            metrics: None,
        });
    }

    // DES-backed case: a 2 PB bulk transfer, with the simulator's own
    // observability snapshot attached.
    if want("sim/bulk_transfer_2pb") {
        let sim_run = || {
            DhlSystem::new(SimConfig::paper_default())
                .expect("valid paper config")
                .run_bulk_transfer(Bytes::from_petabytes(2.0))
                .expect("converges")
        };
        let result = harness::bench_function("sim/bulk_transfer_2pb", || sim_run().movements);
        cases.push(BenchCase {
            result,
            metrics: Some(sim_run().metrics),
        });
    }

    // The same transfer with verify-on-dock enabled (clean corruption
    // model): measures the delivery state machine's scrub overhead.
    if want("sim/verify_on_dock_2pb") {
        let verify_run = || {
            let mut cfg = SimConfig::paper_default();
            cfg.integrity = Some(IntegritySpec::verification_only());
            DhlSystem::new(cfg)
                .expect("valid paper config")
                .run_bulk_transfer(Bytes::from_petabytes(2.0))
                .expect("converges")
        };
        let result = harness::bench_function("sim/verify_on_dock_2pb", || {
            verify_run().integrity.shards_scanned
        });
        cases.push(BenchCase {
            result,
            metrics: Some(verify_run().metrics),
        });
    }

    if want("sim/checkpoint_roundtrip") {
        // Checkpoint/restore case: capture a mid-run checkpoint, serialise it
        // to JSON, parse it back, and resume a fresh simulator from it — the
        // full crash-recovery round trip, measured end to end. The attached
        // metrics come from draining the resumed run, so they equal the
        // uninterrupted run's metrics by the bit-identity guarantee.
        let roundtrip_cfg = {
            let mut cfg = SimConfig::paper_default();
            cfg.reliability = Some(ReliabilitySpec::typical());
            cfg
        };
        let mut mid_run = DhlSystem::new(roundtrip_cfg.clone()).expect("valid paper config");
        mid_run
            .begin_bulk_transfer(Bytes::from_petabytes(2.0))
            .expect("mission accepted");
        mid_run
            .run_until(dhl_units::Seconds::new(30.0))
            .expect("runs to the capture point");
        let result = harness::bench_function("sim/checkpoint_roundtrip", || {
            let json = mid_run.checkpoint().to_json();
            let restored = Checkpoint::from_json(&json).expect("own output parses");
            let resumed = DhlSystem::resume(roundtrip_cfg.clone(), &restored)
                .expect("same configuration fingerprint");
            resumed.now().seconds() as u64
        });
        let resumed_metrics = {
            let checkpoint = mid_run.checkpoint();
            let mut sys = DhlSystem::resume(roundtrip_cfg.clone(), &checkpoint)
                .expect("same configuration fingerprint");
            sys.run_until(dhl_units::Seconds::new(f64::INFINITY))
                .expect("drains");
            sys.finish().metrics
        };
        cases.push(BenchCase {
            result,
            metrics: Some(resumed_metrics),
        });
    }

    if want("sim/replicas_serial") || want("sim/replicas_parallel") {
        // Replica-driver cases: the same seeded Monte-Carlo set run serially
        // and on the parallel driver. The merged report is bit-identical
        // between the two by construction (pinned by tests/parallel_replicas.rs);
        // only wall time may differ, and the delta is printed below.
        let replica_cfg = {
            let mut cfg = SimConfig::paper_default();
            cfg.reliability = Some(ReliabilitySpec::typical());
            cfg
        };
        let (replicas, replica_dataset) = (8, Bytes::from_terabytes(512.0));
        let serial_result = harness::bench_function("sim/replicas_serial", || {
            run_replicas(&replica_cfg, replica_dataset, replicas, 1)
                .expect("replicas converge")
                .replica_count()
        });
        let threads = default_threads();
        let parallel_result = harness::bench_function("sim/replicas_parallel", || {
            run_replicas(&replica_cfg, replica_dataset, replicas, threads)
                .expect("replicas converge")
                .replica_count()
        });
        eprintln!(
            "sim/replicas: serial {:.0} ns vs parallel {:.0} ns on {} thread(s) — {:.2}x",
            serial_result.mean_ns,
            parallel_result.mean_ns,
            threads,
            serial_result.mean_ns / parallel_result.mean_ns
        );
        let merged = run_replicas(&replica_cfg, replica_dataset, replicas, threads)
            .expect("replicas converge");
        cases.push(BenchCase {
            result: serial_result,
            metrics: Some(merged.metrics.clone()),
        });
        cases.push(BenchCase {
            result: parallel_result,
            metrics: Some(merged.metrics),
        });
    }

    if want("sched/multi_tenant_mix") {
        // Scheduler-backed case: a small multi-tenant mix.
        let sched_run = || {
            let mut p = Placement::new(Bytes::from_terabytes(256.0));
            let a = p.store(datasets::laion_5b());
            let b = p.store(datasets::common_crawl());
            let mut sched = Scheduler::new(SimConfig::paper_default(), p).expect("valid");
            sched.submit(TransferRequest::new(b, 1, Priority::Normal, Seconds::ZERO));
            sched.submit(TransferRequest::new(
                a,
                1,
                Priority::Urgent,
                Seconds::new(5.0),
            ));
            sched.run()
        };
        let result =
            harness::bench_function("sched/multi_tenant_mix", || sched_run().makespan.seconds());
        cases.push(BenchCase {
            result,
            metrics: Some(sched_run().metrics),
        });
    }

    if want("sched/overload_sweep") {
        // Open-loop overload case: 96 Poisson arrivals at 4x the track's
        // saturation rate pushed through admission control (bounded queues,
        // shed-lowest-priority, budgeted retries with backoff).
        use dhl_sched::admission::{AdmissionSpec, OverloadPolicy, TenantId};
        use dhl_sim::{ArrivalGenerator, ArrivalSpec};
        let overload_run = || {
            let mut p = Placement::new(Bytes::from_terabytes(256.0));
            let a = p.store(datasets::laion_5b());
            let b = p.store(datasets::genomics_17pb());
            let ids = [a, b];
            let arrival_spec =
                ArrivalSpec::poisson(4.0 / 17.2, Seconds::new(1e12), 7).with_tenants(2);
            let mut sched = Scheduler::new(SimConfig::paper_default(), p)
                .expect("valid")
                .with_admission(AdmissionSpec {
                    max_pending_global: 16,
                    max_pending_per_tenant: 12,
                    policy: OverloadPolicy::ShedLowestPriority,
                    ..AdmissionSpec::default()
                })
                .with_faults(dhl_sched::scheduler::FaultAwareness {
                    loss_probability: 0.05,
                    max_attempts: 8,
                    seed: 42,
                    downtime: Vec::new(),
                });
            for arrival in ArrivalGenerator::new(&arrival_spec).take(96) {
                sched.submit(
                    TransferRequest::new(
                        ids[arrival.tenant as usize % 2],
                        1,
                        if arrival.tenant == 0 {
                            Priority::Urgent
                        } else {
                            Priority::Normal
                        },
                        Seconds::new(arrival.at.seconds()),
                    )
                    .with_tenant(TenantId(arrival.tenant)),
                );
            }
            sched.run()
        };
        let result = harness::bench_function("sched/overload_sweep", || {
            overload_run()
                .admission
                .expect("open loop")
                .goodput_bytes_per_s
        });
        cases.push(BenchCase {
            result,
            metrics: Some(overload_run().metrics),
        });
    }

    // Engine event-throughput family — the `sim/events_per_sec` prefix the
    // CI throughput gate filters on.
    if want("sim/events_per_sec") {
        cases.extend(events_per_sec_cases());
    }

    // Scheduler serving-throughput family — the `sched/requests_per_sec`
    // prefix the CI scheduler gate filters on.
    if want("sched/requests_per_sec") {
        cases.extend(requests_per_sec_cases());
    }

    // Observability recording-throughput family — the
    // `obs/record_throughput` prefix the CI observability gate filters on.
    if want("obs/record_throughput") {
        cases.extend(record_throughput_cases());
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_contains_all_routes_and_matching_energies() {
        let s = render_fig2();
        for route in ["A0", "A1", "A2", "B", "C"] {
            assert!(s.contains(route), "{s}");
        }
        assert!(s.contains("13.92"));
        assert!(s.contains("299.45"));
    }

    #[test]
    fn table6_has_13_data_rows() {
        let s = render_table6();
        let data_rows = s.lines().filter(|l| l.contains('|')).count();
        assert_eq!(data_rows, 14); // header + 13
    }

    #[test]
    fn table7_has_both_halves() {
        let s = render_table7();
        assert!(s.contains("Table VII(a)"));
        assert!(s.contains("Table VII(b)"));
        assert!(s.contains("DHL"));
        assert!(s.matches('C').count() >= 2);
    }

    #[test]
    fn table8_matches_paper_cells() {
        let s = render_table8();
        for cell in [
            "$733", "$3,665", "$7,330", "$8,792", "$10,904", "$14,512", "$9,525", "$14,569",
            "$21,842",
        ] {
            assert!(s.contains(cell), "missing {cell} in:\n{s}");
        }
    }

    #[test]
    fn fig6_has_six_series() {
        let s = render_fig6();
        assert_eq!(s.matches("DHL-").count(), 3);
        assert_eq!(s.matches("Network").count(), 3);
    }

    #[test]
    fn crossover_mentions_breakeven() {
        let s = render_crossover();
        assert!(s.contains("breakeven"));
        assert!(s.contains("360 GB"));
    }

    #[test]
    fn ablation_orders_variants_sensibly() {
        let s = render_des_ablation();
        assert!(s.contains("analytical"));
        assert!(s.contains("dual track"));
        // Serial DES time ≈ analytical time appears (1960.8).
        assert!(s.contains("1960.8"), "{s}");
    }

    #[test]
    fn sensitivity_covers_all_four_sweeps() {
        let s = render_sensitivity();
        assert!(s.contains("dock/undock"));
        assert!(s.contains("acceleration rate"));
        assert!(s.contains("NAND density"));
        assert!(s.contains("Training campaigns"));
    }

    #[test]
    fn fleet_lists_three_pipeline_models() {
        let s = render_fleet();
        assert!(s.contains("serial round trips"));
        assert!(s.contains("pipelined one-way"));
        assert!(s.contains("headway limited"));
        assert!(s.contains("$ per TB/s"));
    }

    #[test]
    fn all_reports_render_nonempty() {
        for (name, f) in all_reports() {
            let s = f();
            assert!(s.len() > 100, "{name} too short");
        }
    }
}
