//! Machine-readable benchmark reports and the perf-regression check.
//!
//! The `report` binary writes `BENCH_report.json` with this schema:
//!
//! ```json
//! {
//!   "schema": "dhl-bench-report/v1",
//!   "cases": [
//!     {"case": "render/fig2", "iters": 100, "mean_ns": 1.0,
//!      "min_ns": 0.9, "p50_ns": 1.0, "p95_ns": 1.2, "metrics": {...}}
//!   ]
//! }
//! ```
//!
//! `metrics` is a [`MetricsSnapshot`] export (or `null` for pure-timing
//! cases). The regression check parses a committed baseline with the same
//! schema and flags any case whose mean grew beyond the tolerance.

use std::collections::BTreeMap;

use dhl_obs::json::{self, JsonValue};
use dhl_obs::MetricsSnapshot;

use crate::harness::CaseResult;

/// Schema identifier stamped into (and required from) every report file.
pub const SCHEMA: &str = "dhl-bench-report/v1";

/// One exported case: timing statistics plus an optional observability
/// snapshot from the workload it measured.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Timing statistics from [`crate::harness::bench_function`].
    pub result: CaseResult,
    /// Metrics recorded by the measured workload, if it carries any.
    pub metrics: Option<MetricsSnapshot>,
}

/// Renders a full report document (one case per line, for diffability).
#[must_use]
pub fn render_report(cases: &[BenchCase]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":");
    json::write_escaped(&mut out, SCHEMA);
    out.push_str(",\"cases\":[");
    for (i, case) in cases.iter().enumerate() {
        out.push_str(if i > 0 { ",\n" } else { "\n" });
        out.push_str("{\"case\":");
        json::write_escaped(&mut out, &case.result.name);
        out.push_str(&format!(",\"iters\":{}", case.result.iters));
        for (key, value) in [
            ("mean_ns", case.result.mean_ns),
            ("min_ns", case.result.min_ns),
            ("p50_ns", case.result.p50_ns),
            ("p95_ns", case.result.p95_ns),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            json::write_f64(&mut out, value);
        }
        out.push_str(",\"metrics\":");
        match &case.metrics {
            Some(snapshot) => out.push_str(&snapshot.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// A case read back from a report file. Only the fields the regression
/// check needs are extracted; `metrics` rides along as raw JSON.
#[derive(Clone, PartialEq, Debug)]
pub struct ParsedCase {
    /// Case name.
    pub case: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: f64,
}

/// Parses a report document, validating the schema tag.
///
/// # Errors
///
/// A description of the first structural problem (bad JSON, wrong schema,
/// missing field).
pub fn parse_report(text: &str) -> Result<Vec<ParsedCase>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unsupported schema '{s}' (want '{SCHEMA}')")),
        None => return Err("missing 'schema' field".into()),
    }
    let cases = doc
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or("missing 'cases' array")?;
    let field = |case: &JsonValue, name: &str| -> Result<f64, String> {
        case.get(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("case missing numeric '{name}'"))
    };
    cases
        .iter()
        .map(|case| {
            Ok(ParsedCase {
                case: case
                    .get("case")
                    .and_then(JsonValue::as_str)
                    .ok_or("case missing 'case' name")?
                    .to_string(),
                iters: field(case, "iters")? as u64,
                mean_ns: field(case, "mean_ns")?,
                p50_ns: field(case, "p50_ns")?,
                p95_ns: field(case, "p95_ns")?,
            })
        })
        .collect()
}

/// One flagged slowdown from [`compare`].
#[derive(Clone, PartialEq, Debug)]
pub struct Regression {
    /// Case name.
    pub case: String,
    /// Baseline mean, nanoseconds.
    pub baseline_ns: f64,
    /// Current mean, nanoseconds.
    pub current_ns: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

/// Outcome of checking a current report against a baseline.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CheckOutcome {
    /// Cases whose mean grew beyond the tolerance.
    pub regressions: Vec<Regression>,
    /// Baseline cases absent from the current report (treated as failures:
    /// a silently dropped case would otherwise hide a regression forever).
    pub missing: Vec<String>,
    /// Baseline cases compared and found within tolerance.
    pub passed: usize,
}

impl CheckOutcome {
    /// Whether the check passed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares `current` against `baseline`: a case regresses when its mean
/// exceeds `baseline * (1 + tolerance)`. Cases only present in `current`
/// (newly added benchmarks) are ignored.
#[must_use]
pub fn compare(current: &[ParsedCase], baseline: &[ParsedCase], tolerance: f64) -> CheckOutcome {
    let by_name: BTreeMap<&str, &ParsedCase> =
        current.iter().map(|c| (c.case.as_str(), c)).collect();
    let mut outcome = CheckOutcome::default();
    for base in baseline {
        match by_name.get(base.case.as_str()) {
            None => outcome.missing.push(base.case.clone()),
            Some(cur) if cur.mean_ns > base.mean_ns * (1.0 + tolerance) => {
                outcome.regressions.push(Regression {
                    case: base.case.clone(),
                    baseline_ns: base.mean_ns,
                    current_ns: cur.mean_ns,
                    ratio: cur.mean_ns / base.mean_ns,
                });
            }
            Some(_) => outcome.passed += 1,
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, mean_ns: f64) -> ParsedCase {
        ParsedCase {
            case: name.into(),
            iters: 10,
            mean_ns,
            p50_ns: mean_ns,
            p95_ns: mean_ns * 1.1,
        }
    }

    fn result(name: &str, mean_ns: f64) -> CaseResult {
        CaseResult {
            name: name.into(),
            iters: 10,
            mean_ns,
            min_ns: mean_ns * 0.9,
            p50_ns: mean_ns,
            p95_ns: mean_ns * 1.1,
        }
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut metrics = dhl_obs::MetricsRegistry::enabled();
        metrics.inc("sim.events", 42);
        let cases = vec![
            BenchCase {
                result: result("render/fig2", 1_500.0),
                metrics: None,
            },
            BenchCase {
                result: result("sim/bulk", 2.5e6),
                metrics: Some(metrics.snapshot()),
            },
        ];
        let text = render_report(&cases);
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], case("render/fig2", 1_500.0));
        assert_eq!(parsed[1].case, "sim/bulk");
        // The embedded metrics snapshot survives as valid JSON.
        let doc = dhl_obs::json::parse(&text).unwrap();
        let m = &doc.get("cases").and_then(JsonValue::as_array).unwrap()[1];
        let events = m
            .get("metrics")
            .and_then(|v| v.get("counters"))
            .and_then(|c| c.get("sim.events"))
            .and_then(JsonValue::as_f64);
        assert_eq!(events, Some(42.0));
    }

    #[test]
    fn schema_mismatches_are_rejected() {
        assert!(parse_report("{}").unwrap_err().contains("schema"));
        let wrong = r#"{"schema":"dhl-bench-report/v999","cases":[]}"#;
        assert!(parse_report(wrong).unwrap_err().contains("v999"));
        let no_cases = format!(r#"{{"schema":"{SCHEMA}"}}"#);
        assert!(parse_report(&no_cases).unwrap_err().contains("cases"));
    }

    #[test]
    fn compare_flags_only_slowdowns_beyond_tolerance() {
        let baseline = vec![case("a", 100.0), case("b", 100.0), case("c", 100.0)];
        let current = vec![
            case("a", 120.0), // +20% — within a 25% tolerance
            case("b", 130.0), // +30% — regression
            case("c", 50.0),  // faster — fine
            case("d", 999.0), // new case — ignored
        ];
        let outcome = compare(&current, &baseline, 0.25);
        assert_eq!(outcome.passed, 2);
        assert!(outcome.missing.is_empty());
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].case, "b");
        assert!((outcome.regressions[0].ratio - 1.3).abs() < 1e-9);
        assert!(!outcome.is_ok());
    }

    #[test]
    fn dropped_cases_fail_the_check() {
        let baseline = vec![case("a", 100.0), case("gone", 100.0)];
        let current = vec![case("a", 100.0)];
        let outcome = compare(&current, &baseline, 0.25);
        assert_eq!(outcome.missing, vec!["gone".to_string()]);
        assert!(!outcome.is_ok());
    }

    #[test]
    fn identical_reports_always_pass() {
        let baseline = vec![case("a", 100.0), case("b", 2e9)];
        let outcome = compare(&baseline, &baseline, 0.0);
        assert!(outcome.is_ok());
        assert_eq!(outcome.passed, 2);
    }
}
