//! Differential suite: the dense-slot handle registry vs the pinned
//! map-walk [`reference_registry`], following the `queue_equivalence` /
//! `service_equivalence` convention — drive both implementations through
//! randomized operation interleavings and assert byte-identical
//! [`MetricsSnapshot`] JSON at every checkpoint.
//!
//! The generators draw finite values from an RNG, where the two bucket-index
//! computations (exponent-bit extraction vs the retired float log₂) agree;
//! the one input class where they deliberately differ — values half an ULP
//! below a power of two, which the float path misbuckets — is covered by a
//! dedicated unit test in `histogram.rs`, not fuzzed here.
//!
//! [`reference_registry`]: dhl_obs::reference_registry

use dhl_obs::reference_registry::{ReferenceHistogram, ReferenceRegistry};
use dhl_obs::{Histogram, MetricsRegistry};

/// splitmix64 — the repo's stock tiny deterministic generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A finite value spanning the histogram range, underflow and overflow
    /// included: 10^u for u ∈ [-12, 12).
    fn value(&mut self) -> f64 {
        10f64.powf(self.uniform() * 24.0 - 12.0)
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[(self.next_u64() % pool.len() as u64) as usize]
    }
}

const COUNTERS: &[&str] = &[
    "sim.events",
    "sim.deliveries",
    "sched.admitted",
    "sched.shed",
    "engine.events_processed",
];
const GAUGES: &[&str] = &[
    "sim.wall_time_s",
    "sched.makespan_s",
    "net.eee.idle_j",
    "sim.completion_s",
];
const HISTOGRAMS: &[&str] = &[
    "sim.transit_s",
    "sim.queue_depth",
    "sched.placement_latency_s",
    "sched.retry_backoff_s",
];

fn assert_identical(live: &MetricsRegistry, reference: &ReferenceRegistry, context: &str) {
    let a = live.snapshot();
    let b = reference.snapshot();
    assert_eq!(a, b, "snapshot mismatch {context}");
    assert_eq!(a.to_json(), b.to_json(), "JSON byte mismatch {context}");
    assert_eq!(
        a.to_ndjson(),
        b.to_ndjson(),
        "NDJSON byte mismatch {context}"
    );
}

/// The core differential: random interleavings of every compat-API
/// operation, checked for byte-identical exports at interior checkpoints.
#[test]
fn randomized_interleavings_export_byte_identically() {
    for seed in 0..32u64 {
        let mut rng = Rng(0xD41_0000 + seed);
        let mut live = MetricsRegistry::enabled();
        let mut reference = ReferenceRegistry::enabled();
        for step in 0..2_000u32 {
            match rng.next_u64() % 100 {
                0..=34 => {
                    let name = rng.pick(COUNTERS);
                    let by = rng.next_u64() % 1_000;
                    live.inc(name, by);
                    reference.inc(name, by);
                }
                35..=54 => {
                    let name = rng.pick(GAUGES);
                    let v = rng.value();
                    live.set_gauge(name, v);
                    reference.set_gauge(name, v);
                }
                55..=89 => {
                    let name = rng.pick(HISTOGRAMS);
                    let v = rng.value();
                    live.observe(name, v);
                    reference.observe(name, v);
                }
                90..=93 => {
                    let name = rng.pick(COUNTERS);
                    let v = rng.next_u64();
                    live.set_counter(name, v);
                    reference.set_counter(name, v);
                }
                94..=96 => {
                    // Restore a histogram rebuilt from an identical record
                    // stream — the checkpoint-resume path.
                    let name = rng.pick(HISTOGRAMS);
                    let n = rng.next_u64() % 20;
                    let mut h = Histogram::new();
                    let mut r = ReferenceHistogram::new();
                    for _ in 0..n {
                        let v = rng.value();
                        h.record(v);
                        r.record(v);
                    }
                    live.restore_histogram(name, h);
                    reference.restore_histogram(name, r);
                }
                97 => {
                    live.reset();
                    reference.reset();
                }
                _ => {
                    // Zero-increment still creates the entry in both.
                    let name = rng.pick(COUNTERS);
                    live.inc(name, 0);
                    reference.inc(name, 0);
                }
            }
            if step % 250 == 0 {
                assert_identical(&live, &reference, &format!("seed {seed} step {step}"));
            }
        }
        assert_identical(&live, &reference, &format!("seed {seed} final"));
    }
}

/// The handle fast path and the compat path must be indistinguishable from
/// the reference: drive the live registry exclusively through pre-interned
/// ids while the reference sees names.
#[test]
fn handle_path_matches_reference_byte_for_byte() {
    for seed in 0..16u64 {
        let mut rng = Rng(0xAB1E_0000 + seed);
        let mut live = MetricsRegistry::enabled();
        let mut reference = ReferenceRegistry::enabled();
        let counter_ids: Vec<_> = COUNTERS.iter().map(|n| live.register_counter(n)).collect();
        let gauge_ids: Vec<_> = GAUGES.iter().map(|n| live.register_gauge(n)).collect();
        let hist_ids: Vec<_> = HISTOGRAMS
            .iter()
            .map(|n| live.register_histogram(n))
            .collect();
        assert_identical(&live, &reference, "registration must be invisible");
        for _ in 0..3_000u32 {
            match rng.next_u64() % 10 {
                0..=3 => {
                    let i = (rng.next_u64() % COUNTERS.len() as u64) as usize;
                    let by = rng.next_u64() % 1_000;
                    live.add(counter_ids[i], by);
                    reference.inc(COUNTERS[i], by);
                }
                4..=5 => {
                    let i = (rng.next_u64() % GAUGES.len() as u64) as usize;
                    let v = rng.value();
                    live.set(gauge_ids[i], v);
                    reference.set_gauge(GAUGES[i], v);
                }
                6..=8 => {
                    let i = (rng.next_u64() % HISTOGRAMS.len() as u64) as usize;
                    let v = rng.value();
                    live.record(hist_ids[i], v);
                    reference.observe(HISTOGRAMS[i], v);
                }
                _ => {
                    let i = (rng.next_u64() % COUNTERS.len() as u64) as usize;
                    let v = rng.next_u64();
                    live.store(counter_ids[i], v);
                    reference.set_counter(COUNTERS[i], v);
                }
            }
        }
        assert_identical(&live, &reference, &format!("seed {seed} handle-path"));
    }
}

/// Audit-shaped workload: the metric mix `overload_audit` and
/// `crash_recovery_audit` produce (end-of-run set_counter/set_gauge block
/// over accumulated counters and latency histograms), including a mid-run
/// export/restore cycle as the crash audit performs.
#[test]
fn audit_shaped_workload_with_restore_cycle_is_byte_identical() {
    let mut rng = Rng(0x000C_4A54);
    let mut live = MetricsRegistry::enabled();
    let mut reference = ReferenceRegistry::enabled();
    for _ in 0..5_000u32 {
        live.inc("sim.events", 1);
        reference.inc("sim.events", 1);
        if rng.next_u64().is_multiple_of(3) {
            live.inc("sim.deliveries", 1);
            reference.inc("sim.deliveries", 1);
            let v = rng.value();
            live.observe("sim.transit_s", v);
            reference.observe("sim.transit_s", v);
        }
        if rng.next_u64().is_multiple_of(50) {
            live.inc(
                "sim.ssd_failures",
                u64::from(rng.next_u64().is_multiple_of(2)),
            );
            reference.inc("sim.ssd_failures", u64::from(rng.next_u64() % 2 == 1));
        }
    }
    // ssd_failures counts drifted apart above (independent RNG draws) —
    // square them up through the absolute-set path before comparing.
    let absolute = 17;
    live.set_counter("sim.ssd_failures", absolute);
    reference.set_counter("sim.ssd_failures", absolute);

    // Checkpoint: export the live registry's exact state, rebuild both.
    let mut live2 = MetricsRegistry::enabled();
    let mut reference2 = ReferenceRegistry::enabled();
    for (name, v) in live.counters() {
        live2.set_counter(name, v);
        reference2.set_counter(name, v);
    }
    for (name, v) in live.gauges() {
        live2.set_gauge(name, v);
        reference2.set_gauge(name, v);
    }
    for (name, h) in live.histograms() {
        let (count, sum, min, max, buckets) = (
            h.count(),
            h.sum(),
            h.raw_min(),
            h.raw_max(),
            h.sparse_buckets(),
        );
        live2.restore_histogram(name, Histogram::from_parts(count, sum, min, max, &buckets));
        reference2.restore_histogram(
            name,
            ReferenceHistogram::from_parts(count, sum, min, max, &buckets),
        );
    }
    assert_identical(&live2, &reference2, "post-restore");
    assert_eq!(
        live2.snapshot().to_json(),
        live.snapshot().to_json(),
        "restore must be lossless"
    );

    // Finish the run on the restored registries.
    for _ in 0..1_000u32 {
        live2.inc("sim.events", 1);
        reference2.inc("sim.events", 1);
        let v = rng.value();
        live2.observe("sim.transit_s", v);
        reference2.observe("sim.transit_s", v);
    }
    live2.set_gauge("sim.wall_time_s", 1.25);
    reference2.set_gauge("sim.wall_time_s", 1.25);
    live2.set_gauge("sim.completion_s", 86.5);
    reference2.set_gauge("sim.completion_s", 86.5);
    assert_identical(&live2, &reference2, "final");
}
