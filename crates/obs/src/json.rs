//! Minimal JSON support: escaping/formatting for the exporters and a small
//! recursive-descent parser so tools (the bench regression checker) can read
//! the files back without any external dependency.
//!
//! The parser accepts the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) and is intentionally strict: trailing
//! garbage or malformed input yields an error rather than a best-effort
//! value.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A JSON number with a fractional part, an exponent, or a sign.
    Number(f64),
    /// A non-negative integer-syntax number that fits `u64`, kept exact.
    ///
    /// `u64` counters (up to `u64::MAX`) exceed `f64`'s 53-bit integer
    /// range, so the parser keeps plain unsigned integers in this lossless
    /// variant; [`JsonValue::as_f64`] still covers it for callers that only
    /// need an approximate number.
    UInt(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys are sorted (BTreeMap), duplicates keep the last value.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a number, if it is one (`UInt` rounds to the nearest
    /// representable `f64`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            Self::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one. Accepts
    /// `Number`s that are integral and in range, so callers reading counters
    /// do not care which variant the writer produced.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::UInt(n) => Some(*n),
            Self::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            Self::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Appends this value as compact JSON to `out` (object keys in sorted
    /// order, so output is deterministic).
    pub fn write_to(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(true) => out.push_str("true"),
            Self::Bool(false) => out.push_str("false"),
            Self::Number(n) => write_f64(out, *n),
            Self::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Self::String(s) => write_escaped(out, s),
            Self::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Self::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_to(out);
                }
                out.push('}');
            }
        }
    }

    /// This value as a compact JSON document.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, PartialEq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`JsonError`] on malformed input or trailing non-whitespace.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than combined;
                            // the exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain unsigned integers stay exact: f64 silently rounds above
        // 2^53, which would corrupt u64 counters on a round trip.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` as a JSON string (with quotes and escapes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON-legal rendering of `v` to `out` (`null` for non-finite).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 round-trips exactly and never produces inf/nan here.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(
            parse(r#""a\"b\nA""#).unwrap(),
            JsonValue::String("a\"b\nA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaping_round_trips() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn floats_render_round_trippably() {
        let mut out = String::new();
        write_f64(&mut out, 123.456e-7);
        assert_eq!(parse(&out).unwrap().as_f64(), Some(123.456e-7));
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn serialiser_round_trips_through_the_parser() {
        let src = r#"{"b":[1,false,null,"x\ny"],"a":{"nested":-2.5}}"#;
        let v = parse(src).unwrap();
        let out = v.to_json_string();
        assert_eq!(parse(&out).unwrap(), v);
        // Keys come back sorted (BTreeMap order).
        assert!(out.starts_with("{\"a\""), "{out}");
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
    }

    #[test]
    fn u64_max_round_trips_losslessly() {
        // u64::MAX is not representable in f64; the UInt variant keeps it.
        let src = u64::MAX.to_string();
        let v = parse(&src).unwrap();
        assert_eq!(v, JsonValue::UInt(u64::MAX));
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.to_json_string(), src);
        // One past 2^53: f64 would collapse it onto a neighbour.
        let n = (1u64 << 53) + 1;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn uint_still_reads_as_f64_and_number_as_u64() {
        assert_eq!(parse("7").unwrap().as_f64(), Some(7.0));
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Number(7.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        // Negative and fractional syntax stays in the f64 variant.
        assert_eq!(parse("-7").unwrap(), JsonValue::Number(-7.0));
        assert_eq!(parse("7.0").unwrap(), JsonValue::Number(7.0));
        assert_eq!(parse("7e0").unwrap(), JsonValue::Number(7.0));
    }

    #[test]
    fn histogram_bucket_arrays_round_trip_losslessly() {
        // A sparse bucket list as the checkpoint format stores it: pairs of
        // (slot, count) with counts up to u64::MAX.
        let buckets = [(0u32, 3u64), (31, u64::MAX), (65, (1 << 53) + 1)];
        let mut out = String::new();
        out.push('[');
        for (i, (slot, count)) in buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{slot},{count}]");
        }
        out.push(']');
        let v = parse(&out).unwrap();
        let arr = v.as_array().unwrap();
        let back: Vec<(u32, u64)> = arr
            .iter()
            .map(|pair| {
                let pair = pair.as_array().unwrap();
                (
                    u32::try_from(pair[0].as_u64().unwrap()).unwrap(),
                    pair[1].as_u64().unwrap(),
                )
            })
            .collect();
        assert_eq!(back, buckets);
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn digit_strings_wider_than_u64_fall_back_to_f64() {
        let v = parse("99999999999999999999999999").unwrap();
        assert!(matches!(v, JsonValue::Number(_)));
        assert!(v.as_f64().unwrap() > 9.9e25);
    }
}
